//! Cross-crate integration: generated workloads flow through the full
//! stack — datagen → storage → datalog → core planning/execution →
//! mine — with ground truth recovered and artifacts (TSV, SQL)
//! round-tripping.

use query_flocks::core::{
    best_plan, evaluate_direct, execute_plan, plan_to_sql, single_param_plan, to_sql,
    JoinOrderStrategy, QueryFlock,
};
use query_flocks::datagen::{baskets, medical, words};
use query_flocks::mine::{mine_apriori, mine_flockwise};
use query_flocks::storage::{tsv, Database, Value};

#[test]
fn words_pipeline_finds_frequent_pairs() {
    let rel = words::generate(&words::WordsConfig {
        n_docs: 400,
        words_per_doc: 15,
        vocabulary: 1500,
        exponent: 1.0,
        seed: 3,
    });
    let mut db = Database::new();
    db.insert(rel);
    let flock = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        20,
    )
    .unwrap();
    let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    assert!(!direct.is_empty(), "Zipf head words must co-occur");
    // The two most frequent words must be among the found pairs.
    let (w0, w1) = (
        Value::str(&words::word_name(0)),
        Value::str(&words::word_name(1)),
    );
    assert!(direct
        .iter()
        .any(|t| t.get(0) == w0.min(w1) && t.get(1) == w0.max(w1)));

    // The best cost-searched plan agrees.
    let (plan, _) = best_plan(&flock, &db).unwrap();
    let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
    assert_eq!(run.result.tuples(), direct.tuples());
}

#[test]
fn medical_pipeline_recovers_planted_side_effects() {
    let data = medical::generate(&medical::MedicalConfig {
        n_patients: 1200,
        rare_fraction: 0.4,
        seed: 5,
        ..medical::MedicalConfig::default()
    });
    let flock = QueryFlock::with_support(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
         diagnoses(P,D) AND NOT causes(D,$s)",
        20,
    )
    .unwrap();
    let plan = single_param_plan(&flock, &data.db).unwrap();
    let run = execute_plan(&plan, &data.db, JoinOrderStrategy::Greedy).unwrap();
    for (med, sym) in &data.planted {
        assert!(
            run.result
                .iter()
                .any(|t| t.get(0) == Value::str(med) && t.get(1) == Value::str(sym)),
            "planted ({med},{sym}) missing"
        );
    }
}

#[test]
fn basket_pipeline_three_way_agreement() {
    let data = baskets::generate(&baskets::BasketConfig {
        n_baskets: 500,
        avg_basket_size: 7,
        n_items: 150,
        n_patterns: 8,
        ..baskets::BasketConfig::default()
    });
    let mut db = Database::new();
    db.insert(data.baskets.clone());
    let threshold = 15i64;

    // Flock levelwise ≡ classic a-priori at every level.
    let levels = mine_flockwise(&db, threshold, 3).unwrap();
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();
    let classic = mine_apriori(&txns, threshold as u64, 3);
    for (k, rel) in levels.iter().enumerate() {
        assert_eq!(
            rel.len(),
            classic.frequent_k(k + 1).len(),
            "level {}",
            k + 1
        );
    }
}

#[test]
fn tsv_roundtrip_preserves_mining_results() {
    let data = baskets::generate(&baskets::BasketConfig {
        n_baskets: 200,
        n_items: 80,
        ..baskets::BasketConfig::default()
    });
    let dir = std::env::temp_dir().join(format!("qf-tsv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baskets.tsv");
    tsv::save_tsv(&data.baskets, &path).unwrap();
    let reloaded = tsv::load_tsv(&path).unwrap();
    assert_eq!(reloaded, data.baskets);

    let mut db1 = Database::new();
    db1.insert(data.baskets.clone());
    let mut db2 = Database::new();
    db2.insert(reloaded);
    let flock = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        10,
    )
    .unwrap();
    let a = evaluate_direct(&flock, &db1, JoinOrderStrategy::Greedy).unwrap();
    let b = evaluate_direct(&flock, &db2, JoinOrderStrategy::Greedy).unwrap();
    assert_eq!(a.tuples(), b.tuples());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sql_rendering_covers_paper_flocks() {
    let flock = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        20,
    )
    .unwrap();
    let sql = to_sql(&flock).unwrap();
    assert!(sql.contains("GROUP BY"));
    assert!(sql.contains("HAVING"));

    let mut db = Database::new();
    db.insert(
        baskets::generate(&baskets::BasketConfig {
            n_baskets: 100,
            ..baskets::BasketConfig::default()
        })
        .baskets,
    );
    let plan = single_param_plan(&flock, &db).unwrap();
    let script = plan_to_sql(&plan).unwrap();
    assert!(script.contains("CREATE TABLE ok_1"));
    assert!(script.contains("CREATE TABLE ok_2"));
    assert!(script.contains("-- final step"));
}
