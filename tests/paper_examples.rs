//! Every worked example in the paper, end to end: the figures parse in
//! the paper's own notation, the enumerations match the paper's counts,
//! and the semantics agree across evaluators.

use query_flocks::core::{
    chain_plan, direct_plan, evaluate_direct, evaluate_naive, execute_plan, JoinOrderStrategy,
    QueryFlock,
};
use query_flocks::datalog::{contained_in, parse_query, parse_rule, subquery::safe_subqueries};
use query_flocks::storage::{Database, Relation, Schema, Value};

/// Fig. 2: the market-basket flock in the paper's exact notation.
#[test]
fn fig2_parses_in_paper_notation() {
    let flock = QueryFlock::parse(
        "QUERY:
         answer(B) :-
             baskets(B,$1) AND
             baskets(B,$2)
         FILTER:
         COUNT(answer.B) >= 20",
    )
    .unwrap();
    assert_eq!(flock.param_names(), vec!["1", "2"]);
    assert_eq!(flock.filter().threshold, 20);
}

/// Example 3.1: the basket query has exactly two nontrivial subqueries,
/// and each contains the original (deleting subgoals only grows answers).
#[test]
fn example_3_1_two_subqueries_and_containment() {
    let full = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2)").unwrap();
    let subs = safe_subqueries(&full);
    assert_eq!(subs.len(), 2);
    for s in &subs {
        assert!(contained_in(&full, &s.query).unwrap());
        assert!(!contained_in(&s.query, &full).unwrap());
    }
}

/// Example 3.2: 8 of the 14 nontrivial subsets of the medical query are
/// safe; a lone `NOT causes(D,$s)` is not one of them.
#[test]
fn example_3_2_safe_subquery_census() {
    let rule = parse_rule(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
         diagnoses(P,D) AND NOT causes(D,$s)",
    )
    .unwrap();
    let subs = safe_subqueries(&rule);
    assert_eq!(subs.len(), 8);
    assert!(subs
        .iter()
        .all(|s| s.to_string() != "answer(P) :- NOT causes(D,$s)"));
}

/// Fig. 3 + Fig. 5: the medical flock's Fig. 5 plan computes the same
/// answer as direct evaluation and as the naive reference semantics.
#[test]
fn fig3_and_fig5_agree_with_reference_semantics() {
    let mut db = Database::new();
    // Hand-built miniature: 25 patients on "m0" with symptom "s0"
    // (unexplained), 25 on "m0" with "fever" (explained by flu).
    let mut diagnoses = Vec::new();
    let mut exhibits = Vec::new();
    let mut treatments = Vec::new();
    for p in 0..25i64 {
        diagnoses.push(vec![Value::int(p), Value::str("flu")]);
        exhibits.push(vec![Value::int(p), Value::str("s0")]);
        treatments.push(vec![Value::int(p), Value::str("m0")]);
    }
    for p in 25..50i64 {
        diagnoses.push(vec![Value::int(p), Value::str("flu")]);
        exhibits.push(vec![Value::int(p), Value::str("fever")]);
        treatments.push(vec![Value::int(p), Value::str("m0")]);
    }
    db.insert(Relation::from_rows(
        Schema::new("diagnoses", &["p", "d"]),
        diagnoses,
    ));
    db.insert(Relation::from_rows(
        Schema::new("exhibits", &["p", "s"]),
        exhibits,
    ));
    db.insert(Relation::from_rows(
        Schema::new("treatments", &["p", "m"]),
        treatments,
    ));
    db.insert(Relation::from_rows(
        Schema::new("causes", &["d", "s"]),
        vec![vec![Value::str("flu"), Value::str("fever")]],
    ));

    let flock = QueryFlock::parse(
        "QUERY:
         answer(P) :-
             exhibits(P,$s) AND
             treatments(P,$m) AND
             diagnoses(P,D) AND
             NOT causes(D,$s)
         FILTER:
         COUNT(answer.P) >= 20",
    )
    .unwrap();

    let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    let naive = evaluate_naive(&flock, &db).unwrap();
    assert_eq!(direct.tuples(), naive.tuples());
    assert_eq!(direct.len(), 1);
    assert_eq!(direct.tuples()[0].get(0), Value::str("m0"));
    assert_eq!(direct.tuples()[0].get(1), Value::str("s0"));

    // Fig. 5 plan, built from the paper's step texts.
    let ok_s = query_flocks::core::FilterStep::new(
        "okS",
        parse_query("answer(P) :- exhibits(P,$s)").unwrap(),
    );
    let ok_m = query_flocks::core::FilterStep::new(
        "okM",
        parse_query("answer(P) :- treatments(P,$m)").unwrap(),
    );
    let with_reductions =
        flock.query().rules()[0].with_extra(vec![ok_s.head_subgoal(), ok_m.head_subgoal()]);
    let final_ = query_flocks::core::FilterStep::new(
        "ok",
        query_flocks::datalog::UnionQuery::single(with_reductions).unwrap(),
    );
    let plan = query_flocks::core::QueryPlan::new(flock, vec![ok_s, ok_m, final_]).unwrap();
    let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
    assert_eq!(run.result.tuples(), direct.tuples());
}

/// Fig. 4: the union flock's three-branch structure and its semantics
/// (counting answers across branches) against the naive reference.
#[test]
fn fig4_union_semantics() {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("inTitle", &["d", "w"]),
        (0..12i64)
            .flat_map(|d| {
                vec![
                    vec![Value::int(d), Value::str("apple")],
                    vec![Value::int(d), Value::str("banana")],
                ]
            })
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("inAnchor", &["a", "w"]),
        (100..110i64)
            .map(|a| vec![Value::int(a), Value::str("apple")])
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("link", &["a", "src", "dst"]),
        (100..110i64)
            .map(|a| vec![Value::int(a), Value::int(0), Value::int(1)])
            .collect(),
    ));
    let flock = QueryFlock::parse(
        "QUERY:
         answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
         FILTER:
         COUNT(answer(*)) >= 20",
    )
    .unwrap();
    // 12 title co-occurrences + 10 anchors pointing at a banana title =
    // 22 >= 20.
    let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    assert_eq!(direct.len(), 1);
    let naive = evaluate_naive(&flock, &db).unwrap();
    assert_eq!(direct.tuples(), naive.tuples());
}

/// Fig. 6/7: the path flock's chain plan has n+1 steps and each ok_i
/// feeds ok_{i+1}, exactly as the figure shows.
#[test]
fn fig7_chain_structure() {
    let flock = QueryFlock::with_support(
        "answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2) AND arc(Y2,Y3)",
        20,
    )
    .unwrap();
    let plan = chain_plan(&flock).unwrap();
    // Body has 4 subgoals → ok0..ok2 + final = 4 steps (Fig. 7: n+1).
    assert_eq!(plan.len(), 4);
    for i in 1..plan.len() - 1 {
        let text = plan.steps[i].query.rules()[0].to_string();
        assert!(
            text.contains(&format!("ok{}($1)", i - 1)),
            "step {i} must consume ok{}: {text}",
            i - 1
        );
    }
}

/// Fig. 10: the weighted flock in the paper's notation, checked against
/// naive semantics.
#[test]
fn fig10_weighted_semantics() {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        (0..10i64)
            .flat_map(|b| {
                vec![
                    vec![Value::int(b), Value::str("beer")],
                    vec![Value::int(b), Value::str("diapers")],
                ]
            })
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("importance", &["bid", "w"]),
        (0..10i64)
            .map(|b| vec![Value::int(b), Value::int(3)])
            .collect(),
    ));
    let flock = QueryFlock::parse(
        "QUERY:
         answer(B,W) :-
             baskets(B,$1) AND
             baskets(B,$2) AND
             importance(B,W) AND $1 < $2
         FILTER:
         SUM(answer.W) >= 20",
    )
    .unwrap();
    assert!(flock.filter().is_monotone());
    let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    assert_eq!(direct.len(), 1); // 10 baskets × weight 3 = 30 >= 20.
    let naive = evaluate_naive(&flock, &db).unwrap();
    assert_eq!(direct.tuples(), naive.tuples());
}

/// §4.2: the direct plan is always legal, for every example flock in
/// the paper.
#[test]
fn direct_plans_legal_for_all_paper_flocks() {
    let texts = [
        "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) FILTER: COUNT(answer.B) >= 20",
        "QUERY: answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND \
         NOT causes(D,$s) FILTER: COUNT(answer.P) >= 20",
        "QUERY:
         answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
         FILTER: COUNT(answer(*)) >= 20",
        "QUERY: answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W) \
         FILTER: SUM(answer.W) >= 20",
    ];
    for text in texts {
        let flock = QueryFlock::parse(text).unwrap();
        direct_plan(&flock).unwrap();
    }
}
