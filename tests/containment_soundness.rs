//! Semantic soundness of the containment machinery: whenever the
//! containment-mapping test says `Q2 ⊆ Q1`, evaluating both queries on
//! random databases must actually produce `answers(Q2) ⊆ answers(Q1)`.
//! This is the theorem (\[CM77\]) the whole §3 optimization rests on.

use proptest::prelude::*;

use query_flocks::core::{compile_rule, JoinOrderStrategy};
use query_flocks::datalog::{
    canonicalize, contained_in, equivalent, is_isomorphic, minimize, parse_rule, ConjunctiveQuery,
};
use query_flocks::engine::execute;
use query_flocks::storage::{Database, Relation, Schema, Tuple, Value};

/// A pool of pure CQs over binary predicates r/s sharing a head shape.
fn query_pool() -> Vec<ConjunctiveQuery> {
    [
        "answer(X) :- r(X,Y)",
        "answer(X) :- r(X,X)",
        "answer(X) :- r(X,Y) AND r(Y,X)",
        "answer(X) :- r(X,Y) AND r(Y,Z)",
        "answer(X) :- r(X,Y) AND s(Y,Z)",
        "answer(X) :- r(X,Y) AND s(Y,Y)",
        "answer(X) :- r(X,Y) AND r(X,Z)",
        "answer(X) :- s(X,Y)",
        "answer(X) :- s(X,Y) AND r(Y,Z)",
        "answer(X) :- r(X,Y) AND r(Y,Z) AND s(Z,W)",
    ]
    .iter()
    .map(|t| parse_rule(t).unwrap())
    .collect()
}

fn eval(q: &ConjunctiveQuery, db: &Database) -> Vec<Tuple> {
    let compiled = compile_rule(q, db, JoinOrderStrategy::AsWritten).unwrap();
    execute(&compiled.plan, db).unwrap().tuples().to_vec()
}

fn db_from(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("r", &["a", "b"]),
        r.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("s", &["a", "b"]),
        s.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Containment-mapping verdicts are sound on real data.
    #[test]
    fn containment_verdicts_sound(
        r in prop::collection::vec((0i64..5, 0i64..5), 0..25),
        s in prop::collection::vec((0i64..5, 0i64..5), 0..25),
        qi in 0usize..10,
        qj in 0usize..10,
    ) {
        let pool = query_pool();
        let (q1, q2) = (&pool[qi], &pool[qj]);
        if contained_in(q2, q1).unwrap() {
            let db = db_from(&r, &s);
            let a2 = eval(q2, &db);
            let a1 = eval(q1, &db);
            for t in &a2 {
                prop_assert!(
                    a1.contains(t),
                    "claimed {q2} ⊆ {q1} but {t} only in the former"
                );
            }
        }
    }

    /// Minimization preserves semantics on real data.
    #[test]
    fn minimize_preserves_answers(
        r in prop::collection::vec((0i64..5, 0i64..5), 0..25),
        s in prop::collection::vec((0i64..5, 0i64..5), 0..25),
        qi in 0usize..10,
    ) {
        let pool = query_pool();
        let q = &pool[qi];
        let m = minimize(q).unwrap();
        prop_assert!(equivalent(&m, q).unwrap());
        let db = db_from(&r, &s);
        prop_assert_eq!(eval(q, &db), eval(&m, &db));
        prop_assert!(m.body.len() <= q.body.len());
    }

    /// Canonicalization preserves semantics and is idempotent.
    #[test]
    fn canonicalize_preserves_answers(
        r in prop::collection::vec((0i64..5, 0i64..5), 0..20),
        s in prop::collection::vec((0i64..5, 0i64..5), 0..20),
        qi in 0usize..10,
    ) {
        let pool = query_pool();
        let q = &pool[qi];
        let c = canonicalize(q);
        prop_assert!(is_isomorphic(q, &c));
        prop_assert_eq!(canonicalize(&c).clone(), c.clone());
        let db = db_from(&r, &s);
        prop_assert_eq!(eval(q, &db), eval(&c, &db));
    }
}
