//! Property tests: on random small databases, every evaluation strategy
//! computes the same flock — the central soundness claim of the paper's
//! optimization framework (legal plans are *equivalent* to the flock).

use proptest::prelude::*;

use query_flocks::core::{
    enumerate_plans, evaluate_direct, evaluate_dynamic, evaluate_naive, execute_plan,
    DynamicConfig, JoinOrderStrategy, QueryFlock,
};
use query_flocks::storage::{Database, Relation, Schema, Value};

/// A random baskets relation over a small domain.
fn baskets_strategy() -> impl Strategy<Value = Vec<(i64, u8)>> {
    prop::collection::vec((0..12i64, 0..8u8), 0..80)
}

/// Random medical data: diagnoses (patient, disease), exhibits
/// (patient, symptom), treatments (patient, medicine), and causes
/// (disease, symptom).
type MedicalData = (
    Vec<(i64, u8)>,
    Vec<(i64, u8)>,
    Vec<(i64, u8)>,
    Vec<(u8, u8)>,
);

/// A random medical database over small domains.
fn medical_strategy() -> impl Strategy<Value = MedicalData> {
    (
        prop::collection::vec((0..10i64, 0..4u8), 0..30),
        prop::collection::vec((0..10i64, 0..5u8), 0..40),
        prop::collection::vec((0..10i64, 0..4u8), 0..30),
        prop::collection::vec((0..4u8, 0..5u8), 0..10),
    )
}

fn basket_db(rows: &[(i64, u8)]) -> Database {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows.iter()
            .map(|&(b, i)| vec![Value::int(b), Value::str(&format!("i{i}"))])
            .collect(),
    ));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Basket flock: naive ≡ direct ≡ every enumerated plan ≡ dynamic.
    #[test]
    fn basket_flock_equivalence(rows in baskets_strategy(), threshold in 1i64..6) {
        let db = basket_db(&rows);
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        ).unwrap();

        let naive = evaluate_naive(&flock, &db).unwrap();
        for strategy in [
            JoinOrderStrategy::AsWritten,
            JoinOrderStrategy::Greedy,
            JoinOrderStrategy::OptimalDp,
        ] {
            let direct = evaluate_direct(&flock, &db, strategy).unwrap();
            prop_assert_eq!(direct.tuples(), naive.tuples());
        }
        for plan in enumerate_plans(&flock, &db).unwrap() {
            let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
            prop_assert_eq!(run.result.tuples(), naive.tuples());
        }
        let dynamic = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        prop_assert_eq!(dynamic.result.tuples(), naive.tuples());
    }

    /// Medical flock (negation!): naive ≡ direct ≡ plans ≡ dynamic.
    #[test]
    fn medical_flock_equivalence(
        (diag, exh, treat, causes) in medical_strategy(),
        threshold in 1i64..5,
    ) {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("diagnoses", &["p", "d"]),
            diag.iter().map(|&(p, d)| vec![Value::int(p), Value::str(&format!("d{d}"))]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("exhibits", &["p", "s"]),
            exh.iter().map(|&(p, s)| vec![Value::int(p), Value::str(&format!("s{s}"))]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("treatments", &["p", "m"]),
            treat.iter().map(|&(p, m)| vec![Value::int(p), Value::str(&format!("m{m}"))]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["d", "s"]),
            causes.iter().map(|&(d, s)| vec![Value::str(&format!("d{d}")), Value::str(&format!("s{s}"))]).collect(),
        ));
        let flock = QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            threshold,
        ).unwrap();

        let naive = evaluate_naive(&flock, &db).unwrap();
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        prop_assert_eq!(direct.tuples(), naive.tuples());
        for plan in enumerate_plans(&flock, &db).unwrap() {
            let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
            prop_assert_eq!(run.result.tuples(), naive.tuples(), "plan: {}", plan);
        }
        let dynamic = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        prop_assert_eq!(dynamic.result.tuples(), naive.tuples());
    }

    /// Weighted SUM flock with non-negative weights: naive ≡ direct ≡
    /// plans (monotone pruning stays sound).
    #[test]
    fn weighted_flock_equivalence(
        rows in baskets_strategy(),
        weights in prop::collection::vec(0i64..5, 12),
        threshold in 1i64..12,
    ) {
        let mut db = basket_db(&rows);
        db.insert(Relation::from_rows(
            Schema::new("importance", &["bid", "w"]),
            weights.iter().enumerate()
                .map(|(b, &w)| vec![Value::int(b as i64), Value::int(w)])
                .collect(),
        ));
        let flock = QueryFlock::parse(&format!(
            "QUERY: answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 \
             AND importance(B,W) FILTER: SUM(answer.W) >= {threshold}"
        )).unwrap();

        let naive = evaluate_naive(&flock, &db).unwrap();
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        prop_assert_eq!(direct.tuples(), naive.tuples());
        for plan in enumerate_plans(&flock, &db).unwrap() {
            let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
            prop_assert_eq!(run.result.tuples(), naive.tuples(), "plan: {}", plan);
        }
    }

    /// Non-monotone COUNT filters must not be prematurely pruned by the
    /// dynamic evaluator (regression: pruning with `>= t` is unsound for
    /// `COUNT < t`).
    #[test]
    fn non_monotone_count_dynamic_equals_naive(
        rows in baskets_strategy(),
        threshold in 1i64..6,
    ) {
        let db = basket_db(&rows);
        let flock = QueryFlock::parse(&format!(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 \
             FILTER: COUNT(answer.B) < {threshold}"
        )).unwrap();
        let naive = evaluate_naive(&flock, &db).unwrap();
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        prop_assert_eq!(direct.tuples(), naive.tuples());
        let dynamic = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        prop_assert_eq!(dynamic.result.tuples(), naive.tuples());
    }

    /// Dynamic evaluation is insensitive to its tuning knobs (they move
    /// cost, never answers).
    #[test]
    fn dynamic_config_never_changes_answers(
        rows in baskets_strategy(),
        threshold in 1i64..6,
        first in 0.1f64..4.0,
        improve in 0.1f64..1.0,
    ) {
        let db = basket_db(&rows);
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        ).unwrap();
        let reference = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        let config = DynamicConfig {
            first_sight_factor: first,
            improvement_factor: improve,
            strategy: JoinOrderStrategy::Greedy,
        };
        let report = evaluate_dynamic(&flock, &db, &config).unwrap();
        prop_assert_eq!(report.result.tuples(), reference.tuples());
    }
}
