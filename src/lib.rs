//! # query-flocks
//!
//! Facade crate for the query-flocks workspace: a full reproduction of
//! *"Query Flocks: A Generalization of Association-Rule Mining"*
//! (Tsur, Ullman, Abiteboul, Clifton, Motwani, Nestorov, Rosenthal —
//! SIGMOD 1998).
//!
//! Re-exports the component crates under stable module names; see each
//! crate for its own documentation:
//!
//! * [`storage`] — in-memory relational substrate
//! * [`engine`] — relational operators, statistics, cost model
//! * [`datalog`] — Datalog AST, parser, safety, containment
//! * [`core`] — query flocks, plans, the generalized a-priori optimizer
//! * [`mine`] — classic a-priori association-rule mining baseline
//! * [`datagen`] — synthetic workload generators
//!
//! ## Example
//!
//! ```
//! use query_flocks::core::{Optimizer, QueryFlock};
//! use query_flocks::storage::{Database, Relation, Schema, Value};
//!
//! let mut db = Database::new();
//! db.insert(Relation::from_rows(
//!     Schema::new("baskets", &["bid", "item"]),
//!     vec![
//!         vec![Value::int(1), Value::str("beer")],
//!         vec![Value::int(1), Value::str("diapers")],
//!         vec![Value::int(2), Value::str("beer")],
//!         vec![Value::int(2), Value::str("diapers")],
//!     ],
//! ));
//!
//! // Fig. 2 of the paper, in its own notation.
//! let flock = QueryFlock::parse(
//!     "QUERY:
//!      answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
//!      FILTER:
//!      COUNT(answer.B) >= 2",
//! )?;
//!
//! // The optimizer picks a strategy (here: §4.4 dynamic evaluation).
//! let evaluation = Optimizer::new().evaluate(&flock, &db)?;
//! assert_eq!(evaluation.result.len(), 1); // {beer, diapers}
//! # Ok::<(), query_flocks::core::FlockError>(())
//! ```

pub use qf_core as core;
pub use qf_datagen as datagen;
pub use qf_datalog as datalog;
pub use qf_engine as engine;
pub use qf_mine as mine;
pub use qf_storage as storage;
