//! # qf-datalog — the Datalog frontend
//!
//! The query language of query flocks. The paper chooses Datalog over
//! SQL because "the notion of 'safe query' for Datalog figures into
//! potential optimizations" and "the set of options for adapting the
//! a-priori trick to arbitrary flocks is most easily expressed in
//! Datalog" (§2.1). This crate supplies that machinery:
//!
//! * **AST** ([`ast`]): terms (variables, `$`-parameters, constants),
//!   atoms, positive/negated/arithmetic literals, extended conjunctive
//!   queries, and unions of them — the flock language of §2.3/§3.4.
//! * **Parser** ([`parser`]): the paper's concrete syntax,
//!   `answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2`.
//! * **Safety** ([`safety`]): the three conditions of §3.3 (\[UW97\]),
//!   with parameters treated as variables for conditions 2 and 3.
//! * **Containment** ([`containment`]): containment mappings for
//!   conjunctive queries (\[CM77\]) — the theory licensing the subgoal-
//!   subset rule (§3.1) — plus CQ equivalence and minimization.
//! * **Subquery enumeration** ([`subquery`]): the safe subgoal subsets
//!   that are the candidate `FILTER` steps of the generalized a-priori
//!   optimization.
//!
//! ```
//! use qf_datalog::{parse_query, safety::is_safe, subquery::safe_subqueries};
//!
//! let flock_query = parse_query(
//!     "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
//!      diagnoses(P,D) AND NOT causes(D,$s)",
//! ).unwrap();
//! let cq = &flock_query.rules()[0];
//! assert!(is_safe(cq));
//! // Example 3.2: exactly 8 of the 14 nontrivial subsets are safe.
//! assert_eq!(safe_subqueries(cq).len(), 8);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod canonical;
pub mod containment;
pub mod error;
pub mod parser;
pub mod safety;
pub mod subquery;

pub use ast::{Atom, Comparison, ConjunctiveQuery, Literal, Term, UnionQuery};
pub use canonical::{
    canonical_rule, canonicalize, is_isomorphic, param_isomorphism, substitute_params,
};
pub use containment::{contained_in, equivalent, minimize};
pub use error::{DatalogError, Result};
pub use parser::{parse_query, parse_rule};
pub use safety::{check_safety, is_safe, SafetyViolation};
pub use subquery::{safe_subqueries, safe_subqueries_with_params, Subquery};
