//! Errors for the Datalog frontend.

/// Errors raised while parsing or validating flock queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Lexical or syntactic error with position context.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// What went wrong.
        detail: String,
    },
    /// A head argument was not a variable, or similar head malformation.
    InvalidHead {
        /// Description.
        detail: String,
    },
    /// A union query with zero rules.
    EmptyUnion,
    /// Union rules disagree on head predicate or arity.
    HeadMismatch {
        /// First rule's head.
        first: String,
        /// Mismatching rule's head.
        other: String,
    },
    /// Union rules disagree on their parameter sets (§3.4 requires the
    /// flock's parameters to be shared across the union).
    ParamMismatch {
        /// First rule's parameters.
        first: String,
        /// Mismatching rule's parameters.
        other: String,
    },
    /// An operation only defined for pure conjunctive queries was asked
    /// of a query with negation (containment/minimization; see
    /// \[LS93\] for the general decision procedure the paper cites but
    /// does not require).
    UnsupportedNegation,
}

impl std::fmt::Display for DatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatalogError::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            DatalogError::InvalidHead { detail } => write!(f, "invalid head: {detail}"),
            DatalogError::EmptyUnion => write!(f, "union query must have at least one rule"),
            DatalogError::HeadMismatch { first, other } => {
                write!(
                    f,
                    "union rules have different heads: `{first}` vs `{other}`"
                )
            }
            DatalogError::ParamMismatch { first, other } => write!(
                f,
                "union rules have different parameter sets: [{first}] vs [{other}]"
            ),
            DatalogError::UnsupportedNegation => write!(
                f,
                "containment with negated subgoals is not supported (pure CQs only)"
            ),
        }
    }
}

impl std::error::Error for DatalogError {}

/// Convenience alias for Datalog results.
pub type Result<T> = std::result::Result<T, DatalogError>;
