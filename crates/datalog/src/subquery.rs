//! Enumeration of safe subqueries — the candidate `FILTER` steps.
//!
//! The Optimization Principle for Conjunctive Queries (§3.1): "consider
//! evaluating only those safe subqueries formed by deleting one or more
//! subgoals from Q". This module enumerates every nonempty proper
//! subset of a query's subgoals that passes the §3.3 safety conditions,
//! along with the parameter set each one can prune.

use std::collections::BTreeSet;

use qf_storage::Symbol;

use crate::ast::ConjunctiveQuery;
use crate::safety::is_safe;

/// Guard against pathological inputs: the enumeration is `O(2ⁿ)` in the
/// number of subgoals.
const MAX_SUBGOALS: usize = 20;

/// One safe subquery of a flock query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subquery {
    /// Indexes of the kept body literals in the original query.
    pub kept: Vec<usize>,
    /// The restricted query (same head).
    pub query: ConjunctiveQuery,
}

impl Subquery {
    /// The parameters this subquery mentions — the ones a `FILTER` step
    /// built from it can prune.
    pub fn params(&self) -> BTreeSet<Symbol> {
        self.query.params()
    }

    /// Number of kept subgoals.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// True if no subgoals kept (never produced by the enumerators).
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }
}

impl std::fmt::Display for Subquery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.query)
    }
}

/// All safe subqueries formed from nonempty **proper** subsets of the
/// body subgoals, in deterministic (bitmask) order.
pub fn safe_subqueries(q: &ConjunctiveQuery) -> Vec<Subquery> {
    let n = q.body.len();
    assert!(
        n <= MAX_SUBGOALS,
        "query has too many subgoals to enumerate"
    );
    if n < 2 {
        return Vec::new(); // no nonempty proper subsets.
    }
    let mut out = Vec::new();
    let full: u32 = (1 << n) - 1;
    for mask in 1..full {
        let kept: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let query = q.restrict(&kept);
        if is_safe(&query) {
            out.push(Subquery { kept, query });
        }
    }
    out
}

/// Safe subqueries whose parameter set is exactly `params` — the
/// candidates for a `FILTER` step restricting that parameter set
/// (heuristic 1 of §4.3: "for each selected set S, select a subset of
/// the subgoals … that is safe and includes exactly the parameters of
/// S").
pub fn safe_subqueries_with_params(
    q: &ConjunctiveQuery,
    params: &BTreeSet<Symbol>,
) -> Vec<Subquery> {
    safe_subqueries(q)
        .into_iter()
        .filter(|s| &s.params() == params)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn medical() -> ConjunctiveQuery {
        parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
        )
        .unwrap()
    }

    #[test]
    fn example_3_2_eight_safe_subqueries() {
        // The paper: "Which of the 14 nontrivial subsets of the subgoals
        // are safe? … The remaining eight subqueries are candidates."
        let subs = safe_subqueries(&medical());
        assert_eq!(subs.len(), 8);
        // Every subquery including NOT causes(D,$s) must include both
        // diagnoses(P,D) and exhibits(P,$s).
        for s in &subs {
            if s.query.negated_atoms().next().is_some() {
                let preds: Vec<String> = s
                    .query
                    .positive_atoms()
                    .map(|a| a.pred.to_string())
                    .collect();
                assert!(preds.contains(&"diagnoses".to_string()));
                assert!(preds.contains(&"exhibits".to_string()));
            }
        }
    }

    #[test]
    fn example_3_2_named_candidates_present() {
        let subs = safe_subqueries(&medical());
        let texts: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
        // The four candidates the paper discusses by number:
        assert!(texts.contains(&"answer(P) :- exhibits(P,$s)".to_string()));
        assert!(texts.contains(&"answer(P) :- treatments(P,$m)".to_string()));
        assert!(texts.contains(
            &"answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)".to_string()
        ));
        assert!(texts.contains(&"answer(P) :- exhibits(P,$s) AND treatments(P,$m)".to_string()));
    }

    #[test]
    fn basket_query_has_two_single_param_subqueries() {
        // Example 3.1: "There are only two nontrivial subqueries".
        let q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2)").unwrap();
        let subs = safe_subqueries(&q);
        assert_eq!(subs.len(), 2);
        let p1: BTreeSet<Symbol> = [Symbol::intern("1")].into_iter().collect();
        assert_eq!(safe_subqueries_with_params(&q, &p1).len(), 1);
    }

    #[test]
    fn filter_by_param_set() {
        let q = medical();
        let s: BTreeSet<Symbol> = [Symbol::intern("s")].into_iter().collect();
        let m: BTreeSet<Symbol> = [Symbol::intern("m")].into_iter().collect();
        let sm: BTreeSet<Symbol> = [Symbol::intern("s"), Symbol::intern("m")]
            .into_iter()
            .collect();
        // $s alone: exhibits(P,$s); exhibits+diagnoses;
        // exhibits+diagnoses+NOT causes; exhibits alone+diagnoses? Count:
        // subsets with $s but not $m, safe: {e}, {e,d}, {e,d,n}.
        assert_eq!(safe_subqueries_with_params(&q, &s).len(), 3);
        // $m alone: {t}, {t,d}.
        assert_eq!(safe_subqueries_with_params(&q, &m).len(), 2);
        // both: {e,t}, {e,t,d} (and the full set is excluded as proper).
        assert_eq!(safe_subqueries_with_params(&q, &sm).len(), 2);
    }

    #[test]
    fn single_subgoal_query_has_no_proper_subqueries() {
        let q = parse_rule("answer(X) :- r(X,$a)").unwrap();
        assert!(safe_subqueries(&q).is_empty());
    }

    #[test]
    fn deterministic_order() {
        let a = safe_subqueries(&medical());
        let b = safe_subqueries(&medical());
        assert_eq!(a, b);
    }
}
