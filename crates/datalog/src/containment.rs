//! Conjunctive-query containment via containment mappings (\[CM77\]).
//!
//! §3.1: "for conjunctive queries, this containment is decidable, using
//! the technique of containment mappings … the only way Q2 ⊆ Q1 can
//! hold is if Q1 is constructed from Q2 by (1) taking a subset of the
//! subgoals of Q2, and (2) splitting zero or more variables". This
//! module decides Q2 ⊆ Q1 by searching for a homomorphism from Q1 to
//! Q2 that fixes the head — which is exactly what justifies using
//! subgoal-subset subqueries as a-priori upper bounds.
//!
//! Scope: pure positive-relational bodies, with two extensions the flock
//! language needs:
//!
//! * **Parameters** behave as constants (they denote one fixed value in
//!   every instantiated member of the flock), so a homomorphism must map
//!   each parameter to itself.
//! * **Arithmetic subgoals** are handled soundly but incompletely: every
//!   arithmetic subgoal of the containing query must map onto an
//!   arithmetic subgoal of the contained query that implies it
//!   (identical, or stronger operator over the same operands). The full
//!   decision procedures the paper cites (\[Klu82\], \[ZO93\]) are not
//!   required for the optimization, which only ever *removes* subgoals.
//!
//! **Negation** is rejected ([`DatalogError::UnsupportedNegation`]);
//! the paper likewise avoids relying on \[LS93\]'s general test and keeps
//! to subgoal subsets for extended queries (§3.3).

use qf_storage::{CmpOp, FastMap, Symbol};

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term};
use crate::error::{DatalogError, Result};

/// Decide `sub ⊆ sup`: every database's answer to `sub` is contained in
/// its answer to `sup`. Returns an error if either query uses negation.
pub fn contained_in(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> Result<bool> {
    if sub.negated_atoms().next().is_some() || sup.negated_atoms().next().is_some() {
        return Err(DatalogError::UnsupportedNegation);
    }
    if sup.head.pred != sub.head.pred || sup.head.arity() != sub.head.arity() {
        return Ok(false);
    }
    // Search for a homomorphism h : terms(sup) → terms(sub) with
    // h(head of sup) = head of sub and h(body of sup) ⊆ body of sub.
    let sup_atoms: Vec<&Atom> = sup.positive_atoms().collect();
    let sub_atoms: Vec<&Atom> = sub.positive_atoms().collect();

    let mut h = Mapping::default();
    // The head must map exactly.
    for (s, t) in sup.head.args.iter().zip(sub.head.args.iter()) {
        if !h.bind(*s, *t) {
            return Ok(false);
        }
    }
    Ok(extend(&mut h, &sup_atoms, &sub_atoms, 0, sup, sub))
}

/// Decide query equivalence (mutual containment).
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> Result<bool> {
    Ok(contained_in(a, b)? && contained_in(b, a)?)
}

/// Minimize a pure conjunctive query: repeatedly delete a positive
/// subgoal when the reduced query is still equivalent to the original
/// (the classical core computation). Arithmetic subgoals are never
/// deleted. Returns an error if the query uses negation.
pub fn minimize(q: &ConjunctiveQuery) -> Result<ConjunctiveQuery> {
    if q.negated_atoms().next().is_some() {
        return Err(DatalogError::UnsupportedNegation);
    }
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for (i, l) in current.body.iter().enumerate() {
            if !l.is_positive() {
                continue;
            }
            let keep: Vec<usize> = (0..current.body.len()).filter(|&j| j != i).collect();
            let candidate = current.restrict(&keep);
            // Dropping subgoals only enlarges the result (candidate ⊇
            // current); equivalence needs candidate ⊆ current, i.e. a
            // homomorphism from current to candidate.
            if contained_in(&candidate, &current)? {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(r) => current = r,
            None => return Ok(current),
        }
    }
}

/// A partial homomorphism from the containing query's terms to the
/// contained query's terms. Constants and parameters are fixed points;
/// only variables get entries.
#[derive(Default, Clone)]
struct Mapping {
    vars: FastMap<Symbol, Term>,
}

impl Mapping {
    /// Bind `from` (a term of the containing query) to `to`; false if
    /// inconsistent with existing bindings or with constant/parameter
    /// fixity.
    fn bind(&mut self, from: Term, to: Term) -> bool {
        match from {
            Term::Const(_) | Term::Param(_) => from == to,
            Term::Var(v) => match self.vars.get(&v) {
                Some(&existing) => existing == to,
                None => {
                    self.vars.insert(v, to);
                    true
                }
            },
        }
    }

    fn apply(&self, t: Term) -> Option<Term> {
        match t {
            Term::Const(_) | Term::Param(_) => Some(t),
            Term::Var(v) => self.vars.get(&v).copied(),
        }
    }
}

/// Backtracking search: map each atom of `sup` (from index `i`) onto
/// some atom of `sub`; when all are mapped, check arithmetic implication.
fn extend(
    h: &mut Mapping,
    sup_atoms: &[&Atom],
    sub_atoms: &[&Atom],
    i: usize,
    sup: &ConjunctiveQuery,
    sub: &ConjunctiveQuery,
) -> bool {
    if i == sup_atoms.len() {
        return arithmetic_implied(h, sup, sub);
    }
    let target = sup_atoms[i];
    for cand in sub_atoms {
        if cand.pred != target.pred || cand.arity() != target.arity() {
            continue;
        }
        let saved = h.clone();
        let mut ok = true;
        for (s, t) in target.args.iter().zip(cand.args.iter()) {
            if !h.bind(*s, *t) {
                ok = false;
                break;
            }
        }
        if ok && extend(h, sup_atoms, sub_atoms, i + 1, sup, sub) {
            return true;
        }
        *h = saved;
    }
    false
}

/// Check that every arithmetic subgoal of `sup`, after mapping, is
/// implied by some arithmetic subgoal of `sub` (syntactic implication:
/// same operands with an operator at least as strong, in either
/// orientation). Sound, not complete.
fn arithmetic_implied(h: &Mapping, sup: &ConjunctiveQuery, sub: &ConjunctiveQuery) -> bool {
    'outer: for c in sup.comparisons() {
        let (Some(lhs), Some(rhs)) = (h.apply(c.lhs), h.apply(c.rhs)) else {
            // An arithmetic-only variable with no binding: cannot verify.
            return false;
        };
        // Constant-constant comparisons decide themselves.
        if let (Term::Const(a), Term::Const(b)) = (lhs, rhs) {
            if c.op.eval(a.cmp(&b)) {
                continue 'outer;
            }
            return false;
        }
        for d in sub.comparisons() {
            if implies(d, &Comparison::new(lhs, c.op, rhs)) {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Does comparison `a` syntactically imply comparison `b`?
fn implies(a: &Comparison, b: &Comparison) -> bool {
    let aligned = if a.lhs == b.lhs && a.rhs == b.rhs {
        Some(a.op)
    } else if a.lhs == b.rhs && a.rhs == b.lhs {
        Some(a.op.flipped())
    } else {
        None
    };
    let Some(op) = aligned else { return false };
    if op == b.op {
        return true;
    }
    // Strict implies non-strict; equality implies both non-stricts.
    matches!(
        (op, b.op),
        (CmpOp::Lt, CmpOp::Le | CmpOp::Ne)
            | (CmpOp::Gt, CmpOp::Ge | CmpOp::Ne)
            | (CmpOp::Eq, CmpOp::Le | CmpOp::Ge)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_rule(s).unwrap()
    }

    #[test]
    fn subgoal_subset_contains_original() {
        // §3.1: deleting a subgoal can only enlarge the answer.
        let full = q("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
        let sub1 = q("answer(B) :- baskets(B,$1)");
        assert!(contained_in(&full, &sub1).unwrap());
        // …and not conversely (on a database where $2 never co-occurs).
        assert!(!contained_in(&sub1, &full).unwrap());
    }

    #[test]
    fn identical_queries_equivalent() {
        let a = q("answer(X) :- r(X,Y) AND s(Y)");
        let b = q("answer(X) :- r(X,Y) AND s(Y)");
        assert!(equivalent(&a, &b).unwrap());
    }

    #[test]
    fn variable_renaming_equivalent() {
        let a = q("answer(X) :- r(X,Y) AND s(Y)");
        let b = q("answer(U) :- r(U,V) AND s(V)");
        assert!(equivalent(&a, &b).unwrap());
    }

    #[test]
    fn classic_redundant_subgoal() {
        // r(X,Y) AND r(X,Z) is equivalent to r(X,Y): fold Z into Y.
        let redundant = q("answer(X) :- r(X,Y) AND r(X,Z)");
        let minimal = q("answer(X) :- r(X,Y)");
        assert!(equivalent(&redundant, &minimal).unwrap());
        let m = minimize(&redundant).unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn head_fixes_mapping() {
        // answer(X,Y) over r(X,Y) is NOT equivalent to answer(X,Y) over
        // r(Y,X): the head pins the variables.
        let a = q("answer(X,Y) :- r(X,Y)");
        let b = q("answer(X,Y) :- r(Y,X)");
        assert!(!contained_in(&a, &b).unwrap());
        assert!(!contained_in(&b, &a).unwrap());
    }

    #[test]
    fn params_are_rigid() {
        // baskets(B,$1) does not contain baskets(B,$2): a mapping may
        // not send $1 to $2 (different parameters, different columns of
        // the flock result).
        let a = q("answer(B) :- baskets(B,$1)");
        let b = q("answer(B) :- baskets(B,$2)");
        assert!(!contained_in(&a, &b).unwrap());
        assert!(!contained_in(&b, &a).unwrap());
    }

    #[test]
    fn constants_must_match() {
        let a = q("answer(B) :- baskets(B,beer)");
        let b = q("answer(B) :- baskets(B,wine)");
        assert!(!contained_in(&a, &b).unwrap());
        let c = q("answer(B) :- baskets(B,X)");
        // a ⊆ c (beer is a special case); c ⊄ a.
        assert!(contained_in(&a, &c).unwrap());
        assert!(!contained_in(&c, &a).unwrap());
    }

    #[test]
    fn path_queries_chain() {
        // Longer path ⊆ shorter path on the same start.
        let p2 = q("answer(X) :- arc(X,Y) AND arc(Y,Z)");
        let p1 = q("answer(X) :- arc(X,Y)");
        assert!(contained_in(&p2, &p1).unwrap());
        assert!(!contained_in(&p1, &p2).unwrap());
    }

    #[test]
    fn arithmetic_soundness() {
        let strict = q("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
        let loose = q("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 <= $2");
        // strict ⊆ loose (< implies <=).
        assert!(contained_in(&strict, &loose).unwrap());
        // loose ⊄ strict under our sound test.
        assert!(!contained_in(&loose, &strict).unwrap());
        // Dropping the comparison contains the original.
        let none = q("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
        assert!(contained_in(&strict, &none).unwrap());
        assert!(!contained_in(&none, &strict).unwrap());
    }

    #[test]
    fn negation_rejected() {
        let a = q("answer(P) :- r(P,D) AND NOT c(D)");
        let b = q("answer(P) :- r(P,D)");
        assert!(matches!(
            contained_in(&a, &b),
            Err(DatalogError::UnsupportedNegation)
        ));
        assert!(matches!(
            minimize(&a),
            Err(DatalogError::UnsupportedNegation)
        ));
    }

    #[test]
    fn minimize_preserves_arithmetic() {
        let r = q("answer(X) :- r(X,Y) AND r(X,Z) AND X < Y");
        let m = minimize(&r).unwrap();
        // r(X,Z) folds into r(X,Y) — but only the subgoal NOT involved
        // in the comparison can go.
        assert_eq!(m.comparisons().count(), 1);
        assert_eq!(m.positive_atoms().count(), 1);
        assert!(equivalent(&m, &r).unwrap());
    }

    #[test]
    fn different_head_predicates_not_contained() {
        let a = q("answer(X) :- r(X)");
        let b = q("other(X) :- r(X)");
        assert!(!contained_in(&a, &b).unwrap());
    }
}
