//! Query safety (§3.2–3.3).
//!
//! A subset of a flock query's subgoals is only usable as a `FILTER`
//! step if it is *safe* — otherwise it "defines an infinite set of
//! tuples for the head predicate, and therefore could not provide a
//! useful upper bound" (§3.2). For extended CQs the paper gives three
//! conditions (\[UW97\]):
//!
//! 1. every head variable appears in a nonnegated, nonarithmetic
//!    subgoal of the body;
//! 2. every variable in a negated subgoal appears in a nonnegated,
//!    nonarithmetic subgoal;
//! 3. every variable in an arithmetic subgoal appears in a nonnegated,
//!    nonarithmetic subgoal;
//!
//! where "parameters are variables, not constants, as far as the above
//! safety conditions are concerned" (§3.3) — they are exempt from (1)
//! only because they cannot appear in the head at all.

use std::collections::BTreeSet;

use crate::ast::{ConjunctiveQuery, Literal, Term};

/// A violation of one of the three safety conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Condition 1: a head variable not bound by a positive subgoal.
    HeadVarUnbound {
        /// Rendering of the unbound variable.
        term: String,
    },
    /// Condition 2: a negated subgoal's variable/parameter not bound.
    NegatedUnbound {
        /// Rendering of the unbound term.
        term: String,
        /// The offending subgoal.
        subgoal: String,
    },
    /// Condition 3: an arithmetic subgoal's variable/parameter not bound.
    ArithmeticUnbound {
        /// Rendering of the unbound term.
        term: String,
        /// The offending subgoal.
        subgoal: String,
    },
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyViolation::HeadVarUnbound { term } => write!(
                f,
                "head variable {term} does not appear in any positive relational subgoal"
            ),
            SafetyViolation::NegatedUnbound { term, subgoal } => write!(
                f,
                "{term} in negated subgoal `{subgoal}` does not appear in any positive relational subgoal"
            ),
            SafetyViolation::ArithmeticUnbound { term, subgoal } => write!(
                f,
                "{term} in arithmetic subgoal `{subgoal}` does not appear in any positive relational subgoal"
            ),
        }
    }
}

/// The set of terms (variables and parameters) bound by positive
/// relational subgoals.
fn positive_bindings(q: &ConjunctiveQuery) -> BTreeSet<Term> {
    let mut bound = BTreeSet::new();
    for a in q.positive_atoms() {
        for &t in &a.args {
            if !t.is_const() {
                bound.insert(t);
            }
        }
    }
    bound
}

/// Check the three safety conditions, reporting the first violation.
pub fn check_safety(q: &ConjunctiveQuery) -> Result<(), SafetyViolation> {
    let bound = positive_bindings(q);

    // Condition 1 — head variables.
    for &t in &q.head.args {
        if t.is_var() && !bound.contains(&t) {
            return Err(SafetyViolation::HeadVarUnbound {
                term: t.to_string(),
            });
        }
    }

    // Conditions 2 and 3 — negated and arithmetic subgoals; parameters
    // count as variables here.
    for l in &q.body {
        match l {
            Literal::Neg(a) => {
                for &t in &a.args {
                    if !t.is_const() && !bound.contains(&t) {
                        return Err(SafetyViolation::NegatedUnbound {
                            term: t.to_string(),
                            subgoal: a.to_string(),
                        });
                    }
                }
            }
            Literal::Cmp(c) => {
                for t in c.terms() {
                    if !bound.contains(&t) {
                        return Err(SafetyViolation::ArithmeticUnbound {
                            term: t.to_string(),
                            subgoal: c.to_string(),
                        });
                    }
                }
            }
            Literal::Pos(_) => {}
        }
    }
    Ok(())
}

/// True if the query passes [`check_safety`].
pub fn is_safe(q: &ConjunctiveQuery) -> bool {
    check_safety(q).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn full_medical_query_is_safe() {
        let q = parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
        )
        .unwrap();
        assert!(is_safe(&q));
    }

    #[test]
    fn lone_negated_subgoal_unsafe() {
        // §3.2: "answer(P) :- NOT causes(D,$s)" makes no sense.
        let q = parse_rule("answer(P) :- NOT causes(D,$s)").unwrap();
        let err = check_safety(&q).unwrap_err();
        // Head variable P is the first violation found.
        assert!(matches!(err, SafetyViolation::HeadVarUnbound { .. }));
    }

    #[test]
    fn negation_needs_both_bindings() {
        // NOT causes(D,$s) with only exhibits(P,$s): D unbound.
        let q = parse_rule("answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(matches!(err, SafetyViolation::NegatedUnbound { .. }));

        // With only diagnoses(P,D): $s unbound — parameters count too.
        let q = parse_rule("answer(P) :- diagnoses(P,D) AND NOT causes(D,$s)").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(
            matches!(&err, SafetyViolation::NegatedUnbound { term, .. } if term == "$s"),
            "got {err:?}"
        );

        // With both positive subgoals it is safe.
        let q = parse_rule("answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)")
            .unwrap();
        assert!(is_safe(&q));
    }

    #[test]
    fn arithmetic_needs_bindings() {
        let q = parse_rule("answer(B) :- baskets(B,$1) AND $1 < $2").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(matches!(&err, SafetyViolation::ArithmeticUnbound { term, .. } if term == "$2"));

        let q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2").unwrap();
        assert!(is_safe(&q));
    }

    #[test]
    fn constants_never_need_binding() {
        let q = parse_rule("answer(B) :- baskets(B,$1) AND NOT baskets(B,beer) AND B > 0").unwrap();
        assert!(is_safe(&q));
    }

    #[test]
    fn head_var_bound_only_in_negation_is_unsafe() {
        let q = parse_rule("answer(P) :- r($s) AND NOT q(P)").unwrap();
        // P appears only in a negated subgoal: violates condition 1
        // (and 2, but 1 is checked first).
        assert!(matches!(
            check_safety(&q).unwrap_err(),
            SafetyViolation::HeadVarUnbound { .. }
        ));
    }
}
