//! Abstract syntax for the query-flock language: unions of extended
//! conjunctive queries (§2.3).

use std::collections::BTreeSet;

use qf_storage::{CmpOp, Symbol, Value};

use crate::error::{DatalogError, Result};

/// A term: a variable, a `$`-parameter, or a constant.
///
/// Variables are ordinary Datalog variables (`B`, `P`, `Y1`);
/// parameters are "used in roles normally reserved for constants" (§2)
/// and are what the flock is *about*. "Parameters are variables, not
/// constants, as far as the … safety conditions are concerned" (§3.3) —
/// but for containment mappings they behave as constants (they stand
/// for a fixed, if unknown, value in every instantiated query).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A query variable, e.g. `B`.
    Var(Symbol),
    /// A flock parameter, e.g. `$1` (stored without the `$`).
    Param(Symbol),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Parameter term from a name (without the `$`).
    pub fn param(name: &str) -> Term {
        Term::Param(Symbol::intern(name))
    }

    /// Constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// True for `Term::Var`.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True for `Term::Param`.
    pub fn is_param(self) -> bool {
        matches!(self, Term::Param(_))
    }

    /// True for `Term::Const`.
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(s) => write!(f, "{s}"),
            Term::Param(s) => write!(f, "${s}"),
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

impl std::fmt::Debug for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// A relational atom: `pred(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Symbol::intern(pred),
            args,
        }
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Variables appearing in the atom, in argument order (with dups).
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(|t| match t {
            Term::Var(s) => Some(*s),
            _ => None,
        })
    }

    /// Parameters appearing in the atom.
    pub fn params(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(|t| match t {
            Term::Param(s) => Some(*s),
            _ => None,
        })
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Debug for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// An arithmetic subgoal: `lhs op rhs` (§2.3 extension 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left term.
    pub lhs: Term,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl Comparison {
    /// Build a comparison subgoal.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Comparison {
        Comparison { lhs, op, rhs }
    }

    /// The non-constant terms of the comparison.
    pub fn terms(&self) -> impl Iterator<Item = Term> {
        [self.lhs, self.rhs].into_iter().filter(|t| !t.is_const())
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl std::fmt::Debug for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// A body literal: positive relational, negated relational (§2.3
/// extension 1), or arithmetic.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// `p(…)`
    Pos(Atom),
    /// `NOT p(…)`
    Neg(Atom),
    /// `X < Y` etc.
    Cmp(Comparison),
}

impl Literal {
    /// The atom, if relational (positive or negated).
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(_) => None,
        }
    }

    /// True for positive relational literals.
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    /// All variable and parameter terms mentioned by the literal.
    pub fn open_terms(&self) -> Vec<Term> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => {
                a.args.iter().copied().filter(|t| !t.is_const()).collect()
            }
            Literal::Cmp(c) => c.terms().collect(),
        }
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "NOT {a}"),
            Literal::Cmp(c) => write!(f, "{c}"),
        }
    }
}

impl std::fmt::Debug for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// An extended conjunctive query: `head :- l1 AND … AND ln`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Head atom (`answer(B)`); arguments must be variables.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl ConjunctiveQuery {
    /// Build a query.
    pub fn new(head: Atom, body: Vec<Literal>) -> ConjunctiveQuery {
        ConjunctiveQuery { head, body }
    }

    /// The distinct parameters of the query, sorted by name.
    pub fn params(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for l in &self.body {
            for t in l.open_terms() {
                if let Term::Param(s) = t {
                    out.insert(s);
                }
            }
        }
        out
    }

    /// The distinct variables of head and body, sorted by name.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for t in &self.head.args {
            if let Term::Var(s) = t {
                out.insert(*s);
            }
        }
        for l in &self.body {
            for t in l.open_terms() {
                if let Term::Var(s) = t {
                    out.insert(s);
                }
            }
        }
        out
    }

    /// Variables appearing in the head.
    pub fn head_vars(&self) -> BTreeSet<Symbol> {
        self.head.vars().collect()
    }

    /// Positive relational atoms of the body.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// Negated relational atoms of the body.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// Arithmetic subgoals of the body.
    pub fn comparisons(&self) -> impl Iterator<Item = &Comparison> {
        self.body.iter().filter_map(|l| match l {
            Literal::Cmp(c) => Some(c),
            _ => None,
        })
    }

    /// Names of all predicates used in the body (base data the query
    /// reads), sorted and deduplicated.
    pub fn predicates(&self) -> BTreeSet<Symbol> {
        self.body
            .iter()
            .filter_map(Literal::atom)
            .map(|a| a.pred)
            .collect()
    }

    /// The query restricted to the body literals at `kept` (same head).
    pub fn restrict(&self, kept: &[usize]) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.clone(),
            body: kept.iter().map(|&i| self.body[i].clone()).collect(),
        }
    }

    /// A copy with extra literals appended (plan generation adds
    /// prior-step subgoals this way, §4.2 rule 3b).
    pub fn with_extra(&self, extra: Vec<Literal>) -> ConjunctiveQuery {
        let mut body = Vec::with_capacity(extra.len() + self.body.len());
        body.extend(extra);
        body.extend(self.body.iter().cloned());
        ConjunctiveQuery {
            head: self.head.clone(),
            body,
        }
    }

    /// Validate structural invariants: head args are variables, every
    /// head variable also occurs somewhere in the body (the head half of
    /// safety; the full safety check is [`crate::safety::check_safety`]).
    pub fn validate(&self) -> Result<()> {
        for t in &self.head.args {
            if !t.is_var() {
                return Err(DatalogError::InvalidHead {
                    detail: format!("head argument `{t}` is not a variable"),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// A union of extended conjunctive queries (§3.4): several rules with
/// the same head predicate, arity, and parameter set.
#[derive(Clone, PartialEq, Eq)]
pub struct UnionQuery {
    rules: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build and validate a union query.
    pub fn new(rules: Vec<ConjunctiveQuery>) -> Result<UnionQuery> {
        if rules.is_empty() {
            return Err(DatalogError::EmptyUnion);
        }
        let first = &rules[0];
        for r in &rules {
            r.validate()?;
            if r.head.pred != first.head.pred || r.head.arity() != first.head.arity() {
                return Err(DatalogError::HeadMismatch {
                    first: first.head.to_string(),
                    other: r.head.to_string(),
                });
            }
            if r.params() != first.params() {
                return Err(DatalogError::ParamMismatch {
                    first: format_params(&first.params()),
                    other: format_params(&r.params()),
                });
            }
        }
        Ok(UnionQuery { rules })
    }

    /// A single-rule union.
    pub fn single(rule: ConjunctiveQuery) -> Result<UnionQuery> {
        UnionQuery::new(vec![rule])
    }

    /// The rules.
    pub fn rules(&self) -> &[ConjunctiveQuery] {
        &self.rules
    }

    /// True if the union has exactly one rule.
    pub fn is_single(&self) -> bool {
        self.rules.len() == 1
    }

    /// The shared parameter set, sorted by name.
    pub fn params(&self) -> BTreeSet<Symbol> {
        self.rules[0].params()
    }

    /// Head predicate name.
    pub fn head_pred(&self) -> Symbol {
        self.rules[0].head.pred
    }

    /// Head arity.
    pub fn head_arity(&self) -> usize {
        self.rules[0].head.arity()
    }

    /// All base predicates read by any rule.
    pub fn predicates(&self) -> BTreeSet<Symbol> {
        self.rules.iter().flat_map(|r| r.predicates()).collect()
    }
}

impl std::fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for UnionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

fn format_params(params: &BTreeSet<Symbol>) -> String {
    params
        .iter()
        .map(|p| format!("${p}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 market-basket query built programmatically.
    fn basket_cq() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            Atom::new("answer", vec![Term::var("B")]),
            vec![
                Literal::Pos(Atom::new("baskets", vec![Term::var("B"), Term::param("1")])),
                Literal::Pos(Atom::new("baskets", vec![Term::var("B"), Term::param("2")])),
            ],
        )
    }

    #[test]
    fn params_and_vars() {
        let q = basket_cq();
        let params: Vec<String> = q.params().iter().map(|p| p.to_string()).collect();
        assert_eq!(params, vec!["1", "2"]);
        let vars: Vec<String> = q.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["B"]);
    }

    #[test]
    fn display_roundtrips_meaningfully() {
        let q = basket_cq();
        assert_eq!(
            q.to_string(),
            "answer(B) :- baskets(B,$1) AND baskets(B,$2)"
        );
    }

    #[test]
    fn restrict_picks_subgoals() {
        let q = basket_cq();
        let sub = q.restrict(&[0]);
        assert_eq!(sub.to_string(), "answer(B) :- baskets(B,$1)");
        assert_eq!(sub.params().len(), 1);
    }

    #[test]
    fn head_must_be_variables() {
        let bad = ConjunctiveQuery::new(
            Atom::new("answer", vec![Term::param("1")]),
            vec![Literal::Pos(Atom::new("r", vec![Term::param("1")]))],
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn union_param_sets_must_agree() {
        let r1 = basket_cq();
        let r2 = r1.restrict(&[0]); // only $1
        let err = UnionQuery::new(vec![r1, r2]).unwrap_err();
        assert!(matches!(err, DatalogError::ParamMismatch { .. }));
    }

    #[test]
    fn union_heads_must_agree() {
        let r1 = basket_cq();
        let mut r2 = basket_cq();
        r2.head = Atom::new("other", vec![Term::var("B")]);
        assert!(matches!(
            UnionQuery::new(vec![r1, r2]).unwrap_err(),
            DatalogError::HeadMismatch { .. }
        ));
    }

    #[test]
    fn empty_union_rejected() {
        assert!(matches!(
            UnionQuery::new(vec![]).unwrap_err(),
            DatalogError::EmptyUnion
        ));
    }

    #[test]
    fn with_extra_prepends() {
        let q = basket_cq();
        let extra = Literal::Pos(Atom::new("ok", vec![Term::param("1")]));
        let q2 = q.with_extra(vec![extra]);
        assert_eq!(q2.body.len(), 3);
        assert!(q2.to_string().starts_with("answer(B) :- ok($1)"));
    }

    #[test]
    fn comparison_terms_skip_constants() {
        let c = Comparison::new(Term::var("X"), CmpOp::Lt, Term::constant(5i64));
        assert_eq!(c.terms().count(), 1);
    }
}
