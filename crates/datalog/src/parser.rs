//! Parser for the paper's concrete Datalog syntax.
//!
//! Grammar (examples straight from the paper's figures):
//!
//! ```text
//! query   := rule+                      -- a union of rules (Fig. 4)
//! rule    := atom ":-" body ("." | ";")?
//! body    := literal (("AND" | ",") literal)*
//! literal := "NOT" atom | atom | term cmp term
//! atom    := pred "(" term ("," term)* ")"
//! term    := VARIABLE | "$" name | constant
//! cmp     := "<" | "<=" | "=" | "!=" | ">=" | ">"
//! ```
//!
//! Identifiers starting with an uppercase letter are variables (Prolog
//! convention; the paper writes `B`, `P`, `D`, `Y1`); lowercase
//! identifiers in argument position are symbolic constants; `$`-prefixed
//! names are flock parameters. Integers and single/double-quoted strings
//! are constants. Keywords `AND`/`NOT` are case-insensitive.

use qf_storage::CmpOp;

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Literal, Term, UnionQuery};
use crate::error::{DatalogError, Result};

/// Parse one or more rules into a validated [`UnionQuery`].
pub fn parse_query(input: &str) -> Result<UnionQuery> {
    let mut p = Parser::new(input)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    UnionQuery::new(rules)
}

/// Parse exactly one rule.
pub fn parse_rule(input: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser::new(input)?;
    let rule = p.rule()?;
    if !p.at_end() {
        return Err(p.error("expected end of input after rule"));
    }
    Ok(rule)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Param(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Implies,
    Cmp(CmpOp),
    Dot,
    Semi,
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            len: input.len(),
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|(o, _)| *o).unwrap_or(self.len)
    }

    fn error(&self, detail: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(DatalogError::Parse {
                offset: self.toks[self.pos - 1].0,
                detail: format!("expected {what}, found {t:?}"),
            }),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn rule(&mut self) -> Result<ConjunctiveQuery> {
        let head = self.atom()?;
        self.expect(Tok::Implies, "`:-`")?;
        let mut body = vec![self.literal()?];
        loop {
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                    body.push(self.literal()?);
                }
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("and") => {
                    self.pos += 1;
                    body.push(self.literal()?);
                }
                _ => break,
            }
        }
        // Optional rule terminator.
        if matches!(self.peek(), Some(Tok::Dot) | Some(Tok::Semi)) {
            self.pos += 1;
        }
        let rule = ConjunctiveQuery::new(head, body);
        rule.validate()?;
        Ok(rule)
    }

    fn literal(&mut self) -> Result<Literal> {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case("not") {
                self.pos += 1;
                return Ok(Literal::Neg(self.atom()?));
            }
        }
        // Could be an atom `p(...)` or a comparison `term op term`.
        // Disambiguate: an identifier followed by `(` begins an atom.
        let is_atom = matches!(
            (self.peek(), self.toks.get(self.pos + 1).map(|(_, t)| t)),
            (Some(Tok::Ident(_)), Some(Tok::LParen))
        );
        if is_atom {
            return Ok(Literal::Pos(self.atom()?));
        }
        let lhs = self.term()?;
        let op = match self.next() {
            Some(Tok::Cmp(op)) => op,
            other => {
                return Err(self.error(format!(
                    "expected comparison operator after `{lhs}`, found {other:?}"
                )))
            }
        };
        let rhs = self.term()?;
        Ok(Literal::Cmp(Comparison::new(lhs, op, rhs)))
    }

    fn atom(&mut self) -> Result<Atom> {
        let pred = match self.next() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.error(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(Tok::LParen, "`(`")?;
        let mut args = vec![self.term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            args.push(self.term()?);
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(Atom::new(&pred, args))
    }

    fn term(&mut self) -> Result<Term> {
        match self.next() {
            Some(Tok::Ident(s)) => {
                let first = s.chars().next().unwrap_or('a');
                if first.is_ascii_uppercase() || first == '_' {
                    Ok(Term::var(&s))
                } else {
                    Ok(Term::constant(s.as_str()))
                }
            }
            Some(Tok::Param(s)) => Ok(Term::param(&s)),
            Some(Tok::Int(v)) => Ok(Term::constant(v)),
            Some(Tok::Str(s)) => Ok(Term::constant(s.as_str())),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => i += 1,
            '%' | '#' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((start, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((start, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((start, Tok::Comma));
                i += 1;
            }
            '.' => {
                toks.push((start, Tok::Dot));
                i += 1;
            }
            ';' => {
                toks.push((start, Tok::Semi));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push((start, Tok::Implies));
                    i += 2;
                } else {
                    return Err(lex_err(start, "expected `:-`"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Cmp(CmpOp::Le)));
                    i += 2;
                } else {
                    toks.push((start, Tok::Cmp(CmpOp::Lt)));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Cmp(CmpOp::Ge)));
                    i += 2;
                } else {
                    toks.push((start, Tok::Cmp(CmpOp::Gt)));
                    i += 1;
                }
            }
            '=' => {
                toks.push((start, Tok::Cmp(CmpOp::Eq)));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Cmp(CmpOp::Ne)));
                    i += 2;
                } else {
                    return Err(lex_err(start, "expected `!=`"));
                }
            }
            '$' => {
                i += 1;
                let name_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == name_start {
                    return Err(lex_err(start, "`$` must be followed by a parameter name"));
                }
                toks.push((start, Tok::Param(input[name_start..i].to_string())));
            }
            '"' | '\'' => {
                let quote = bytes[i];
                i += 1;
                let str_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(lex_err(start, "unterminated string literal"));
                }
                toks.push((start, Tok::Str(input[str_start..i].to_string())));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| lex_err(start, format!("bad integer `{text}`")))?;
                toks.push((start, Tok::Int(v)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((start, Tok::Ident(input[start..i].to_string())));
            }
            other => return Err(lex_err(start, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

fn lex_err(offset: usize, detail: impl Into<String>) -> DatalogError {
    DatalogError::Parse {
        offset,
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_market_basket() {
        let q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2)").unwrap();
        assert_eq!(
            q.to_string(),
            "answer(B) :- baskets(B,$1) AND baskets(B,$2)"
        );
        assert_eq!(q.params().len(), 2);
    }

    #[test]
    fn lexicographic_restriction() {
        let q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2").unwrap();
        assert_eq!(q.comparisons().count(), 1);
    }

    #[test]
    fn fig3_medical_with_negation() {
        let q = parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
        )
        .unwrap();
        assert_eq!(q.negated_atoms().count(), 1);
        assert_eq!(q.positive_atoms().count(), 3);
        let params: Vec<String> = q.params().iter().map(|p| p.to_string()).collect();
        assert_eq!(params, vec!["m", "s"]);
    }

    #[test]
    fn fig4_union_of_three_rules() {
        let q = parse_query(
            "answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2",
        )
        .unwrap();
        assert_eq!(q.rules().len(), 3);
        assert_eq!(q.params().len(), 2);
    }

    #[test]
    fn commas_and_terminators_accepted() {
        let q = parse_query("answer(X) :- r(X,$a), s(X).").unwrap();
        assert_eq!(q.rules()[0].body.len(), 2);
        let q = parse_query("answer(X) :- r(X,$a);").unwrap();
        assert_eq!(q.rules().len(), 1);
    }

    #[test]
    fn constants_parse_by_case_and_quotes() {
        let q = parse_rule(
            "answer(B) :- baskets(B,beer) AND baskets(B,\"Diet Coke\") AND baskets(B,42)",
        )
        .unwrap();
        let consts: Vec<Term> = q.positive_atoms().map(|a| a.args[1]).collect();
        assert!(consts.iter().all(|t| t.is_const()));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_rule("answer(X) :- r(X) and not s(X)").unwrap();
        assert_eq!(q.negated_atoms().count(), 1);
    }

    #[test]
    fn comments_skipped() {
        let q = parse_query("% the flock\nanswer(X) :- r(X,$a) # tail\n").unwrap();
        assert_eq!(q.rules().len(), 1);
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_rule("answer(B) :- ??").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
        let err = parse_rule("answer(B baskets(B,$1)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"), "got: {msg}");
    }

    #[test]
    fn negative_integers() {
        let q = parse_rule("answer(X) :- r(X,-5) AND X > -10").unwrap();
        assert_eq!(q.comparisons().count(), 1);
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(parse_rule("answer(X) :- r(X,\"oops)").is_err());
    }

    #[test]
    fn param_in_head_rejected() {
        assert!(parse_rule("answer($1) :- r($1)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected_by_parse_rule() {
        assert!(parse_rule("answer(X) :- r(X) answer(Y) :- r(Y)").is_err());
        // …but parse_query accepts it as a union (same head, params).
        assert!(parse_query("answer(X) :- r(X) answer(Y) :- r(Y)").is_ok());
    }
}
