//! Canonical renaming and isomorphism of conjunctive queries.
//!
//! Example 3.1 observes that the two single-parameter subqueries of the
//! basket flock are "exactly the same … by symmetry" — the optimizer
//! can evaluate one and reuse it. Detecting such symmetry is query
//! isomorphism: equality up to a consistent renaming of variables
//! (parameters and constants stay fixed — a flock's parameters are its
//! output columns, so `$1` and `$2` are *not* interchangeable within a
//! single flock's plan; symmetry is exploited by the caller renaming
//! results, as classic a-priori does, §4.3 footnote 3).

use qf_storage::{FastMap, Symbol};

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Literal, Term};

/// Rename the query's variables to canonical names `V0`, `V1`, … in
/// first-occurrence order (head first, then body, left to right).
/// Parameters and constants are untouched. Two queries that differ only
/// by variable names canonicalize identically.
pub fn canonicalize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut map: FastMap<Symbol, Symbol> = FastMap::default();
    let mut next = 0usize;
    let mut rename = |t: Term| -> Term {
        match t {
            Term::Var(v) => {
                let entry = map.entry(v).or_insert_with(|| {
                    let name = format!("V{next}");
                    next += 1;
                    Symbol::intern(&name)
                });
                Term::Var(*entry)
            }
            other => other,
        }
    };
    let head = Atom {
        pred: q.head.pred,
        args: q.head.args.iter().map(|&t| rename(t)).collect(),
    };
    let body = q
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => Literal::Pos(Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| rename(t)).collect(),
            }),
            Literal::Neg(a) => Literal::Neg(Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| rename(t)).collect(),
            }),
            Literal::Cmp(c) => Literal::Cmp(Comparison::new(rename(c.lhs), c.op, rename(c.rhs))),
        })
        .collect();
    ConjunctiveQuery::new(head, body)
}

/// Fully canonical form: canonical variable names **and** a canonical
/// body order, reached by alternating [`canonicalize`] with sorting the
/// body by display text until a fixpoint. Two queries that differ only
/// by variable names and subgoal order produce the *same* rule — the
/// rendered text of this form is a syntax-insensitive cache key.
///
/// Parameters and constants are untouched (a flock's parameters are its
/// output columns, so `$1` and `$2` are not interchangeable).
pub fn canonical_rule(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut c = canonicalize(q);
    // The alternation converges in a couple of passes for the small
    // rules flocks use; the bound keeps pathological inputs from
    // spinning (the last form is still deterministic for a given input,
    // merely not provably order-insensitive).
    for _ in 0..4 {
        let mut sorted = c.clone();
        sorted.body.sort_by_key(|l| l.to_string());
        let renamed = canonicalize(&sorted);
        if renamed == c {
            break;
        }
        c = renamed;
    }
    c
}

/// Syntactic isomorphism: equal after canonical renaming **and** body
/// reordering. Sound (isomorphic queries are equivalent) but not
/// complete for semantic equivalence — use
/// [`crate::containment::equivalent`] for that on pure CQs. Unlike
/// `equivalent`, this handles negation, since renaming is semantics-
/// preserving regardless of literal polarity.
pub fn is_isomorphic(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    if a.body.len() != b.body.len() {
        return false;
    }
    let mut ca = canonicalize(a);
    let mut cb = canonicalize(b);
    // Canonical form depends on body order; sort bodies by display text
    // after renaming and re-canonicalize to settle ordering-induced
    // naming differences. Two passes reach a fixpoint for the small
    // queries flocks use; fall back to direct comparison after that.
    for _ in 0..2 {
        ca.body.sort_by_key(|l| l.to_string());
        cb.body.sort_by_key(|l| l.to_string());
        if ca == cb {
            return true;
        }
        ca = canonicalize(&ca);
        cb = canonicalize(&cb);
    }
    ca == cb
}

/// Find a bijection between the parameter sets of `a` and `b` under
/// which the queries are isomorphic — the symmetry classic a-priori
/// exploits (§4.3 footnote 3: "the a-priori method takes advantage of
/// symmetry among the parameters"). Returns pairs `(param of a,
/// param of b)` or `None`.
///
/// The search tries every bijection; flocks have at most a handful of
/// parameters, so the factorial is tiny.
pub fn param_isomorphism(
    a: &ConjunctiveQuery,
    b: &ConjunctiveQuery,
) -> Option<Vec<(Symbol, Symbol)>> {
    let pa: Vec<Symbol> = a.params().into_iter().collect();
    let pb: Vec<Symbol> = b.params().into_iter().collect();
    if pa.len() != pb.len() || a.body.len() != b.body.len() {
        return None;
    }
    let mut perm: Vec<usize> = (0..pb.len()).collect();
    // Heap's-algorithm-free permutation enumeration via sorted stream.
    loop {
        let mapping: Vec<(Symbol, Symbol)> = pa
            .iter()
            .zip(perm.iter())
            .map(|(&x, &i)| (x, pb[i]))
            .collect();
        let renamed = substitute_params(a, &mapping);
        if is_isomorphic(&renamed, b) {
            return Some(mapping);
        }
        if !next_permutation(&mut perm) {
            return None;
        }
    }
}

/// Rename parameters of `q` according to `mapping` pairs.
pub fn substitute_params(q: &ConjunctiveQuery, mapping: &[(Symbol, Symbol)]) -> ConjunctiveQuery {
    let subst = |t: Term| -> Term {
        if let Term::Param(p) = t {
            if let Some(&(_, to)) = mapping.iter().find(|(from, _)| *from == p) {
                return Term::Param(to);
            }
        }
        t
    };
    let head = Atom {
        pred: q.head.pred,
        args: q.head.args.iter().map(|&t| subst(t)).collect(),
    };
    let body = q
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => Literal::Pos(Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| subst(t)).collect(),
            }),
            Literal::Neg(a) => Literal::Neg(Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| subst(t)).collect(),
            }),
            Literal::Cmp(c) => Literal::Cmp(Comparison::new(subst(c.lhs), c.op, subst(c.rhs))),
        })
        .collect();
    ConjunctiveQuery::new(head, body)
}

/// Advance `perm` to the next lexicographic permutation; false at the
/// last one.
fn next_permutation(perm: &mut [usize]) -> bool {
    if perm.len() < 2 {
        return false;
    }
    let mut i = perm.len() - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = perm.len() - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_rule(s).unwrap()
    }

    #[test]
    fn renaming_detected() {
        let a = q("answer(X) :- r(X,Y) AND s(Y,$p)");
        let b = q("answer(U) :- r(U,W) AND s(W,$p)");
        assert!(is_isomorphic(&a, &b));
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn body_order_ignored() {
        let a = q("answer(X) :- r(X,Y) AND s(Y)");
        let b = q("answer(X) :- s(Y) AND r(X,Y)");
        assert!(is_isomorphic(&a, &b));
    }

    #[test]
    fn params_are_not_interchangeable() {
        let a = q("answer(B) :- baskets(B,$1)");
        let b = q("answer(B) :- baskets(B,$2)");
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn different_structure_rejected() {
        let a = q("answer(X) :- r(X,Y) AND r(Y,X)");
        let b = q("answer(X) :- r(X,Y) AND r(X,Y)");
        assert!(!is_isomorphic(&a, &b));
        let c = q("answer(X) :- r(X,Y)");
        assert!(!is_isomorphic(&a, &c));
    }

    #[test]
    fn negation_supported() {
        let a = q("answer(P) :- d(P,X) AND NOT c(X,$s)");
        let b = q("answer(Q) :- d(Q,Z) AND NOT c(Z,$s)");
        assert!(is_isomorphic(&a, &b));
        let c = q("answer(P) :- d(P,X) AND c(X,$s)");
        assert!(!is_isomorphic(&a, &c));
    }

    #[test]
    fn canonical_rule_is_syntax_insensitive() {
        // Same rule, different variable names AND different body order.
        let a = q("answer(X) :- r(X,Y) AND s(Y,$p) AND X < 9");
        let b = q("answer(U) :- s(W,$p) AND U < 9 AND r(U,W)");
        assert_eq!(canonical_rule(&a), canonical_rule(&b));
        assert_eq!(
            canonical_rule(&a).to_string(),
            canonical_rule(&b).to_string()
        );
        // Canonicalizing a canonical rule is a no-op.
        let c = canonical_rule(&a);
        assert_eq!(canonical_rule(&c), c);
        // Different parameters stay different.
        let d = q("answer(X) :- r(X,Y) AND s(Y,$q) AND X < 9");
        assert_ne!(canonical_rule(&a), canonical_rule(&d));
    }

    #[test]
    fn canonical_names_are_stable() {
        let a = q("answer(Zed) :- r(Zed,Alpha) AND s(Alpha)");
        let c = canonicalize(&a);
        assert_eq!(c.to_string(), "answer(V0) :- r(V0,V1) AND s(V1)");
    }

    #[test]
    fn param_symmetry_detected() {
        // Example 3.1: the two single-parameter basket subqueries are
        // "exactly the same" up to renaming $1 ↔ $2.
        let a = q("answer(B) :- baskets(B,$1)");
        let b = q("answer(B) :- baskets(B,$2)");
        let mapping = param_isomorphism(&a, &b).expect("symmetric");
        assert_eq!(mapping.len(), 1);
        assert_eq!(mapping[0].0.to_string(), "1");
        assert_eq!(mapping[0].1.to_string(), "2");
    }

    #[test]
    fn param_symmetry_respects_structure() {
        // exhibits vs treatments: no renaming makes these isomorphic.
        let a = q("answer(P) :- exhibits(P,$s)");
        let b = q("answer(P) :- treatments(P,$m)");
        assert!(param_isomorphism(&a, &b).is_none());
    }

    #[test]
    fn multi_param_bijection() {
        let a = q("answer(B) :- r(B,$x) AND s(B,$y)");
        let b = q("answer(B) :- s(B,$p) AND r(B,$q)");
        let mapping = param_isomorphism(&a, &b).expect("bijection exists");
        // $x must map to $q (both in r), $y to $p (both in s).
        let get = |from: &str| {
            mapping
                .iter()
                .find(|(f, _)| f.to_string() == from)
                .map(|(_, t)| t.to_string())
                .unwrap()
        };
        assert_eq!(get("x"), "q");
        assert_eq!(get("y"), "p");
    }

    #[test]
    fn substitute_params_renames_everywhere() {
        let a = q("answer(B) :- r(B,$x) AND $x < 5");
        let renamed = substitute_params(&a, &[(Symbol::intern("x"), Symbol::intern("z"))]);
        assert_eq!(renamed.to_string(), "answer(B) :- r(B,$z) AND $z < 5");
    }

    #[test]
    fn constants_fixed() {
        let a = q("answer(X) :- r(X,beer)");
        let b = q("answer(X) :- r(X,wine)");
        assert!(!is_isomorphic(&a, &b));
    }
}
