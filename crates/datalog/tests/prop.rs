//! Property tests for the Datalog frontend: display/parse round-trips,
//! parser robustness, safety and containment invariants on generated
//! queries.

use proptest::prelude::*;

use qf_datalog::{
    canonicalize, contained_in, is_isomorphic, is_safe, parse_rule, safe_subqueries, Atom,
    Comparison, ConjunctiveQuery, Literal, Term,
};
use qf_storage::CmpOp;

/// Generate a random pure conjunctive query over a tiny vocabulary.
fn cq_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let var = prop::sample::select(vec!["X", "Y", "Z", "W"]);
    let pred = prop::sample::select(vec!["r", "s", "t"]);
    let param = prop::sample::select(vec!["a", "b"]);
    let term = prop_oneof![
        3 => var.prop_map(Term::var),
        1 => param.prop_map(Term::param),
        1 => (0i64..5).prop_map(Term::constant),
    ];
    let atom = (pred, prop::collection::vec(term, 1..3)).prop_map(|(p, args)| Atom::new(p, args));
    (atom.clone(), prop::collection::vec(atom, 1..5)).prop_map(|(head_src, body)| {
        // Head: answer over the variables of the first body atom (keeps
        // most generated queries safe without forcing it).
        let head_vars: Vec<Term> = body[0].vars().map(Term::Var).collect();
        let head = Atom::new(
            "answer",
            if head_vars.is_empty() {
                head_src.vars().map(Term::Var).take(1).collect()
            } else {
                head_vars
            },
        );
        ConjunctiveQuery::new(head, body.into_iter().map(Literal::Pos).collect())
    })
}

proptest! {
    /// Display → parse is the identity on generated queries.
    #[test]
    fn display_parse_roundtrip(q in cq_strategy()) {
        prop_assume!(!q.head.args.is_empty());
        let text = q.to_string();
        let parsed = parse_rule(&text).unwrap();
        prop_assert_eq!(parsed, q);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in "\\PC{0,80}") {
        let _ = parse_rule(&input);
    }

    /// Every enumerated safe subquery is safe, proper, and nonempty, and
    /// contains the original query.
    #[test]
    fn subquery_invariants(q in cq_strategy()) {
        prop_assume!(!q.head.args.is_empty());
        prop_assume!(is_safe(&q));
        for sub in safe_subqueries(&q) {
            prop_assert!(is_safe(&sub.query));
            prop_assert!(!sub.kept.is_empty());
            prop_assert!(sub.kept.len() < q.body.len());
            // Subgoal deletion only grows answers: q ⊆ sub.
            prop_assert!(contained_in(&q, &sub.query).unwrap());
        }
    }

    /// Containment is reflexive and transitive on the generated pool.
    #[test]
    fn containment_reflexive(q in cq_strategy()) {
        prop_assume!(!q.head.args.is_empty());
        prop_assert!(contained_in(&q, &q).unwrap());
    }

    /// Canonicalization is idempotent and preserves isomorphism class.
    #[test]
    fn canonicalization_idempotent(q in cq_strategy()) {
        prop_assume!(!q.head.args.is_empty());
        let c1 = canonicalize(&q);
        let c2 = canonicalize(&c1);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(is_isomorphic(&q, &c1));
    }

    /// Adding an arithmetic subgoal over bound terms keeps queries
    /// contained in their originals (selection shrinks answers).
    #[test]
    fn arithmetic_restricts(q in cq_strategy()) {
        prop_assume!(!q.head.args.is_empty());
        prop_assume!(is_safe(&q));
        let vars: Vec<Term> = q.vars().into_iter().map(Term::Var).collect();
        prop_assume!(!vars.is_empty());
        let mut body = q.body.clone();
        body.push(Literal::Cmp(Comparison::new(
            vars[0],
            CmpOp::Le,
            Term::constant(3i64),
        )));
        let restricted = ConjunctiveQuery::new(q.head.clone(), body);
        prop_assert!(contained_in(&restricted, &q).unwrap());
    }
}
