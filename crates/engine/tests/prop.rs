//! Property tests: every physical operator agrees with a brute-force
//! relational-algebra reference on random inputs.

use proptest::prelude::*;

use qf_engine::{
    execute, execute_with, AggFn, CmpOp, EngineError, ExecContext, PhysicalPlan, Predicate,
    Resource,
};
use qf_storage::{Database, Relation, Schema, Tuple, Value};

fn rows2() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, 0i64..8), 0..60)
}

fn db2(l: &[(i64, i64)], r: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("l", &["a", "b"]),
        l.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("r", &["c", "d"]),
        r.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db
}

fn dedup_sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    /// Hash join ≡ nested-loop reference.
    #[test]
    fn hash_join_is_nested_loop(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::hash_join(
            PhysicalPlan::scan("l"),
            PhysicalPlan::scan("r"),
            vec![(1, 0)], // l.b = r.c
        );
        let got = execute(&plan, &db).unwrap();

        let l_rel = db.get("l").unwrap();
        let r_rel = db.get("r").unwrap();
        let mut want = Vec::new();
        for a in l_rel.iter() {
            for b in r_rel.iter() {
                if a.get(1) == b.get(0) {
                    want.push(a.concat(b));
                }
            }
        }
        let want = dedup_sorted(want);
        prop_assert_eq!(got.tuples(), want.as_slice());
    }

    /// Antijoin ≡ NOT EXISTS reference.
    #[test]
    fn antijoin_is_not_exists(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::anti_join(
            PhysicalPlan::scan("l"),
            PhysicalPlan::scan("r"),
            vec![(0, 0), (1, 1)],
        );
        let got = execute(&plan, &db).unwrap();
        let r_rel = db.get("r").unwrap();
        let want: Vec<Tuple> = db
            .get("l").unwrap()
            .iter()
            .filter(|t| !r_rel.iter().any(|u| u.get(0) == t.get(0) && u.get(1) == t.get(1)))
            .cloned()
            .collect();
        prop_assert_eq!(got.tuples(), want.as_slice());
    }

    /// Select ≡ filter; Project ≡ map+dedup.
    #[test]
    fn select_project_reference(l in rows2(), k in 0i64..8) {
        let db = db2(&l, &[]);
        let plan = PhysicalPlan::project(
            PhysicalPlan::select(
                PhysicalPlan::scan("l"),
                vec![Predicate::col_const(0, CmpOp::Ge, Value::int(k))],
            ),
            vec![1],
        );
        let got = execute(&plan, &db).unwrap();
        let want: Vec<Tuple> = dedup_sorted(
            db.get("l").unwrap()
                .iter()
                .filter(|t| t.get(0) >= Value::int(k))
                .map(|t| t.project(&[1]))
                .collect(),
        );
        prop_assert_eq!(got.tuples(), want.as_slice());
    }

    /// Aggregate COUNT ≡ group-and-count reference.
    #[test]
    fn aggregate_count_reference(l in rows2()) {
        let db = db2(&l, &[]);
        let plan = PhysicalPlan::aggregate(PhysicalPlan::scan("l"), vec![0], AggFn::Count);
        let got = execute(&plan, &db).unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for t in db.get("l").unwrap().iter() {
            *counts.entry(t.get(0)).or_insert(0i64) += 1;
        }
        let want: Vec<Tuple> = counts
            .into_iter()
            .map(|(k, c)| Tuple::from([k, Value::int(c)]))
            .collect();
        prop_assert_eq!(got.tuples(), want.as_slice());
    }

    /// Aggregate SUM/MIN/MAX ≡ references.
    #[test]
    fn aggregate_sum_min_max_reference(l in rows2()) {
        let db = db2(&l, &[]);
        let l_rel = db.get("l").unwrap();
        let mut by_key: std::collections::BTreeMap<Value, Vec<i64>> = Default::default();
        for t in l_rel.iter() {
            by_key.entry(t.get(0)).or_default().push(t.get(1).as_int().unwrap());
        }
        for (agg, pick) in [
            (AggFn::Sum(1), 0usize),
            (AggFn::Min(1), 1),
            (AggFn::Max(1), 2),
        ] {
            let plan = PhysicalPlan::aggregate(PhysicalPlan::scan("l"), vec![0], agg);
            let got = execute(&plan, &db).unwrap();
            let want: Vec<Tuple> = by_key
                .iter()
                .map(|(&k, vs)| {
                    let v = match pick {
                        0 => vs.iter().sum::<i64>(),
                        1 => *vs.iter().min().unwrap(),
                        _ => *vs.iter().max().unwrap(),
                    };
                    Tuple::from([k, Value::int(v)])
                })
                .collect();
            prop_assert_eq!(got.tuples(), want.as_slice());
        }
    }

    /// Union ≡ set union.
    #[test]
    fn union_reference(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::union(vec![PhysicalPlan::scan("l"), PhysicalPlan::scan("r")]);
        let got = execute(&plan, &db).unwrap();
        let mut want: Vec<Tuple> = db.get("l").unwrap().iter().cloned().collect();
        want.extend(db.get("r").unwrap().iter().cloned());
        let want = dedup_sorted(want);
        prop_assert_eq!(got.tuples(), want.as_slice());
    }

    /// On leading-key layouts the executor routes HashJoin through the
    /// merge fast path; both it and a direct `merge_join` must agree
    /// with a brute-force nested-loop reference.
    #[test]
    fn merge_join_agrees_with_hash(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let l_rel = db.get("l").unwrap();
        let r_rel = db.get("r").unwrap();
        let mut want = Vec::new();
        for a in l_rel.iter() {
            for b in r_rel.iter() {
                if a.get(0) == b.get(0) {
                    want.push(a.concat(b));
                }
            }
        }
        let want = dedup_sorted(want);
        let merged = qf_engine::merge_join(l_rel, r_rel, 1).unwrap();
        prop_assert_eq!(merged.tuples(), want.as_slice());
        let hash_plan = PhysicalPlan::hash_join(
            PhysicalPlan::scan("l"),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        );
        let hashed = execute(&hash_plan, &db).unwrap();
        prop_assert_eq!(merged.tuples(), hashed.tuples());
    }

    /// Parallel and single-thread execution produce identical relations
    /// on a plan exercising join, select, project, and aggregate.
    #[test]
    fn threads_do_not_change_results(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::aggregate(
            PhysicalPlan::project(
                PhysicalPlan::select(
                    PhysicalPlan::hash_join(
                        PhysicalPlan::scan("l"),
                        PhysicalPlan::scan("r"),
                        vec![(1, 0)],
                    ),
                    vec![Predicate::col_const(0, CmpOp::Ge, Value::int(1))],
                ),
                vec![0, 2],
            ),
            vec![0],
            AggFn::Count,
        );
        let one = execute_with(&plan, &db, &ExecContext::unbounded().with_threads(1)).unwrap();
        let four = execute_with(&plan, &db, &ExecContext::unbounded().with_threads(4)).unwrap();
        prop_assert_eq!(one.tuples(), four.tuples());
        prop_assert_eq!(one.schema(), four.schema());
    }

    /// Governed execution with a random row budget either completes
    /// within the budget or fails with `ResourceExhausted { Rows }` —
    /// it never materializes more tuples than the budget allows, and a
    /// successful governed run agrees with the ungoverned one.
    #[test]
    fn row_budget_never_exceeded(l in rows2(), r in rows2(), budget in 0u64..200) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::aggregate(
            PhysicalPlan::hash_join(
                PhysicalPlan::scan("l"),
                PhysicalPlan::scan("r"),
                vec![(1, 0)],
            ),
            vec![0],
            AggFn::Count,
        );
        let ctx = ExecContext::unbounded().with_max_rows(budget);
        match execute_with(&plan, &db, &ctx) {
            Ok(rel) => {
                prop_assert!(ctx.stats().rows <= budget,
                    "materialized {} rows under a budget of {budget}", ctx.stats().rows);
                prop_assert!(rel.len() as u64 <= budget);
                let free = execute(&plan, &db).unwrap();
                prop_assert_eq!(rel.tuples(), free.tuples());
            }
            Err(EngineError::ResourceExhausted { resource: Resource::Rows, limit, observed }) => {
                prop_assert_eq!(limit, budget);
                prop_assert!(observed > budget);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Estimation never panics and respects the distinct ≤ rows invariant.
    #[test]
    fn estimates_well_formed(l in rows2(), r in rows2()) {
        let db = db2(&l, &r);
        let plan = PhysicalPlan::aggregate(
            PhysicalPlan::hash_join(
                PhysicalPlan::scan("l"),
                PhysicalPlan::scan("r"),
                vec![(1, 0)],
            ),
            vec![0],
            AggFn::Count,
        );
        let est = qf_engine::estimate(&plan, &db).unwrap();
        prop_assert!(est.rows >= 0.0);
        for d in &est.distinct {
            prop_assert!(*d <= est.rows.max(1.0) + 1e-9);
        }
        let cost = qf_engine::cost(&plan, &db).unwrap();
        prop_assert!(cost >= est.rows - 1e-9);
    }
}
