//! Property test for out-of-core execution: on random relations and
//! random join/group-by plan shapes, a governed run with a memory
//! budget small enough to force spill-to-disk produces a relation
//! identical to the ungoverned in-memory path — at 1 and at 4 worker
//! threads.

use std::sync::Arc;

use proptest::prelude::*;

use qf_engine::{
    env_mem_budget, execute, execute_with, AggFn, CmpOp, ExecContext, PhysicalPlan, Predicate,
};
use qf_storage::{Database, Relation, Schema, SpillDir, Value};

fn rows2(n: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..16, 0i64..16), 0..n)
}

fn db2(l: &[(i64, i64)], r: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("l", &["a", "b"]),
        l.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db.insert(Relation::from_rows(
        Schema::new("r", &["c", "d"]),
        r.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    ));
    db
}

/// Random reducing plan shapes over the two relations. Every shape ends
/// in an aggregate or projection so the *final* result stays small —
/// spilling bounds intermediate state, but the materialized result must
/// always fit the budget.
fn shape_plan(shape: u8) -> PhysicalPlan {
    let join = PhysicalPlan::hash_join(
        PhysicalPlan::scan("l"),
        PhysicalPlan::scan("r"),
        vec![(1, 0)],
    );
    match shape % 4 {
        0 => PhysicalPlan::aggregate(join, vec![0], AggFn::Count),
        1 => PhysicalPlan::aggregate(join, vec![], AggFn::Count),
        2 => PhysicalPlan::project(
            PhysicalPlan::union(vec![PhysicalPlan::scan("l"), PhysicalPlan::scan("r")]),
            vec![1],
        ),
        _ => PhysicalPlan::aggregate(
            PhysicalPlan::select(join, vec![Predicate::col_col(0, CmpOp::Lt, 2)]),
            vec![3],
            AggFn::Max(0),
        ),
    }
}

/// The governed budget: `QF_MEM_BUDGET` when set (the CI chaos job runs
/// the suite under a tiny value), floored so the resident base-relation
/// scans — which spilling deliberately does not evict — always fit.
fn budget() -> u64 {
    env_mem_budget().unwrap_or(48 << 10).max(24 << 10)
}

proptest! {
    #[test]
    fn spill_equals_in_memory(l in rows2(120), r in rows2(120), shape in 0u8..4) {
        let db = db2(&l, &r);
        let plan = shape_plan(shape);
        let expected = execute(&plan, &db).unwrap();
        for threads in [1usize, 4] {
            let ctx = ExecContext::unbounded()
                .with_mem_budget(budget())
                .with_threads(threads)
                .with_spill(Arc::new(SpillDir::create_temp().unwrap()));
            let got = execute_with(&plan, &db, &ctx).unwrap();
            prop_assert_eq!(
                got.tuples(),
                expected.tuples(),
                "shape {} threads {}",
                shape,
                threads
            );
            prop_assert_eq!(got.schema().columns(), expected.schema().columns());
        }
    }
}
