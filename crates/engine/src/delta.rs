//! Counted-multiplicity incremental group aggregates (qf-delta).
//!
//! The maintained object is an *unfiltered* grouped aggregate over a
//! set-semantics extended answer: every distinct extended-answer tuple
//! carries a **derivation multiplicity** (how many valuations of the
//! rule body produce it — Gupta-Mumick counting), so inserting and
//! removing derivations keeps the distinct set exact without ever
//! re-running the full join. A tuple is live while its multiplicity is
//! positive; the group aggregates are functions of the live distinct
//! tuples only, matching the engine's set-semantics `aggregate`
//! operator bit for bit:
//!
//! * `COUNT` — the number of live distinct tuples per group;
//! * `SUM` — maintained as an exact `i128` and clamped to `i64` on
//!   read, which equals the executor's `saturating_add` fold whenever
//!   the true sum stays representable (and for the all-non-negative
//!   sums flocks use, even when it does not);
//! * `MIN`/`MAX` — a **bounded re-check set** of the
//!   [`RECHECK_BOUND`] best values per group. Inserts keep the set's
//!   invariant (it holds the best `len` live values; everything
//!   excluded is no better than its worst member); a delete of a value
//!   inside the set pops it, and only when the set drains while
//!   incomplete does the group rescan its live tuples — the rescanned
//!   tuple count is surfaced via [`GroupAggView::take_recheck_tuples`]
//!   so callers can report the work.
//!
//! This module is deliberately flock-agnostic: it speaks tuples,
//! group-prefix widths, and [`AggFn`]s. The delta-join enumeration
//! that decides *which* derivations appear or disappear lives in
//! `qf-core`, which knows about rules and parameters.

use std::collections::BTreeMap;

use qf_storage::{Tuple, Value};

use crate::error::{EngineError, Result};
use crate::governor::Resource;
use crate::plan::AggFn;

/// Values kept per MIN/MAX group before a delete has to rescan.
pub const RECHECK_BOUND: usize = 8;

/// A counted-multiplicity grouped aggregate, incrementally maintained.
///
/// Tuples are full extended-answer rows; the first `group_cols` fields
/// are the group key and `agg`'s input column (for `SUM`/`MIN`/`MAX`)
/// indexes into the full row.
#[derive(Debug, Clone)]
pub struct GroupAggView {
    group_cols: usize,
    agg: AggFn,
    groups: BTreeMap<Tuple, GroupState>,
    /// Live distinct tuples across all groups (memory accounting).
    stored: usize,
    max_tuples: usize,
    recheck_tuples: u64,
}

/// Per-group bookkeeping. `tuples` maps the row *suffix* (fields after
/// the group prefix) to its derivation multiplicity; a suffix is
/// removed the moment its multiplicity reaches zero, so `tuples.len()`
/// is the live distinct count.
#[derive(Debug, Clone, Default)]
struct GroupState {
    tuples: BTreeMap<Tuple, u64>,
    /// Exact running sum of the aggregate column (SUM only).
    sum: i128,
    /// Bounded best-value multiset (MIN/MAX only), best first.
    extremes: Vec<Value>,
    /// Whether `extremes` holds *every* live value of the group.
    complete: bool,
}

impl GroupAggView {
    /// An empty view. `SUM`/`MIN`/`MAX` input columns must lie in the
    /// row suffix (at or after `group_cols`) so rescans can read them.
    pub fn new(group_cols: usize, agg: AggFn, max_tuples: usize) -> Result<GroupAggView> {
        if let Some(c) = agg.input_column() {
            if c < group_cols {
                return Err(EngineError::DeltaInvariant {
                    detail: format!(
                        "aggregate input column {c} lies inside the {group_cols}-column group key"
                    ),
                });
            }
        }
        Ok(GroupAggView {
            group_cols,
            agg,
            groups: BTreeMap::new(),
            stored: 0,
            max_tuples,
            recheck_tuples: 0,
        })
    }

    /// Live distinct tuples across all groups.
    pub fn live_tuples(&self) -> usize {
        self.stored
    }

    /// Groups with at least one live tuple.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Drain the count of tuples rescanned by MIN/MAX re-checks since
    /// the last call.
    pub fn take_recheck_tuples(&mut self) -> u64 {
        std::mem::take(&mut self.recheck_tuples)
    }

    /// Record one derivation of `t`. Only the 0→1 multiplicity edge
    /// changes any aggregate (set semantics).
    pub fn insert(&mut self, t: &Tuple) -> Result<()> {
        let (key, rest) = self.split(t)?;
        let group = self.groups.entry(key).or_default();
        let mult = group.tuples.entry(rest).or_insert(0);
        *mult += 1;
        if *mult > 1 {
            return Ok(());
        }
        self.stored += 1;
        if self.stored > self.max_tuples {
            return Err(EngineError::ResourceExhausted {
                resource: Resource::Rows,
                limit: self.max_tuples as u64,
                observed: self.stored as u64,
            });
        }
        match self.agg {
            AggFn::Count => {}
            AggFn::Sum(c) => {
                let v = t
                    .get(c)
                    .as_int()
                    .ok_or_else(|| EngineError::AggregateType {
                        detail: format!("SUM over non-integer value {:?}", t.get(c)),
                    })?;
                group.sum += v as i128;
            }
            AggFn::Min(c) | AggFn::Max(c) => {
                admit_extreme(group, t.get(c), self.agg);
            }
        }
        Ok(())
    }

    /// Remove one derivation of `t`. The derivation must exist — a
    /// miss means the caller's delta enumeration is incoherent with
    /// this state, which is an invariant violation, not a no-op.
    pub fn remove(&mut self, t: &Tuple) -> Result<()> {
        let (key, rest) = self.split(t)?;
        let Some(group) = self.groups.get_mut(&key) else {
            return Err(EngineError::DeltaInvariant {
                detail: format!("removed derivation {t} from an absent group"),
            });
        };
        let Some(mult) = group.tuples.get_mut(&rest) else {
            return Err(EngineError::DeltaInvariant {
                detail: format!("removed derivation {t} with no recorded multiplicity"),
            });
        };
        *mult -= 1;
        if *mult > 0 {
            return Ok(());
        }
        group.tuples.remove(&rest);
        self.stored -= 1;
        match self.agg {
            AggFn::Count => {}
            AggFn::Sum(c) => {
                let v = t
                    .get(c)
                    .as_int()
                    .ok_or_else(|| EngineError::AggregateType {
                        detail: format!("SUM over non-integer value {:?}", t.get(c)),
                    })?;
                group.sum -= v as i128;
            }
            AggFn::Min(c) | AggFn::Max(c) => {
                let agg = self.agg;
                let scanned = evict_extreme(group, t.get(c), c - self.group_cols, agg)?;
                self.recheck_tuples += scanned;
            }
        }
        if group.tuples.is_empty() {
            self.groups.remove(&key);
        }
        Ok(())
    }

    /// The full scored output: one sorted `(group key…, aggregate)` row
    /// per live group — exactly what the engine's `aggregate` operator
    /// produces over the live distinct tuples, with no filter applied.
    pub fn scored(&self) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.groups.len());
        for (key, group) in &self.groups {
            let value = match self.agg {
                AggFn::Count => Value::int(group.tuples.len() as i64),
                AggFn::Sum(_) => Value::int(clamp_sum(group.sum)),
                AggFn::Min(_) | AggFn::Max(_) => {
                    *group
                        .extremes
                        .first()
                        .ok_or_else(|| EngineError::DeltaInvariant {
                            detail: "live MIN/MAX group with an empty re-check set".to_string(),
                        })?
                }
            };
            let mut row = Vec::with_capacity(self.group_cols + 1);
            row.extend_from_slice(key.values());
            row.push(value);
            out.push(Tuple::from(row));
        }
        Ok(out)
    }

    fn split(&self, t: &Tuple) -> Result<(Tuple, Tuple)> {
        if t.arity() < self.group_cols {
            return Err(EngineError::DeltaInvariant {
                detail: format!(
                    "derivation {t} narrower than the {}-column group key",
                    self.group_cols
                ),
            });
        }
        let key = Tuple::new(t.values()[..self.group_cols].to_vec());
        let rest = Tuple::new(t.values()[self.group_cols..].to_vec());
        Ok((key, rest))
    }
}

/// Does `a` beat `b` for this aggregate's direction?
fn better(a: Value, b: Value, agg: AggFn) -> bool {
    match agg {
        AggFn::Min(_) => a < b,
        _ => a > b,
    }
}

/// Offer a newly-live value to the bounded extreme set, preserving the
/// invariant: the set holds the best `len` live values, and every
/// excluded live value is no better than its worst member.
fn admit_extreme(group: &mut GroupState, v: Value, agg: AggFn) {
    if group.tuples.len() == 1 {
        // First live tuple (re)creates the group: the set is trivially
        // complete.
        group.extremes = vec![v];
        group.complete = true;
        return;
    }
    let worst = *group.extremes.last().expect("live group has extremes");
    if !group.complete && better(worst, v, agg) {
        // Strictly worse than everything kept: it joins the excluded
        // region the invariant already covers.
        return;
    }
    let pos = group.extremes.partition_point(|&x| !better(v, x, agg));
    group.extremes.insert(pos, v);
    if group.extremes.len() > RECHECK_BOUND {
        group.extremes.pop();
        group.complete = false;
    }
}

/// Drop a no-longer-live value from the bounded extreme set. When the
/// set drains while incomplete the group rescans its remaining live
/// tuples (the *bounded* fallback: only this group pays). Returns the
/// number of tuples rescanned.
fn evict_extreme(group: &mut GroupState, v: Value, rest_col: usize, agg: AggFn) -> Result<u64> {
    let pos = group.extremes.partition_point(|&x| better(x, v, agg));
    if pos < group.extremes.len() && group.extremes[pos] == v {
        group.extremes.remove(pos);
    } else if group.complete {
        return Err(EngineError::DeltaInvariant {
            detail: format!("removed value {v} missing from a complete extreme set"),
        });
    }
    if group.extremes.is_empty() && !group.complete && !group.tuples.is_empty() {
        let mut values: Vec<Value> = group.tuples.keys().map(|rest| rest.get(rest_col)).collect();
        let scanned = values.len() as u64;
        values.sort_by(|&a, &b| {
            if better(a, b, agg) {
                std::cmp::Ordering::Less
            } else if better(b, a, agg) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        group.complete = values.len() <= RECHECK_BOUND;
        values.truncate(RECHECK_BOUND);
        group.extremes = values;
        return Ok(scanned);
    }
    Ok(0)
}

/// Clamp the exact sum the way a fold of `saturating_add` over
/// same-signed addends lands.
fn clamp_sum(sum: i128) -> i64 {
    if sum > i64::MAX as i128 {
        i64::MAX
    } else if sum < i64::MIN as i128 {
        i64::MIN
    } else {
        sum as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::int(v)).collect::<Vec<_>>())
    }

    /// Reference: recompute the scored rows from a bag of live tuples.
    fn naive_scored(live: &[Tuple], group_cols: usize, agg: AggFn) -> Vec<Tuple> {
        let mut distinct: Vec<&Tuple> = live.iter().collect();
        distinct.sort();
        distinct.dedup();
        let mut groups: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
        for tup in distinct {
            let key = Tuple::new(tup.values()[..group_cols].to_vec());
            groups.entry(key).or_default().push(tup);
        }
        groups
            .into_iter()
            .map(|(key, members)| {
                let value = match agg {
                    AggFn::Count => Value::int(members.len() as i64),
                    AggFn::Sum(c) => Value::int(
                        members
                            .iter()
                            .map(|m| m.get(c).as_int().unwrap())
                            .fold(0i64, i64::saturating_add),
                    ),
                    AggFn::Min(c) => members.iter().map(|m| m.get(c)).min().unwrap(),
                    AggFn::Max(c) => members.iter().map(|m| m.get(c)).max().unwrap(),
                };
                let mut row = key.values().to_vec();
                row.push(value);
                Tuple::from(row)
            })
            .collect()
    }

    /// Drive a random interleaving of inserts/removes through the view
    /// and the naive reference; multiplicities make removal legal only
    /// for derivations previously inserted.
    fn check_interleaving(agg: AggFn, seed: u64) {
        let mut view = GroupAggView::new(1, agg, 10_000).unwrap();
        let mut bag: Vec<Tuple> = Vec::new();
        let mut state = seed.max(1);
        let mut rng = move || {
            // xorshift64: deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let remove = !bag.is_empty() && rng() % 3 == 0;
            if remove {
                let i = (rng() as usize) % bag.len();
                let tup = bag.swap_remove(i);
                view.remove(&tup).unwrap();
            } else {
                let tup = t(&[(rng() % 4) as i64, (rng() % 6) as i64]);
                view.insert(&tup).unwrap();
                bag.push(tup);
            }
            assert_eq!(view.scored().unwrap(), naive_scored(&bag, 1, agg));
        }
    }

    #[test]
    fn interleavings_match_naive_recompute() {
        for (i, agg) in [AggFn::Count, AggFn::Sum(1), AggFn::Min(1), AggFn::Max(1)]
            .into_iter()
            .enumerate()
        {
            check_interleaving(agg, 0x9E3779B9 + i as u64);
        }
    }

    #[test]
    fn multiplicity_edges_drive_set_semantics() {
        let mut view = GroupAggView::new(1, AggFn::Count, 100).unwrap();
        // Two derivations of the same tuple count once…
        view.insert(&t(&[1, 5])).unwrap();
        view.insert(&t(&[1, 5])).unwrap();
        assert_eq!(view.scored().unwrap(), vec![t(&[1, 1])]);
        // …and the tuple stays live until the last derivation leaves.
        view.remove(&t(&[1, 5])).unwrap();
        assert_eq!(view.scored().unwrap(), vec![t(&[1, 1])]);
        view.remove(&t(&[1, 5])).unwrap();
        assert!(view.scored().unwrap().is_empty());
        assert_eq!(view.groups(), 0);
    }

    #[test]
    fn min_delete_pops_the_recheck_set_then_rescans() {
        let mut view = GroupAggView::new(1, AggFn::Min(1), 10_000).unwrap();
        // More distinct values than the bound: the set is incomplete.
        let n = RECHECK_BOUND as i64 + 6;
        for v in 0..n {
            view.insert(&t(&[1, v])).unwrap();
        }
        // Popping the minimum uses the set, no rescan.
        view.remove(&t(&[1, 0])).unwrap();
        assert_eq!(view.scored().unwrap(), vec![t(&[1, 1])]);
        assert_eq!(view.take_recheck_tuples(), 0);
        // Draining the whole kept set forces one bounded rescan of the
        // group's remaining live tuples.
        for v in 1..=RECHECK_BOUND as i64 {
            view.remove(&t(&[1, v])).unwrap();
        }
        assert!(view.take_recheck_tuples() > 0);
        assert_eq!(
            view.scored().unwrap(),
            vec![t(&[1, RECHECK_BOUND as i64 + 1])]
        );
    }

    #[test]
    fn state_cap_is_a_typed_resource_error() {
        let mut view = GroupAggView::new(1, AggFn::Count, 2).unwrap();
        view.insert(&t(&[1, 1])).unwrap();
        view.insert(&t(&[1, 2])).unwrap();
        let err = view.insert(&t(&[1, 3])).unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn incoherent_removal_is_an_invariant_error() {
        let mut view = GroupAggView::new(1, AggFn::Count, 100).unwrap();
        let err = view.remove(&t(&[1, 1])).unwrap_err();
        assert!(matches!(err, EngineError::DeltaInvariant { .. }), "{err}");
    }
}
