//! Execution governance: budgets, deadlines, and cancellation.
//!
//! Flock evaluation is combinatorially explosive by nature — the paper's
//! levelwise plans exist precisely because naive evaluation blows up. An
//! [`ExecContext`] makes that blow-up survivable: it carries a row
//! budget, an estimated-memory budget, a wall-clock deadline, and a
//! shareable [`CancelToken`], and every operator loop in
//! [`crate::exec`] checks it cooperatively. Exceeding a budget surfaces
//! as [`EngineError::ResourceExhausted`]; a tripped token surfaces as
//! [`EngineError::Cancelled`]. Both propagate cleanly — operators
//! materialize nothing into the catalog, so a governed failure leaves
//! the database exactly as it was.
//!
//! Accounting model, deliberately simple and deterministic:
//!
//! * **Rows** — every tuple an operator materializes (including scan
//!   clones) charges one row against the budget. The check happens
//!   *before* the tuple is stored, so memory use stays within
//!   budget + O(1), never "budget + one join's worth".
//! * **Memory** — each charged row also charges an estimated
//!   `width × size_of::<Value>() + TUPLE_OVERHEAD` bytes against two
//!   counters: cumulative `bytes` (total materialization work, the
//!   quantity the cost model reasons about as C_out) and `live_bytes`
//!   (current residency). The budget checks **live** bytes; an operator
//!   that flushes buffered tuples to a spill file calls
//!   [`ExecContext::release_bytes`] so later work can reuse the
//!   headroom. Without spilling nothing ever releases and the two
//!   counters agree, preserving PR-1 semantics.
//! * **Spilling** — when a context carries a spill directory
//!   ([`ExecContext::with_spill`]), operators consult
//!   [`ExecContext::mem_would_trip`] and partition state to disk
//!   instead of failing, recording a `spill` degradation plus
//!   bytes-spilled in [`ExecStats`].
//! * **Time / cancellation** — checked at every operator entry and then
//!   amortized inside loops (every [`CHECK_INTERVAL`] work units), so
//!   even a filter that materializes nothing notices a deadline.
//!
//! All counters are atomics and the context is `Send + Sync`, so one
//! context governs every worker thread of a parallel operator
//! ([`crate::parallel`]): each worker charges the shared counters
//! before materializing, which bounds budget overshoot to at most one
//! in-flight charge per worker.
//!
//! Contexts are cheap to clone and share their counters; use
//! [`ExecContext::subcontext`] for a *fresh* budget that still honours
//! the parent's deadline and cancellation (dynamic evaluation uses this
//! to bound voluntary FILTER probes without charging the main query).
//!
//! Under the `fault-injection` feature a context can be armed to fail
//! the Nth operator invocation ([`ExecContext::with_fault_point`]), so
//! tests can prove every operator propagates a mid-pipeline error.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qf_storage::SpillDir;

use crate::error::{EngineError, Result};

/// How many work units (rows examined or materialized) between
/// deadline/cancellation checks inside operator loops.
pub const CHECK_INTERVAL: u64 = 4096;

/// Estimated bookkeeping bytes per materialized tuple beyond its values.
pub const TUPLE_OVERHEAD: u64 = 16;

/// Estimated memory cost of one materialized tuple of `width` columns —
/// the unit charged by [`ExecContext::charge_row`] and released by
/// [`ExecContext::release_bytes`] when an operator spills.
#[inline]
pub fn row_cost(width: usize) -> u64 {
    width as u64 * std::mem::size_of::<qf_storage::Value>() as u64 + TUPLE_OVERHEAD
}

/// Memory budget taken from the `QF_MEM_BUDGET` environment variable
/// (bytes, plain integer), if set and positive. Lets CI run the whole
/// suite under a deliberately tiny budget so every spill path executes.
pub fn env_mem_budget() -> Option<u64> {
    std::env::var("QF_MEM_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
}

/// The budgeted resource named by [`EngineError::ResourceExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Materialized-tuple budget.
    Rows,
    /// Estimated-memory budget (bytes).
    Memory,
    /// Wall-clock deadline (milliseconds).
    Time,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::Rows => "rows",
            Resource::Memory => "memory",
            Resource::Time => "time",
        })
    }
}

/// Shareable cooperative-cancellation flag. Cloning shares the flag;
/// any holder can cancel, and every governed operator loop observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token: governed execution fails with
    /// [`EngineError::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One recorded graceful degradation: the governor hit a limit and the
/// pipeline continued on a cheaper path instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Pipeline stage that degraded (e.g. `"plan-search"`,
    /// `"dynamic-filter"`).
    pub stage: String,
    /// What was given up and why.
    pub detail: String,
}

/// Snapshot of governed-execution accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples materialized under this context.
    pub rows: u64,
    /// Estimated bytes materialized under this context.
    pub bytes: u64,
    /// Largest number of worker threads any single operator used.
    pub workers: u64,
    /// Encoded bytes written to spill files under memory pressure.
    pub spilled_bytes: u64,
    /// Number of spill-file flushes (sorted runs or Grace partitions).
    pub spills: u64,
    /// Transient I/O errors absorbed by bounded retry (whole-file
    /// rewrites of spill runs or journal snapshots).
    pub io_retries: u64,
    /// Detected spill corruptions recovered by recomputing the
    /// affected pipeline instead of serving bad bytes.
    pub corruption_recoveries: u64,
    /// Spill files currently on disk (leak detector: 0 after a
    /// successful run whose output has been materialized).
    pub spill_files_live: u64,
    /// Graceful degradations recorded anywhere in the context tree.
    pub degradations: Vec<Degradation>,
}

#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct FaultPoint {
    /// 1-based operator invocation to fail on.
    fail_on: u64,
    hits: AtomicU64,
}

#[derive(Debug, Default)]
struct Counters {
    rows: AtomicU64,
    bytes: AtomicU64,
    live_bytes: AtomicU64,
    spilled_bytes: AtomicU64,
    spills: AtomicU64,
    io_retries: AtomicU64,
    corruption_recoveries: AtomicU64,
    work: AtomicU64,
    workers: AtomicU64,
    /// Set by the ENOSPC policy: the disk can no longer absorb spills,
    /// so the memory budget is waived (execution continues in memory,
    /// with the degradation recorded) rather than aborting a run that
    /// was promised graceful degradation.
    mem_waived: AtomicBool,
}

/// Governor state threaded through plan execution. See the module docs
/// for the accounting model. Cloning shares all counters and limits.
#[derive(Clone, Debug)]
pub struct ExecContext {
    max_rows: Option<u64>,
    max_bytes: Option<u64>,
    deadline: Option<Instant>,
    timeout_ms: u64,
    start: Instant,
    threads: usize,
    cancel: CancelToken,
    counters: Arc<Counters>,
    degradations: Arc<Mutex<Vec<Degradation>>>,
    spill: Option<Arc<SpillDir>>,
    #[cfg(feature = "fault-injection")]
    fault: Option<Arc<FaultPoint>>,
}

// Operators share one `&ExecContext` across scoped worker threads, so
// the governor must stay `Send + Sync` (all shared state is atomics or
// mutexes). Compile-time proof:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExecContext>();
};

impl Default for ExecContext {
    fn default() -> ExecContext {
        ExecContext::unbounded()
    }
}

impl ExecContext {
    /// A context with no limits: counters still accumulate (stats stay
    /// meaningful) but nothing can fail except an armed fault point.
    pub fn unbounded() -> ExecContext {
        ExecContext {
            max_rows: None,
            max_bytes: None,
            deadline: None,
            timeout_ms: 0,
            start: Instant::now(),
            threads: crate::parallel::default_threads(),
            cancel: CancelToken::new(),
            counters: Arc::new(Counters::default()),
            degradations: Arc::new(Mutex::new(Vec::new())),
            spill: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Cap the number of tuples execution may materialize.
    pub fn with_max_rows(mut self, max_rows: u64) -> ExecContext {
        self.max_rows = Some(max_rows);
        self
    }

    /// Cap estimated materialized memory, in bytes.
    pub fn with_mem_budget(mut self, max_bytes: u64) -> ExecContext {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Fail execution once `timeout` has elapsed from now.
    pub fn with_timeout(mut self, timeout: Duration) -> ExecContext {
        self.timeout_ms = timeout.as_millis().min(u64::MAX as u128) as u64;
        self.deadline = Some(self.start + timeout);
        self
    }

    /// Fail execution at an absolute `deadline` stamped earlier (e.g. at
    /// service admission time). Unlike [`ExecContext::with_timeout`],
    /// time already spent before this call — queue wait, plan transfer —
    /// still counts against the budget, which is what end-to-end
    /// deadline propagation requires.
    pub fn with_deadline(mut self, deadline: Instant) -> ExecContext {
        self.timeout_ms = deadline
            .saturating_duration_since(self.start)
            .as_millis()
            .min(u64::MAX as u128) as u64;
        self.deadline = Some(deadline);
        self
    }

    /// Time remaining before the deadline (`None` when undeadlined);
    /// zero once expired.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Use an externally supplied cancellation token (e.g. one shared
    /// with a Ctrl-C handler) instead of a private one.
    pub fn with_cancel_token(mut self, token: CancelToken) -> ExecContext {
        self.cancel = token;
        self
    }

    /// Cap the number of worker threads operators may use (clamped to
    /// at least 1). The default is [`crate::parallel::default_threads`].
    pub fn with_threads(mut self, threads: usize) -> ExecContext {
        self.threads = threads.max(1);
        self
    }

    /// Configured worker-thread cap for parallel operators.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Allow operators to spill to `dir` instead of failing when a
    /// memory charge would trip the budget. Without a spill directory
    /// the governor keeps its PR-1 behavior: trip → `ResourceExhausted`.
    pub fn with_spill(mut self, dir: Arc<SpillDir>) -> ExecContext {
        self.spill = Some(dir);
        self
    }

    /// The spill directory, if spilling is enabled.
    pub fn spill_dir(&self) -> Option<&Arc<SpillDir>> {
        self.spill.as_ref()
    }

    /// Is spill-to-disk enabled for this context?
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    /// Would charging `extra` more live bytes trip the memory budget?
    /// Spill-capable operators probe this before buffering another
    /// tuple and flush to disk instead of tripping.
    pub fn mem_would_trip(&self, extra: u64) -> bool {
        if self.counters.mem_waived.load(Ordering::Relaxed) {
            return false;
        }
        match self.max_bytes {
            Some(limit) => self.counters.live_bytes.load(Ordering::Relaxed) + extra > limit,
            None => false,
        }
    }

    /// Waive the memory budget for the rest of this context tree — the
    /// ENOSPC degradation path: the disk cannot absorb further spills,
    /// so continuing in memory (and possibly swapping) beats aborting.
    /// Callers record the matching [`Degradation`].
    pub fn waive_mem_budget(&self) {
        self.counters.mem_waived.store(true, Ordering::Relaxed);
    }

    /// Release `n` live bytes after their tuples have been flushed to a
    /// spill file (or otherwise dropped). Cumulative `bytes` stays put —
    /// it reports total materialization work, not residency.
    pub fn release_bytes(&self, n: u64) {
        let _ = self
            .counters
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Record one spill flush of `bytes` encoded bytes.
    pub fn note_spill(&self, bytes: u64) {
        self.counters
            .spilled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters.spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one transient I/O error absorbed by a bounded retry.
    pub fn note_io_retry(&self) {
        self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one detected spill corruption recovered by recompute.
    pub fn note_corruption_recovery(&self) {
        self.counters
            .corruption_recoveries
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record that an operator ran with `n` workers; [`ExecStats`]
    /// reports the maximum seen.
    pub fn note_workers(&self, n: usize) {
        self.counters.workers.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Arm the fault injector: the `fail_on`-th operator invocation
    /// (1-based, counted across the whole context tree) fails with
    /// [`EngineError::FaultInjected`].
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_point(mut self, fail_on: u64) -> ExecContext {
        self.fault = Some(Arc::new(FaultPoint {
            fail_on,
            hits: AtomicU64::new(0),
        }));
        self
    }

    /// The context's cancellation token (clone to share).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// A child context with its own (fresh) row/memory budget but the
    /// parent's deadline, cancellation token, degradation log, and
    /// fault point. Rows charged to the child do **not** count against
    /// the parent: this is for bounded side-work (dynamic evaluation's
    /// voluntary FILTER probes) whose cost should not starve the main
    /// query.
    pub fn subcontext(&self, max_rows: Option<u64>, max_bytes: Option<u64>) -> ExecContext {
        ExecContext {
            max_rows,
            max_bytes,
            deadline: self.deadline,
            timeout_ms: self.timeout_ms,
            start: self.start,
            threads: self.threads,
            cancel: self.cancel.clone(),
            counters: Arc::new(Counters::default()),
            degradations: Arc::clone(&self.degradations),
            spill: self.spill.clone(),
            #[cfg(feature = "fault-injection")]
            fault: self.fault.clone(),
        }
    }

    /// Operator-entry check: fault point, cancellation, deadline.
    /// Called once per operator invocation before any work.
    pub fn enter(&self, operator: &'static str) -> Result<()> {
        #[cfg(feature = "fault-injection")]
        if let Some(fault) = &self.fault {
            let hit = fault.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if hit == fault.fail_on {
                return Err(EngineError::FaultInjected {
                    operator,
                    invocation: hit,
                });
            }
        }
        let _ = operator;
        self.check_cancel_deadline()
    }

    /// Charge one materialized tuple of `width` columns. Call *before*
    /// storing the tuple so memory stays within budget.
    #[inline]
    pub fn charge_row(&self, width: usize) -> Result<()> {
        let rows = self.counters.rows.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.max_rows {
            if rows > limit {
                return Err(EngineError::ResourceExhausted {
                    resource: Resource::Rows,
                    limit,
                    observed: rows,
                });
            }
        }
        let cost = row_cost(width);
        self.counters.bytes.fetch_add(cost, Ordering::Relaxed);
        let live = self.counters.live_bytes.fetch_add(cost, Ordering::Relaxed) + cost;
        if let Some(limit) = self.max_bytes {
            if live > limit && !self.counters.mem_waived.load(Ordering::Relaxed) {
                return Err(EngineError::ResourceExhausted {
                    resource: Resource::Memory,
                    limit,
                    observed: live,
                });
            }
        }
        self.tick()
    }

    /// Bulk form of [`ExecContext::charge_row`]: charge `n` tuples of
    /// `width` columns in two atomic operations. Call *before*
    /// materializing the batch.
    pub fn charge_rows(&self, n: u64, width: usize) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        let rows = self.counters.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.max_rows {
            if rows > limit {
                return Err(EngineError::ResourceExhausted {
                    resource: Resource::Rows,
                    limit,
                    observed: rows,
                });
            }
        }
        let cost = n * row_cost(width);
        self.counters.bytes.fetch_add(cost, Ordering::Relaxed);
        let live = self.counters.live_bytes.fetch_add(cost, Ordering::Relaxed) + cost;
        if let Some(limit) = self.max_bytes {
            if live > limit && !self.counters.mem_waived.load(Ordering::Relaxed) {
                return Err(EngineError::ResourceExhausted {
                    resource: Resource::Memory,
                    limit,
                    observed: live,
                });
            }
        }
        self.check_cancel_deadline()
    }

    /// Charge one unit of non-materializing work (a row examined and
    /// dropped). Amortizes deadline/cancellation checks so that even
    /// fully-filtering operators observe them.
    #[inline]
    pub fn tick(&self) -> Result<()> {
        let work = self.counters.work.fetch_add(1, Ordering::Relaxed) + 1;
        if work.is_multiple_of(CHECK_INTERVAL) {
            self.check_cancel_deadline()?;
        }
        Ok(())
    }

    /// Rows still chargeable before the budget trips (`None` when
    /// unbounded). Used to size [`ExecContext::subcontext`] budgets for
    /// voluntary side-work.
    pub fn remaining_rows(&self) -> Option<u64> {
        self.max_rows
            .map(|limit| limit.saturating_sub(self.counters.rows.load(Ordering::Relaxed)))
    }

    /// Estimated live bytes still chargeable before the budget trips
    /// (`None` when unbounded).
    pub fn remaining_bytes(&self) -> Option<u64> {
        self.max_bytes
            .map(|limit| limit.saturating_sub(self.counters.live_bytes.load(Ordering::Relaxed)))
    }

    /// Non-erroring deadline probe, for callers that degrade rather
    /// than fail (plan search falls back to the static heuristic).
    pub fn time_exhausted(&self) -> bool {
        self.cancel.is_cancelled()
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() > deadline)
    }

    /// Record a graceful degradation (visible in [`ExecStats`]).
    pub fn record_degradation(&self, stage: &str, detail: impl Into<String>) {
        self.degradations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Degradation {
                stage: stage.to_string(),
                detail: detail.into(),
            });
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            rows: self.counters.rows.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            workers: self.counters.workers.load(Ordering::Relaxed),
            spilled_bytes: self.counters.spilled_bytes.load(Ordering::Relaxed),
            spills: self.counters.spills.load(Ordering::Relaxed),
            io_retries: self.counters.io_retries.load(Ordering::Relaxed),
            corruption_recoveries: self.counters.corruption_recoveries.load(Ordering::Relaxed),
            spill_files_live: self.spill.as_ref().map_or(0, |d| d.live_files()),
            degradations: self
                .degradations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }

    fn check_cancel_deadline(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now > deadline {
                return Err(EngineError::ResourceExhausted {
                    resource: Resource::Time,
                    limit: self.timeout_ms,
                    observed: now
                        .duration_since(self.start)
                        .as_millis()
                        .min(u64::MAX as u128) as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fails() {
        let ctx = ExecContext::unbounded();
        for _ in 0..10_000 {
            ctx.charge_row(4).unwrap();
        }
        assert_eq!(ctx.stats().rows, 10_000);
    }

    #[test]
    fn row_budget_trips_exactly() {
        let ctx = ExecContext::unbounded().with_max_rows(10);
        for _ in 0..10 {
            ctx.charge_row(2).unwrap();
        }
        let err = ctx.charge_row(2).unwrap_err();
        assert_eq!(
            err,
            EngineError::ResourceExhausted {
                resource: Resource::Rows,
                limit: 10,
                observed: 11,
            }
        );
    }

    #[test]
    fn mem_budget_trips() {
        let ctx = ExecContext::unbounded().with_mem_budget(100);
        let err = (0..100).find_map(|_| ctx.charge_row(8).err()).unwrap();
        assert!(matches!(
            err,
            EngineError::ResourceExhausted {
                resource: Resource::Memory,
                ..
            }
        ));
    }

    #[test]
    fn cancellation_observed_at_entry() {
        let ctx = ExecContext::unbounded();
        ctx.cancel_token().cancel();
        assert_eq!(ctx.enter("Select").unwrap_err(), EngineError::Cancelled);
        assert!(ctx.time_exhausted());
    }

    #[test]
    fn expired_deadline_reports_time() {
        let ctx = ExecContext::unbounded().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let err = ctx.enter("Scan").unwrap_err();
        assert!(matches!(
            err,
            EngineError::ResourceExhausted {
                resource: Resource::Time,
                limit: 0,
                ..
            }
        ));
    }

    #[test]
    fn absolute_deadline_counts_time_already_spent() {
        // A deadline stamped in the past trips immediately, even though
        // no time elapses after the context learns about it — queue wait
        // counts against the budget.
        let ctx = ExecContext::unbounded();
        std::thread::sleep(Duration::from_millis(2));
        let ctx = ctx.with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctx.remaining_time(), Some(Duration::ZERO));
        let err = ctx.enter("Scan").unwrap_err();
        assert!(matches!(
            err,
            EngineError::ResourceExhausted {
                resource: Resource::Time,
                ..
            }
        ));
        // A comfortable future deadline leaves headroom.
        let ctx = ExecContext::unbounded().with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(ctx.remaining_time().unwrap() > Duration::from_secs(30));
        ctx.enter("Scan").unwrap();
    }

    #[test]
    fn subcontext_fresh_rows_shared_cancel() {
        let ctx = ExecContext::unbounded().with_max_rows(5);
        let child = ctx.subcontext(Some(2), None);
        child.charge_row(1).unwrap();
        child.charge_row(1).unwrap();
        assert!(child.charge_row(1).is_err());
        // Parent unaffected by the child's charges.
        assert_eq!(ctx.stats().rows, 0);
        for _ in 0..5 {
            ctx.charge_row(1).unwrap();
        }
        // Cancellation reaches the child.
        ctx.cancel_token().cancel();
        assert_eq!(child.enter("Union").unwrap_err(), EngineError::Cancelled);
    }

    #[test]
    fn threads_clamped_and_workers_tracked() {
        let ctx = ExecContext::unbounded().with_threads(0);
        assert_eq!(ctx.threads(), 1);
        let ctx = ctx.with_threads(4);
        assert_eq!(ctx.threads(), 4);
        ctx.note_workers(2);
        ctx.note_workers(4);
        ctx.note_workers(3);
        assert_eq!(ctx.stats().workers, 4);
        // Subcontexts inherit the thread cap.
        assert_eq!(ctx.subcontext(None, None).threads(), 4);
    }

    #[test]
    fn degradations_shared_across_subcontexts() {
        let ctx = ExecContext::unbounded();
        let child = ctx.subcontext(Some(1), None);
        child.record_degradation("dynamic-filter", "skipped item probe");
        assert_eq!(ctx.stats().degradations.len(), 1);
        assert_eq!(ctx.stats().degradations[0].stage, "dynamic-filter");
    }

    #[test]
    fn released_bytes_free_budget_headroom() {
        let cost = row_cost(8);
        let ctx = ExecContext::unbounded().with_mem_budget(4 * cost);
        for _ in 0..4 {
            ctx.charge_row(8).unwrap();
        }
        assert!(ctx.mem_would_trip(cost));
        assert!(ctx.charge_row(8).is_err());
        // Flushing to disk releases live bytes; the budget recovers but
        // cumulative stats keep counting.
        ctx.release_bytes(4 * cost);
        assert!(!ctx.mem_would_trip(cost));
        for _ in 0..3 {
            ctx.charge_row(8).unwrap();
        }
        assert_eq!(ctx.stats().rows, 8);
        assert!(ctx.stats().bytes >= 8 * cost);
    }

    #[test]
    fn release_saturates_at_zero() {
        let ctx = ExecContext::unbounded().with_mem_budget(1000);
        ctx.charge_row(2).unwrap();
        ctx.release_bytes(u64::MAX);
        assert_eq!(ctx.remaining_bytes(), Some(1000));
    }

    #[test]
    fn spill_plumbing_and_counters() {
        let ctx = ExecContext::unbounded();
        assert!(!ctx.spill_enabled());
        assert!(!ctx.mem_would_trip(u64::MAX / 2));
        let dir = Arc::new(qf_storage::SpillDir::create_temp().unwrap());
        let ctx = ctx.with_spill(Arc::clone(&dir));
        assert!(ctx.spill_enabled());
        assert!(ctx.spill_dir().is_some());
        ctx.note_spill(100);
        ctx.note_spill(28);
        let stats = ctx.stats();
        assert_eq!(stats.spilled_bytes, 128);
        assert_eq!(stats.spills, 2);
        // Subcontexts inherit the spill directory.
        assert!(ctx.subcontext(None, None).spill_enabled());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_point_fails_nth_entry() {
        let ctx = ExecContext::unbounded().with_fault_point(3);
        ctx.enter("Scan").unwrap();
        ctx.enter("Scan").unwrap();
        let err = ctx.enter("HashJoin").unwrap_err();
        assert_eq!(
            err,
            EngineError::FaultInjected {
                operator: "HashJoin",
                invocation: 3
            }
        );
        // Only the Nth invocation fails; later ones succeed.
        ctx.enter("Project").unwrap();
    }
}
