//! Engine-layer errors.

use qf_storage::StorageError;

/// Errors raised while building or executing physical plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Error propagated from the storage layer (unknown relation, …).
    Storage(StorageError),
    /// A plan node referenced a column index outside its input's arity.
    ColumnOutOfRange {
        /// Offending index.
        column: usize,
        /// Arity of the input the index was applied to.
        arity: usize,
        /// Operator that made the reference.
        operator: &'static str,
    },
    /// Union inputs with different arities.
    UnionArityMismatch {
        /// Arity of the first input.
        first: usize,
        /// Arity of the mismatched input.
        other: usize,
    },
    /// An aggregate (`SUM`/`MIN`/`MAX`) was applied where its input
    /// column held a non-numeric value (SUM) on some row.
    AggregateType {
        /// Description of the violation.
        detail: String,
    },
    /// A delta-maintenance operation (see [`crate::delta`]) was fed an
    /// update incoherent with its recorded state — e.g. a derivation
    /// removed that was never inserted. The maintained view can no
    /// longer be trusted and must be rebuilt from scratch.
    DeltaInvariant {
        /// Description of the violation.
        detail: String,
    },
    /// A governed execution exceeded one of its budgets (see
    /// [`crate::governor`]). `limit` and `observed` are in the
    /// resource's native unit: tuples for rows, bytes for memory,
    /// milliseconds for time.
    ResourceExhausted {
        /// Which budget was exceeded.
        resource: crate::governor::Resource,
        /// The configured limit.
        limit: u64,
        /// The value observed when the limit tripped.
        observed: u64,
    },
    /// The execution's [`crate::governor::CancelToken`] was tripped.
    Cancelled,
    /// A parallel worker thread panicked. The panic is caught at the
    /// worker boundary so shared state (the `ExecContext`) is never
    /// poisoned; the payload's message is preserved here.
    WorkerPanic {
        /// The panic payload's message, when it was a string.
        detail: String,
    },
    /// Test-only: an armed fault point fired (see
    /// [`crate::governor::ExecContext::with_fault_point`]).
    #[cfg(feature = "fault-injection")]
    FaultInjected {
        /// Operator whose invocation was failed.
        operator: &'static str,
        /// 1-based invocation count at which the fault fired.
        invocation: u64,
    },
}

impl EngineError {
    /// Is this a detected storage-integrity violation (see
    /// [`StorageError::is_corruption`])? The spill executor recomputes
    /// the affected pipeline (bounded) instead of failing.
    pub fn is_corruption(&self) -> bool {
        matches!(self, EngineError::Storage(e) if e.is_corruption())
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::ColumnOutOfRange {
                column,
                arity,
                operator,
            } => write!(
                f,
                "{operator}: column {column} out of range for input of arity {arity}"
            ),
            EngineError::UnionArityMismatch { first, other } => {
                write!(f, "union inputs have arities {first} and {other}")
            }
            EngineError::AggregateType { detail } => write!(f, "aggregate type error: {detail}"),
            EngineError::DeltaInvariant { detail } => {
                write!(f, "delta maintenance invariant violated: {detail}")
            }
            EngineError::ResourceExhausted {
                resource,
                limit,
                observed,
            } => write!(
                f,
                "resource budget exceeded: {resource} limit {limit}, observed {observed}"
            ),
            EngineError::Cancelled => write!(f, "execution cancelled"),
            EngineError::WorkerPanic { detail } => {
                write!(f, "parallel worker panicked: {detail}")
            }
            #[cfg(feature = "fault-injection")]
            EngineError::FaultInjected {
                operator,
                invocation,
            } => write!(f, "injected fault in {operator} (invocation {invocation})"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_storage() {
        let e = EngineError::from(StorageError::UnknownRelation { name: "x".into() });
        assert_eq!(e.to_string(), "unknown relation `x`");
    }
}
