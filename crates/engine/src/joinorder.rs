//! Join-order search over a join graph.
//!
//! §4.4: "We start by choosing a join order for the four subgoals. Any
//! of a number of models and approaches to selecting this join order may
//! be used; our idea is independent of how the join order is actually
//! chosen." This module supplies two choosers over an abstract join
//! graph — nodes with attribute sets and statistics, where two nodes
//! join on every attribute they share (natural-join semantics, which is
//! exactly how Datalog subgoals sharing variables combine):
//!
//! * [`order_greedy`] — start from the smallest relation, repeatedly
//!   append the node minimizing the next intermediate size. `O(n²)`.
//! * [`order_optimal_dp`] — exact minimum-`C_out` **left-deep** order by
//!   dynamic programming over subsets. `O(2ⁿ·n)`; fine for the ≤ 12
//!   subgoals mining flocks have.
//!
//! Both return a permutation of node indexes. Estimates follow the same
//! Selinger formulas as [`crate::estimate()`].

/// One relation (or subgoal) in the join graph.
#[derive(Clone, Debug)]
pub struct JoinNode {
    /// Diagnostic label (subgoal text, relation name, …).
    pub label: String,
    /// Attribute identities; two nodes equi-join on shared attributes.
    /// In flock compilation these are variable ids.
    pub attrs: Vec<u32>,
    /// Estimated (or exact) row count.
    pub rows: f64,
    /// Estimated distinct values per attribute, parallel to `attrs`.
    pub distinct: Vec<f64>,
}

impl JoinNode {
    /// Construct a node; `attrs` and `distinct` must be parallel.
    pub fn new(
        label: impl Into<String>,
        attrs: Vec<u32>,
        rows: f64,
        distinct: Vec<f64>,
    ) -> JoinNode {
        assert_eq!(
            attrs.len(),
            distinct.len(),
            "attrs/distinct must be parallel"
        );
        JoinNode {
            label: label.into(),
            attrs,
            rows,
            distinct,
        }
    }
}

/// A set of join nodes to order.
#[derive(Clone, Debug, Default)]
pub struct JoinGraph {
    nodes: Vec<JoinNode>,
}

impl JoinGraph {
    /// Empty graph.
    pub fn new() -> JoinGraph {
        JoinGraph::default()
    }

    /// Add a node, returning its index.
    pub fn add(&mut self, node: JoinNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The nodes.
    pub fn nodes(&self) -> &[JoinNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Running statistics of a partial join result.
#[derive(Clone, Debug)]
struct Composite {
    rows: f64,
    /// attr → distinct count in the composite.
    distinct: Vec<(u32, f64)>,
}

impl Composite {
    fn from_node(n: &JoinNode) -> Composite {
        Composite {
            rows: n.rows,
            distinct: n
                .attrs
                .iter()
                .copied()
                .zip(n.distinct.iter().copied())
                .collect(),
        }
    }

    fn get(&self, attr: u32) -> Option<f64> {
        self.distinct
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, d)| *d)
    }

    /// Join with `n`, returning the new composite and its estimated rows.
    fn join(&self, n: &JoinNode) -> Composite {
        let mut rows = self.rows * n.rows;
        let mut distinct = self.distinct.clone();
        for (i, &attr) in n.attrs.iter().enumerate() {
            match self.get(attr) {
                Some(lv) => {
                    let rv = n.distinct[i];
                    rows /= lv.max(rv).max(1.0);
                    // Containment: the shared attribute keeps the smaller
                    // distinct count.
                    for (a, d) in &mut distinct {
                        if *a == attr {
                            *d = d.min(rv);
                        }
                    }
                }
                None => distinct.push((attr, n.distinct[i])),
            }
        }
        // Distincts cannot exceed rows.
        for (_, d) in &mut distinct {
            *d = d.min(rows.max(1.0));
        }
        Composite { rows, distinct }
    }
}

/// Greedy left-deep join order: smallest relation first, then repeatedly
/// the node whose join yields the smallest estimated intermediate.
pub fn order_greedy(graph: &JoinGraph) -> Vec<usize> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed: smallest estimated rows.
    let seed_pos = remaining
        .iter()
        .enumerate()
        .min_by(|(_, &a), (_, &b)| {
            graph.nodes[a]
                .rows
                .partial_cmp(&graph.nodes[b].rows)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(pos, _)| pos)
        .unwrap_or(0);
    let seed = remaining.swap_remove(seed_pos);
    let mut order = vec![seed];
    let mut composite = Composite::from_node(&graph.nodes[seed]);
    while !remaining.is_empty() {
        let Some((pos, next_comp)) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| (pos, composite.join(&graph.nodes[i])))
            .min_by(|(_, a), (_, b)| {
                a.rows
                    .partial_cmp(&b.rows)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        else {
            break; // unreachable: remaining is non-empty
        };
        let chosen = remaining.swap_remove(pos);
        order.push(chosen);
        composite = next_comp;
    }
    order
}

/// Exact minimum-`C_out` left-deep order via subset DP.
///
/// Minimizes the sum of intermediate result sizes. Panics if the graph
/// has more than 20 nodes (the DP table would be unreasonable; flocks
/// never get there — split the query instead).
pub fn order_optimal_dp(graph: &JoinGraph) -> Vec<usize> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(n <= 20, "DP join ordering limited to 20 relations");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // best[mask] = (cost of intermediates, composite, last node added).
    let mut best: Vec<Option<(f64, Composite, usize)>> = vec![None; (full as usize) + 1];
    for i in 0..n {
        let mask = 1u32 << i;
        best[mask as usize] = Some((0.0, Composite::from_node(&graph.nodes[i]), i));
    }
    // Iterate masks in increasing popcount order implicitly: numeric
    // order suffices because every extension has a larger mask value.
    for mask in 1..=full {
        let Some((cost_so_far, composite, _)) = best[mask as usize].clone() else {
            continue;
        };
        for i in 0..n {
            let bit = 1u32 << i;
            if mask & bit != 0 {
                continue;
            }
            let next = composite.join(&graph.nodes[i]);
            let next_cost = cost_so_far + next.rows;
            let slot = &mut best[(mask | bit) as usize];
            let better = match slot {
                None => true,
                Some((c, _, _)) => next_cost < *c,
            };
            if better {
                *slot = Some((next_cost, next, i));
            }
        }
    }

    // Reconstruct: walk back removing the recorded last node. The DP
    // stores only the last step per mask, and the predecessor mask's
    // entry is the optimal prefix for *that* mask, so the walk-back is
    // consistent (Bellman principle holds for left-deep C_out).
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let Some((_, _, last)) = best[mask as usize].clone() else {
            // Every reachable mask is filled by construction; a hole
            // would be an internal bug. Degrade to as-written order
            // rather than panicking mid-optimization.
            return (0..n).collect();
        };
        order.push(last);
        mask &= !(1u32 << last);
    }
    order.reverse();
    order
}

/// Estimated total intermediate size (`C_out` over the join prefix) of
/// executing `order` — exposed so callers can compare orders.
pub fn order_cost(graph: &JoinGraph, order: &[usize]) -> f64 {
    if order.is_empty() {
        return 0.0;
    }
    let mut composite = Composite::from_node(&graph.nodes[order[0]]);
    let mut cost = 0.0;
    for &i in &order[1..] {
        composite = composite.join(&graph.nodes[i]);
        cost += composite.rows;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three relations: tiny `t(a)`, huge `h(a,b)`, medium `m(b)`.
    fn chain_graph() -> JoinGraph {
        let mut g = JoinGraph::new();
        g.add(JoinNode::new("t", vec![0], 10.0, vec![10.0]));
        g.add(JoinNode::new(
            "h",
            vec![0, 1],
            100_000.0,
            vec![1000.0, 1000.0],
        ));
        g.add(JoinNode::new("m", vec![1], 500.0, vec![500.0]));
        g
    }

    #[test]
    fn greedy_starts_small() {
        let order = order_greedy(&chain_graph());
        assert_eq!(order[0], 0, "must seed with the smallest relation");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn dp_no_worse_than_greedy() {
        let g = chain_graph();
        let dp = order_optimal_dp(&g);
        let greedy = order_greedy(&g);
        assert!(order_cost(&g, &dp) <= order_cost(&g, &greedy) + 1e-9);
    }

    #[test]
    fn dp_is_permutation() {
        let g = chain_graph();
        let mut order = order_optimal_dp(&g);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dp_beats_bad_order() {
        let g = chain_graph();
        let dp = order_optimal_dp(&g);
        // Cross product first (t ⋈ m shares nothing) is the bad shape.
        let bad = vec![0, 2, 1];
        assert!(order_cost(&g, &dp) <= order_cost(&g, &bad));
    }

    #[test]
    fn cross_product_penalized() {
        let g = chain_graph();
        // t then m is a cross product: 10 * 500 = 5000 rows; greedy must
        // instead take h next despite its size? No: greedy minimizes the
        // *next intermediate*, and t ⋈ h = 10*100000/1000 = 1000 < 5000.
        let order = order_greedy(&g);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(order_greedy(&JoinGraph::new()).is_empty());
        assert!(order_optimal_dp(&JoinGraph::new()).is_empty());
        let mut g = JoinGraph::new();
        g.add(JoinNode::new("only", vec![0], 5.0, vec![5.0]));
        assert_eq!(order_greedy(&g), vec![0]);
        assert_eq!(order_optimal_dp(&g), vec![0]);
    }

    #[test]
    fn composite_containment_shrinks_distincts() {
        let a = JoinNode::new("a", vec![0], 100.0, vec![100.0]);
        let b = JoinNode::new("b", vec![0], 10.0, vec![10.0]);
        let c = Composite::from_node(&a).join(&b);
        // 100*10/100 = 10 rows; attr 0 keeps min(100,10)=10 distinct.
        assert!((c.rows - 10.0).abs() < 1e-9);
        assert!((c.get(0).unwrap() - 10.0).abs() < 1e-9);
    }
}
