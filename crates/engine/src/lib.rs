//! # qf-engine — relational operators, statistics, cost model
//!
//! The query-evaluation layer of the query-flocks system: physical plan
//! trees over [`qf_storage`] relations, an executor, Selinger-style
//! cardinality estimation, a tuple-count cost model, and join-order
//! search.
//!
//! The SIGMOD '98 paper deliberately stops above this layer — it assumes
//! a relational engine exists and asks how flock-level rewrites should
//! drive it ("the general theory of cost-based optimization \[G*79\]
//! applies here", §4.2). This crate supplies that engine:
//!
//! * **Operators** ([`plan`], [`exec`]): scan, select, project (with
//!   set-semantics dedup), hash equi-join, antijoin (for `NOT`
//!   subgoals), union, and grouped aggregation (`COUNT`/`SUM`/`MIN`/
//!   `MAX`) — everything a union of extended conjunctive queries with a
//!   support filter compiles to.
//! * **Estimation** ([`mod@estimate`]): cardinality and per-column distinct
//!   estimates under the classical uniformity/independence assumptions,
//!   the inputs the paper's static plan search needs.
//! * **Cost** ([`mod@cost`]): the C_out model — total tuples materialized —
//!   which is the quantity the paper reasons about throughout §4.
//! * **Join ordering** ([`joinorder`]): greedy and dynamic-programming
//!   left-deep orderings over a join graph; §4.4's dynamic strategy
//!   "start\[s\] by choosing a join order", and this is the chooser.
//!
//! ```
//! use qf_engine::{execute, PhysicalPlan};
//! use qf_storage::{Database, Relation, Schema, Value};
//!
//! let mut db = Database::new();
//! db.insert(Relation::from_rows(
//!     Schema::new("arc", &["src", "dst"]),
//!     vec![
//!         vec![Value::int(1), Value::int(2)],
//!         vec![Value::int(2), Value::int(3)],
//!     ],
//! ));
//! // arc ⋈ arc on dst = src: paths of length 2.
//! let plan = PhysicalPlan::hash_join(
//!     PhysicalPlan::scan("arc"),
//!     PhysicalPlan::scan("arc"),
//!     vec![(1, 0)],
//! );
//! let paths = execute(&plan, &db).unwrap();
//! assert_eq!(paths.len(), 1); // 1 → 2 → 3
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod delta;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod governor;
pub mod joinorder;
pub mod merge;
pub mod parallel;
pub mod partial;
pub mod plan;
mod spill;

pub use cost::{cost, cost_with};
pub use delta::{GroupAggView, RECHECK_BOUND};
pub use error::{EngineError, Result};
pub use estimate::{estimate, estimate_with, Estimate, MapStats, StatsSource};
pub use exec::{execute, execute_with};
pub use expr::{CmpOp, Operand, Predicate};
pub use governor::{
    env_mem_budget, row_cost, CancelToken, Degradation, ExecContext, ExecStats, Resource,
};
pub use joinorder::{order_greedy, order_optimal_dp, JoinGraph, JoinNode};
pub use merge::{join_auto, join_auto_with, merge_join, merge_join_with, merge_joinable};
pub use parallel::{default_threads, par_chunks, par_items, workers_for};
pub use partial::{merge_partials, MergeOp};
pub use plan::{AggFn, PhysicalPlan};
