//! Partial-aggregate merge plumbing for scatter-gather execution.
//!
//! A scored relation is `(group columns…, aggregate)` with the
//! aggregate in the last column. When the same query runs over disjoint
//! fragments of a catalog, the per-fragment scored relations are
//! **partial aggregates** of the global one, and the paper's central
//! filters are algebraic: `COUNT` and `SUM` merge by addition, `MIN`
//! and `MAX` by min/max. This module is the merge kernel — it combines
//! any number of partials into the scored relation a single-node run
//! over the union of the fragments would have produced, bitwise
//! (provided the fragments really partition the answer tuples; that
//! precondition is the *caller's* obligation, see `qf-core`'s
//! shardability check).
//!
//! Addition saturates, exactly like the engine's own `SUM` accumulator
//! — a merged result can never disagree with a single-node run by
//! overflowing where the engine would have clamped.

use qf_storage::{FastMap, Relation, Schema, Tuple, Value};

use crate::error::{EngineError, Result};

/// How two partial aggregate values combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOp {
    /// `COUNT`/`SUM` partials add (saturating, like the engine's
    /// accumulator). Both sides must be integers.
    Add,
    /// `MIN` partials combine by minimum (total `Value` order).
    Min,
    /// `MAX` partials combine by maximum.
    Max,
}

impl MergeOp {
    fn combine(self, a: Value, b: Value) -> Result<Value> {
        match self {
            MergeOp::Add => match (a, b) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::int(x.saturating_add(y))),
                _ => Err(EngineError::AggregateType {
                    detail: format!("cannot add partial aggregates {a} and {b}"),
                }),
            },
            MergeOp::Min => Ok(a.min(b)),
            MergeOp::Max => Ok(a.max(b)),
        }
    }
}

/// Merge scored partials: group on every column but the last, combine
/// the last column with `op`. The output carries `schema` and is sorted
/// and deduplicated, so it is bitwise-identical to the scored relation
/// a single evaluation over the fragments' union would materialize.
///
/// Every partial must have `schema`'s arity; the arity check is the
/// only structural validation (column *names* are the caller's
/// concern — shards answer with the schema the coordinator sent).
pub fn merge_partials(schema: Schema, parts: &[Relation], op: MergeOp) -> Result<Relation> {
    let arity = schema.arity();
    debug_assert!(arity >= 1, "scored relations have at least the aggregate");
    let key_cols: Vec<usize> = (0..arity.saturating_sub(1)).collect();
    let mut acc: FastMap<Tuple, Value> = FastMap::default();
    for part in parts {
        if part.schema().arity() != arity {
            return Err(EngineError::UnionArityMismatch {
                first: arity,
                other: part.schema().arity(),
            });
        }
        for t in part.iter() {
            let key = t.project(&key_cols);
            let v = t.get(arity - 1);
            match acc.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let merged = op.combine(*e.get(), v)?;
                    e.insert(merged);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
    let tuples: Vec<Tuple> = acc
        .into_iter()
        .map(|(key, v)| {
            let mut row: Vec<Value> = key.values().to_vec();
            row.push(v);
            Tuple::new(row)
        })
        .collect();
    Ok(Relation::from_tuples(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(rows: Vec<Vec<Value>>) -> Relation {
        Relation::from_rows(Schema::new("scored_result", &["p", "agg"]), rows)
    }

    #[test]
    fn add_merges_disjoint_and_overlapping_groups() {
        let a = scored(vec![
            vec![Value::str("x"), Value::int(2)],
            vec![Value::str("y"), Value::int(1)],
        ]);
        let b = scored(vec![vec![Value::str("x"), Value::int(3)]]);
        let m = merge_partials(a.schema().clone(), &[a.clone(), b], MergeOp::Add).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Tuple::new(vec![Value::str("x"), Value::int(5)])));
        assert!(m.contains(&Tuple::new(vec![Value::str("y"), Value::int(1)])));
    }

    #[test]
    fn min_max_use_value_order() {
        let a = scored(vec![vec![Value::str("x"), Value::int(7)]]);
        let b = scored(vec![vec![Value::str("x"), Value::int(3)]]);
        let min =
            merge_partials(a.schema().clone(), &[a.clone(), b.clone()], MergeOp::Min).unwrap();
        assert_eq!(min.tuples()[0].get(1), Value::int(3));
        let max = merge_partials(a.schema().clone(), &[a, b], MergeOp::Max).unwrap();
        assert_eq!(max.tuples()[0].get(1), Value::int(7));
    }

    #[test]
    fn add_saturates_like_the_engine() {
        let a = scored(vec![vec![Value::str("x"), Value::int(i64::MAX)]]);
        let b = scored(vec![vec![Value::str("x"), Value::int(1)]]);
        let m = merge_partials(a.schema().clone(), &[a, b], MergeOp::Add).unwrap();
        assert_eq!(m.tuples()[0].get(1), Value::int(i64::MAX));
    }

    #[test]
    fn add_rejects_symbolic_aggregates() {
        let a = scored(vec![vec![Value::str("x"), Value::str("oops")]]);
        let b = scored(vec![vec![Value::str("x"), Value::str("oops")]]);
        let err = merge_partials(a.schema().clone(), &[a, b], MergeOp::Add).unwrap_err();
        assert!(matches!(err, EngineError::AggregateType { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let a = scored(vec![vec![Value::str("x"), Value::int(1)]]);
        let wide = Relation::from_rows(
            Schema::new("scored_result", &["p", "q", "agg"]),
            vec![vec![Value::str("x"), Value::str("y"), Value::int(1)]],
        );
        let err = merge_partials(a.schema().clone(), &[a, wide], MergeOp::Add).unwrap_err();
        assert!(matches!(err, EngineError::UnionArityMismatch { .. }));
    }

    #[test]
    fn empty_partials_merge_to_empty() {
        let schema = Schema::new("scored_result", &["p", "agg"]);
        let e = Relation::empty(schema.clone());
        let m = merge_partials(schema, &[e.clone(), e], MergeOp::Add).unwrap();
        assert!(m.is_empty());
    }
}
