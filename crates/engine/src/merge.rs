//! Sort-merge join.
//!
//! The engine's relations are stored sorted by full tuple, so a join
//! whose keys are the **leading columns of both sides** can skip hash
//! tables entirely and merge the two sorted runs. Mining plans hit this
//! case constantly — `FILTER`-step outputs are keyed by their parameter
//! columns, which are the leading columns by construction — and the
//! merge path avoids both the build table and the output sort of large
//! runs.
//!
//! [`merge_join`] requires the leading-column precondition
//! ([`merge_joinable`]) and asserts the key count fits both arities;
//! [`join_auto_with`] picks merge when the key layout permits and falls
//! back to a smaller-side-build hash join with a parallel probe
//! otherwise. The executor's `HashJoin` operator delegates to
//! [`join_auto_with`], so every plan-level join gets both the merge
//! fast path and the build-side choice.

use std::cmp::Ordering;

use qf_storage::{HashIndex, Relation, Schema, Tuple};

use crate::error::Result;
use crate::governor::ExecContext;
use crate::parallel;

/// True if `keys` are exactly the leading columns of both inputs, in
/// order — the precondition under which sorted-run merging is correct
/// (relations are sorted by full tuple, so they are sorted by any
/// leading-column prefix).
pub fn merge_joinable(keys: &[(usize, usize)]) -> bool {
    keys.iter().enumerate().all(|(i, &(l, r))| l == i && r == i)
}

/// Sort-merge join on the leading `n_keys` columns of both inputs,
/// governed by `ctx`. Output is `left ++ right`, sorted and
/// deduplicated.
///
/// # Panics
///
/// Asserts that `n_keys` does not exceed either input's arity — the
/// real precondition of merging sorted runs. (That the inputs are
/// sorted on those leading columns is guaranteed by `Relation`'s
/// sorted-by-full-tuple invariant, debug-checked here.)
pub fn merge_join_with(
    left: &Relation,
    right: &Relation,
    n_keys: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    assert!(
        n_keys <= left.schema().arity() && n_keys <= right.schema().arity(),
        "merge_join: {n_keys} key columns exceed input arity ({} / {})",
        left.schema().arity(),
        right.schema().arity()
    );
    debug_assert!(
        left.tuples().windows(2).all(|w| w[0] <= w[1])
            && right.tuples().windows(2).all(|w| w[0] <= w[1]),
        "merge_join inputs must be sorted"
    );
    let schema = concat_schema(left, right);
    let width = schema.arity();
    let lt = left.tuples();
    let rt = right.tuples();
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let key_cmp = |a: &Tuple, b: &Tuple| -> Ordering {
        for k in 0..n_keys {
            match a.get(k).cmp(&b.get(k)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    };
    while i < lt.len() && j < rt.len() {
        ctx.tick()?;
        match key_cmp(&lt[i], &rt[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find both runs of equal keys and emit the product.
                let i_end = run_end(lt, i, n_keys);
                let j_end = run_end(rt, j, n_keys);
                for a in &lt[i..i_end] {
                    for b in &rt[j..j_end] {
                        ctx.charge_row(width)?;
                        out.push(a.concat(b));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    // The merge emits in left-major sorted order, but concatenated
    // tuples within a run may interleave; a final canonicalization pass
    // is still cheap because runs are short. Use the sorting builder.
    Ok(Relation::from_tuples(schema, out))
}

/// Ungoverned [`merge_join_with`] (unbounded context).
pub fn merge_join(left: &Relation, right: &Relation, n_keys: usize) -> Result<Relation> {
    merge_join_with(left, right, n_keys, &ExecContext::unbounded())
}

/// End of the run of tuples sharing `t[start]`'s leading `n_keys` values.
fn run_end(tuples: &[Tuple], start: usize, n_keys: usize) -> usize {
    let mut end = start + 1;
    while end < tuples.len() && (0..n_keys).all(|k| tuples[end].get(k) == tuples[start].get(k)) {
        end += 1;
    }
    end
}

/// Join two materialized relations under `ctx`, choosing merge when the
/// key layout permits, hash otherwise. The hash path builds its table
/// on the **smaller** input and probes the larger one with up to
/// [`ExecContext::threads`] workers. Output is `left ++ right`, sorted
/// and deduplicated, identical regardless of path or build side.
pub fn join_auto_with(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    ctx: &ExecContext,
) -> Result<Relation> {
    if !keys.is_empty() && merge_joinable(keys) {
        return merge_join_with(left, right, keys.len(), ctx);
    }
    let (lk, rk): (Vec<usize>, Vec<usize>) = keys.iter().copied().unzip();
    let schema = concat_schema(left, right);
    let width = schema.arity();
    // Build on the smaller side: the build table is the O(n) memory
    // cost, the probe side only streams.
    let build_left = left.len() < right.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (left, right, &lk, &rk)
    } else {
        (right, left, &rk, &lk)
    };
    let idx = HashIndex::build(build, build_keys);
    let workers = parallel::workers_for(probe.len(), ctx.threads());
    ctx.note_workers(workers);
    let chunks = parallel::par_chunks(probe.tuples(), workers, |chunk| -> Result<Vec<Tuple>> {
        let mut out: Vec<Tuple> = Vec::new();
        for t in chunk {
            ctx.tick()?;
            for &row in idx.probe(&t.project(probe_keys)) {
                ctx.charge_row(width)?;
                let bt = &build.tuples()[row as usize];
                // Output columns are always left ++ right, whichever
                // side was built.
                out.push(if build_left {
                    bt.concat(t)
                } else {
                    t.concat(bt)
                });
            }
        }
        Ok(out)
    })?;
    let out: Vec<Tuple> = chunks.into_iter().flatten().collect();
    Ok(Relation::from_tuples(schema, out))
}

/// Ungoverned [`join_auto_with`] (unbounded context).
pub fn join_auto(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Result<Relation> {
    join_auto_with(left, right, keys, &ExecContext::unbounded())
}

fn concat_schema(l: &Relation, r: &Relation) -> Schema {
    let mut names: Vec<String> = l.schema().columns().to_vec();
    names.extend(r.schema().columns().iter().cloned());
    Schema::from_columns("join", names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::Value;

    fn rel(name: &str, rows: &[(i64, i64)]) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["a", "b"]),
            rows.iter()
                .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
                .collect(),
        )
    }

    #[test]
    fn merge_equals_hash_on_leading_keys() {
        let l = rel("l", &[(1, 10), (1, 11), (2, 20), (3, 30)]);
        let r = rel("r", &[(1, 100), (2, 200), (2, 201), (4, 400)]);
        let merged = merge_join(&l, &r, 1).unwrap();
        let hashed = join_auto(&l, &r, &[(0, 1)]).unwrap(); // not merge-joinable layout
                                                            // Compare against hash join on the same (leading) keys.
        let hashed_same = {
            let (lk, rk) = (vec![0], vec![0]);
            let idx = HashIndex::build(&r, &rk);
            let mut out = Vec::new();
            for a in l.iter() {
                for &row in idx.probe(&a.project(&lk)) {
                    out.push(a.concat(&r.tuples()[row as usize]));
                }
            }
            Relation::from_tuples(merged.schema().clone(), out)
        };
        assert_eq!(merged.tuples(), hashed_same.tuples());
        assert_eq!(merged.len(), 2 + 2); // key 1: 2×1, key 2: 1×2
        let _ = hashed;
    }

    #[test]
    fn composite_leading_keys() {
        let l = rel("l", &[(1, 10), (1, 11), (2, 10)]);
        let r = rel("r", &[(1, 10), (1, 11), (2, 11)]);
        let merged = merge_join(&l, &r, 2).unwrap();
        assert_eq!(merged.len(), 2); // (1,10) and (1,11) match exactly.
        for t in merged.iter() {
            assert_eq!(t.get(0), t.get(2));
            assert_eq!(t.get(1), t.get(3));
        }
    }

    #[test]
    fn zero_key_merge_is_cross_product_via_auto() {
        let l = rel("l", &[(1, 1), (2, 2)]);
        let r = rel("r", &[(3, 3)]);
        let j = join_auto(&l, &r, &[]).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn joinable_predicate() {
        assert!(merge_joinable(&[(0, 0)]));
        assert!(merge_joinable(&[(0, 0), (1, 1)]));
        assert!(!merge_joinable(&[(1, 0)]));
        assert!(!merge_joinable(&[(0, 0), (2, 1)]));
    }

    #[test]
    fn disjoint_keys_empty_result() {
        let l = rel("l", &[(1, 1)]);
        let r = rel("r", &[(2, 2)]);
        assert!(merge_join(&l, &r, 1).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed input arity")]
    fn too_many_keys_panics() {
        let l = rel("l", &[(1, 1)]);
        let r = rel("r", &[(2, 2)]);
        let _ = merge_join(&l, &r, 3);
    }

    #[test]
    fn build_side_does_not_change_result() {
        // Same key layout, asymmetric sizes in both directions: the
        // non-merge-joinable key (0, 1) forces the hash path.
        let small = rel("s", &[(1, 2), (3, 4)]);
        let big = rel("b", &(0..50).map(|i| (i % 5, i % 3)).collect::<Vec<_>>());
        let a = join_auto(&small, &big, &[(0, 1)]).unwrap();
        let b = join_auto(&big, &small, &[(1, 0)]).unwrap();
        // a's columns are small ++ big, b's are big ++ small; compare
        // cardinalities (same match set, transposed columns).
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn auto_picks_merge_and_agrees_with_hash() {
        // Property-style check over a grid of random-ish relations.
        for seed in 0..20i64 {
            let l_rows: Vec<(i64, i64)> =
                (0..30).map(|i| ((i * seed) % 7, (i + seed) % 5)).collect();
            let r_rows: Vec<(i64, i64)> = (0..25).map(|i| ((i + seed) % 7, (i * 3) % 4)).collect();
            let l = rel("l", &l_rows);
            let r = rel("r", &r_rows);
            let merged = merge_join(&l, &r, 1).unwrap();
            let auto = join_auto(&l, &r, &[(0, 0)]).unwrap();
            assert_eq!(merged.tuples(), auto.tuples(), "seed {seed}");
        }
    }

    #[test]
    fn governed_merge_join_charges_rows() {
        let l = rel("l", &[(1, 10), (2, 20)]);
        let r = rel("r", &[(1, 11), (2, 21)]);
        let ctx = ExecContext::unbounded();
        let out = merge_join_with(&l, &r, 1, &ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(ctx.stats().rows, 2);
        // A 1-row budget trips mid-merge.
        let tight = ExecContext::unbounded().with_max_rows(1);
        assert!(merge_join_with(&l, &r, 1, &tight).is_err());
    }
}
