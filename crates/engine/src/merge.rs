//! Sort-merge join.
//!
//! The engine's relations are stored sorted by full tuple, so a join
//! whose keys are the **leading columns of both sides** can skip hash
//! tables entirely and merge the two sorted runs. Mining plans hit this
//! case constantly — `FILTER`-step outputs are keyed by their parameter
//! columns, which are the leading columns by construction — and the
//! merge path avoids both the build table and the output sort.
//!
//! [`merge_join`] requires the leading-column precondition and
//! debug-asserts it; [`join_auto`] picks merge when legal and falls back
//! to hash join otherwise, and is what the executor uses.

use std::cmp::Ordering;

use qf_storage::{HashIndex, Relation, Schema, Tuple};

/// True if `keys` are exactly the leading columns of both inputs, in
/// order — the precondition under which sorted-run merging is correct.
pub fn merge_joinable(keys: &[(usize, usize)]) -> bool {
    keys.iter().enumerate().all(|(i, &(l, r))| l == i && r == i)
}

/// Sort-merge join on the leading `keys.len()` columns of both inputs.
/// Output is `left ++ right`, sorted and deduplicated.
///
/// Panics (debug) if the precondition of [`merge_joinable`] fails.
pub fn merge_join(left: &Relation, right: &Relation, n_keys: usize) -> Relation {
    debug_assert!(n_keys <= left.schema().arity());
    debug_assert!(n_keys <= right.schema().arity());
    let schema = concat_schema(left, right);
    let lt = left.tuples();
    let rt = right.tuples();
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let key_cmp = |a: &Tuple, b: &Tuple| -> Ordering {
        for k in 0..n_keys {
            match a.get(k).cmp(&b.get(k)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    };
    while i < lt.len() && j < rt.len() {
        match key_cmp(&lt[i], &rt[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find both runs of equal keys and emit the product.
                let i_end = run_end(lt, i, n_keys);
                let j_end = run_end(rt, j, n_keys);
                for a in &lt[i..i_end] {
                    for b in &rt[j..j_end] {
                        out.push(a.concat(b));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    // The merge emits in left-major sorted order, but concatenated
    // tuples within a run may interleave; a final canonicalization pass
    // is still cheap because runs are short. Use the sorting builder.
    Relation::from_tuples(schema, out)
}

/// End of the run of tuples sharing `t[start]`'s leading `n_keys` values.
fn run_end(tuples: &[Tuple], start: usize, n_keys: usize) -> usize {
    let mut end = start + 1;
    while end < tuples.len() && (0..n_keys).all(|k| tuples[end].get(k) == tuples[start].get(k)) {
        end += 1;
    }
    end
}

/// Join two materialized relations, choosing merge when the key layout
/// permits, hash otherwise. Output is `left ++ right`.
pub fn join_auto(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Relation {
    if !keys.is_empty() && merge_joinable(keys) {
        return merge_join(left, right, keys.len());
    }
    // Hash join path (same logic as the executor's HashJoin).
    let (lk, rk): (Vec<usize>, Vec<usize>) = keys.iter().copied().unzip();
    let idx = HashIndex::build(right, &rk);
    let schema = concat_schema(left, right);
    let mut out = Vec::new();
    for a in left.iter() {
        let key = a.project(&lk);
        for &row in idx.probe(&key) {
            out.push(a.concat(&right.tuples()[row as usize]));
        }
    }
    Relation::from_tuples(schema, out)
}

fn concat_schema(l: &Relation, r: &Relation) -> Schema {
    let mut names: Vec<String> = l.schema().columns().to_vec();
    names.extend(r.schema().columns().iter().cloned());
    Schema::from_columns("join", names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::Value;

    fn rel(name: &str, rows: &[(i64, i64)]) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["a", "b"]),
            rows.iter()
                .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
                .collect(),
        )
    }

    #[test]
    fn merge_equals_hash_on_leading_keys() {
        let l = rel("l", &[(1, 10), (1, 11), (2, 20), (3, 30)]);
        let r = rel("r", &[(1, 100), (2, 200), (2, 201), (4, 400)]);
        let merged = merge_join(&l, &r, 1);
        let hashed = join_auto(&l, &r, &[(0, 1)]); // not merge-joinable layout
                                                   // Compare against hash join on the same (leading) keys.
        let hashed_same = {
            let (lk, rk) = (vec![0], vec![0]);
            let idx = HashIndex::build(&r, &rk);
            let mut out = Vec::new();
            for a in l.iter() {
                for &row in idx.probe(&a.project(&lk)) {
                    out.push(a.concat(&r.tuples()[row as usize]));
                }
            }
            Relation::from_tuples(merged.schema().clone(), out)
        };
        assert_eq!(merged.tuples(), hashed_same.tuples());
        assert_eq!(merged.len(), 2 + 2); // key 1: 2×1, key 2: 1×2
        let _ = hashed;
    }

    #[test]
    fn composite_leading_keys() {
        let l = rel("l", &[(1, 10), (1, 11), (2, 10)]);
        let r = rel("r", &[(1, 10), (1, 11), (2, 11)]);
        let merged = merge_join(&l, &r, 2);
        assert_eq!(merged.len(), 2); // (1,10) and (1,11) match exactly.
        for t in merged.iter() {
            assert_eq!(t.get(0), t.get(2));
            assert_eq!(t.get(1), t.get(3));
        }
    }

    #[test]
    fn zero_key_merge_is_cross_product_via_auto() {
        let l = rel("l", &[(1, 1), (2, 2)]);
        let r = rel("r", &[(3, 3)]);
        let j = join_auto(&l, &r, &[]);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn joinable_predicate() {
        assert!(merge_joinable(&[(0, 0)]));
        assert!(merge_joinable(&[(0, 0), (1, 1)]));
        assert!(!merge_joinable(&[(1, 0)]));
        assert!(!merge_joinable(&[(0, 0), (2, 1)]));
    }

    #[test]
    fn disjoint_keys_empty_result() {
        let l = rel("l", &[(1, 1)]);
        let r = rel("r", &[(2, 2)]);
        assert!(merge_join(&l, &r, 1).is_empty());
    }

    #[test]
    fn auto_picks_merge_and_agrees_with_hash() {
        // Property-style check over a grid of random-ish relations.
        for seed in 0..20i64 {
            let l_rows: Vec<(i64, i64)> =
                (0..30).map(|i| ((i * seed) % 7, (i + seed) % 5)).collect();
            let r_rows: Vec<(i64, i64)> = (0..25).map(|i| ((i + seed) % 7, (i * 3) % 4)).collect();
            let l = rel("l", &l_rows);
            let r = rel("r", &r_rows);
            let merged = merge_join(&l, &r, 1);
            let auto = join_auto(&l, &r, &[(0, 0)]);
            assert_eq!(merged.tuples(), auto.tuples(), "seed {seed}");
        }
    }
}
