//! Physical plan trees.

use crate::expr::Predicate;

/// Grouped aggregate functions.
///
/// `COUNT` plus the monotone aggregates the paper's future-work section
/// names: "certain COUNT, MIN, MAX, SUM (in the case of non-negative
/// numbers) conditions" (§5, Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Number of (distinct, because inputs are sets) rows per group.
    Count,
    /// Sum of an integer column per group.
    Sum(usize),
    /// Minimum of a column per group.
    Min(usize),
    /// Maximum of a column per group.
    Max(usize),
}

impl AggFn {
    /// The input column the aggregate reads, if any.
    pub fn input_column(self) -> Option<usize> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(c) | AggFn::Min(c) | AggFn::Max(c) => Some(c),
        }
    }

    /// SQL spelling with a placeholder argument.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "COUNT",
            AggFn::Sum(_) => "SUM",
            AggFn::Min(_) => "MIN",
            AggFn::Max(_) => "MAX",
        }
    }
}

/// A physical query plan.
///
/// Operators are positional: every node's output tuple layout is a
/// function of its children's layouts, and all column references are
/// indexes into that layout. (Compilation from named Datalog variables
/// to positions happens in `qf-core`.)
#[derive(Clone, Debug, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a named relation from the database.
    Scan {
        /// Relation name resolved at execution time.
        relation: String,
    },
    /// Keep tuples satisfying every predicate.
    Select {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Conjunction of predicates.
        predicates: Vec<Predicate>,
    },
    /// Keep the listed columns (in order), deduplicating the result —
    /// projection under set semantics.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Column indexes to keep.
        cols: Vec<usize>,
    },
    /// Hash equi-join; output is the left tuple concatenated with the
    /// right tuple.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// Pairs `(left column, right column)` that must be equal.
        keys: Vec<(usize, usize)>,
    },
    /// Antijoin: left tuples with **no** matching right tuple. This is
    /// how a safe `NOT p(…)` subgoal executes — safety (§3.3 condition
    /// 2) guarantees every variable of the negated subgoal is bound on
    /// the left.
    AntiJoin {
        /// Left (kept) input.
        left: Box<PhysicalPlan>,
        /// Right (filtering) input.
        right: Box<PhysicalPlan>,
        /// Pairs `(left column, right column)` that must be equal for a
        /// right tuple to exclude a left tuple.
        keys: Vec<(usize, usize)>,
    },
    /// Set union of same-arity inputs.
    Union {
        /// Inputs; all must share one arity.
        inputs: Vec<PhysicalPlan>,
    },
    /// Group by `group` columns and compute one aggregate; output is the
    /// group columns followed by the aggregate value.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping columns.
        group: Vec<usize>,
        /// Aggregate function.
        agg: AggFn,
    },
}

impl PhysicalPlan {
    /// Scan node.
    pub fn scan(relation: impl Into<String>) -> PhysicalPlan {
        PhysicalPlan::Scan {
            relation: relation.into(),
        }
    }

    /// Select node (no-op if `predicates` is empty).
    pub fn select(input: PhysicalPlan, predicates: Vec<Predicate>) -> PhysicalPlan {
        if predicates.is_empty() {
            input
        } else {
            PhysicalPlan::Select {
                input: Box::new(input),
                predicates,
            }
        }
    }

    /// Project node.
    pub fn project(input: PhysicalPlan, cols: Vec<usize>) -> PhysicalPlan {
        PhysicalPlan::Project {
            input: Box::new(input),
            cols,
        }
    }

    /// Hash-join node.
    pub fn hash_join(
        left: PhysicalPlan,
        right: PhysicalPlan,
        keys: Vec<(usize, usize)>,
    ) -> PhysicalPlan {
        PhysicalPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            keys,
        }
    }

    /// Antijoin node.
    pub fn anti_join(
        left: PhysicalPlan,
        right: PhysicalPlan,
        keys: Vec<(usize, usize)>,
    ) -> PhysicalPlan {
        PhysicalPlan::AntiJoin {
            left: Box::new(left),
            right: Box::new(right),
            keys,
        }
    }

    /// Union node.
    pub fn union(inputs: Vec<PhysicalPlan>) -> PhysicalPlan {
        PhysicalPlan::Union { inputs }
    }

    /// Aggregate node.
    pub fn aggregate(input: PhysicalPlan, group: Vec<usize>, agg: AggFn) -> PhysicalPlan {
        PhysicalPlan::Aggregate {
            input: Box::new(input),
            group,
            agg,
        }
    }

    /// Number of operator nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => input.node_count(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::AntiJoin { left, right, .. } => left.node_count() + right.node_count(),
            PhysicalPlan::Union { inputs } => inputs.iter().map(Self::node_count).sum(),
        }
    }

    /// Names of all base relations scanned by this plan.
    pub fn scanned_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PhysicalPlan::Scan { relation } => out.push(relation),
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => input.collect_scans(out),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::AntiJoin { left, right, .. } => {
                left.collect_scans(out);
                right.collect_scans(out);
            }
            PhysicalPlan::Union { inputs } => {
                for i in inputs {
                    i.collect_scans(out);
                }
            }
        }
    }

    /// Multi-line indented rendering (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::Scan { relation } => {
                let _ = writeln!(out, "{pad}Scan {relation}");
            }
            PhysicalPlan::Select { input, predicates } => {
                let preds: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                let _ = writeln!(out, "{pad}Select [{}]", preds.join(" AND "));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Project { input, cols } => {
                let _ = writeln!(out, "{pad}Project {cols:?}");
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashJoin { left, right, keys } => {
                let _ = writeln!(out, "{pad}HashJoin {keys:?}");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::AntiJoin { left, right, keys } => {
                let _ = writeln!(out, "{pad}AntiJoin {keys:?}");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::Union { inputs } => {
                let _ = writeln!(out, "{pad}Union");
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            PhysicalPlan::Aggregate { input, group, agg } => {
                let _ = writeln!(out, "{pad}Aggregate group={group:?} {}", agg.name());
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_select_elided() {
        let p = PhysicalPlan::select(PhysicalPlan::scan("r"), vec![]);
        assert_eq!(p, PhysicalPlan::scan("r"));
    }

    #[test]
    fn node_count_and_scans() {
        let p = PhysicalPlan::aggregate(
            PhysicalPlan::hash_join(
                PhysicalPlan::scan("a"),
                PhysicalPlan::scan("b"),
                vec![(0, 0)],
            ),
            vec![1],
            AggFn::Count,
        );
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.scanned_relations(), vec!["a", "b"]);
    }

    #[test]
    fn explain_is_indented() {
        let p = PhysicalPlan::project(PhysicalPlan::scan("r"), vec![0]);
        let e = p.explain();
        assert!(e.starts_with("Project"));
        assert!(e.contains("\n  Scan r"));
    }

    #[test]
    fn agg_fn_columns() {
        assert_eq!(AggFn::Count.input_column(), None);
        assert_eq!(AggFn::Sum(3).input_column(), Some(3));
        assert_eq!(AggFn::Max(1).name(), "MAX");
    }
}
