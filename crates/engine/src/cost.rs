//! The cost model.
//!
//! A plan's cost is the estimated **total number of tuples flowing
//! through it** — the `C_out` model: the sum of estimated output
//! cardinalities of every operator, plus the cardinality of every scan.
//! In a memory-resident mining engine the dominant expense is
//! materializing and hashing intermediate tuples, which `C_out` counts
//! directly; it is also the quantity the paper reasons with ("the
//! results of these joins will be smaller relations, thus making
//! subsequent join steps take less time", Ex. 4.1).

use qf_storage::Database;

use crate::error::Result;
use crate::estimate::{estimate_with, StatsSource};
use crate::plan::PhysicalPlan;

/// Estimated cost of `plan` (total tuples produced by all operators),
/// using exact base-relation statistics from `db`.
pub fn cost(plan: &PhysicalPlan, db: &Database) -> Result<f64> {
    cost_with(plan, db)
}

/// Estimated cost of `plan` against any statistics source (see
/// [`StatsSource`]; plan search supplies predicted statistics for
/// not-yet-materialized `FILTER`-step outputs).
pub fn cost_with(plan: &PhysicalPlan, src: &impl StatsSource) -> Result<f64> {
    let own = estimate_with(plan, src)?.rows;
    let children: f64 = match plan {
        PhysicalPlan::Scan { .. } => 0.0,
        PhysicalPlan::Select { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. } => cost_with(input, src)?,
        PhysicalPlan::HashJoin { left, right, .. } | PhysicalPlan::AntiJoin { left, right, .. } => {
            cost_with(left, src)? + cost_with(right, src)?
        }
        PhysicalPlan::Union { inputs } => {
            let mut c = 0.0;
            for i in inputs {
                c += cost_with(i, src)?;
            }
            c
        }
    };
    Ok(own + children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate};
    use qf_storage::{Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("r", &["a", "b"]),
            (0..100)
                .map(|i| vec![Value::int(i % 10), Value::int(i)])
                .collect(),
        ));
        db
    }

    #[test]
    fn scan_cost_is_cardinality() {
        assert!((cost(&PhysicalPlan::scan("r"), &db()).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_plans_cost_more() {
        let scan = PhysicalPlan::scan("r");
        let join = PhysicalPlan::hash_join(scan.clone(), scan.clone(), vec![(0, 0)]);
        let c_scan = cost(&scan, &db()).unwrap();
        let c_join = cost(&join, &db()).unwrap();
        assert!(c_join > c_scan);
        // 100 (scan) + 100 (scan) + 1000 (join output).
        assert!((c_join - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn early_selection_is_cheaper() {
        // Filter-then-join must cost less than join-then-filter: the
        // inequality the whole a-priori rewrite rests on.
        let sel =
            |p| PhysicalPlan::select(p, vec![Predicate::col_const(0, CmpOp::Eq, Value::int(1))]);
        let early = PhysicalPlan::hash_join(
            sel(PhysicalPlan::scan("r")),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        );
        let late = sel(PhysicalPlan::hash_join(
            PhysicalPlan::scan("r"),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        ));
        assert!(cost(&early, &db()).unwrap() < cost(&late, &db()).unwrap());
    }
}
