//! Cardinality and distinct-count estimation.
//!
//! The paper's static plan search needs "some estimate for the expected
//! sizes of relations and joins" (Ex. 4.1); this module supplies the
//! textbook estimator: exact base-relation statistics combined under the
//! classical uniformity and independence assumptions of \[G*79\]
//! (Selinger et al.).
//!
//! All estimates are `f64` — they feed a cost model, not an executor.

use qf_storage::{Database, StorageError};

use crate::error::Result;
use crate::expr::{CmpOp, Operand, Predicate};
use crate::plan::{AggFn, PhysicalPlan};

/// Default selectivity for inequality predicates (System R's classic
/// one-third guess).
pub const INEQUALITY_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated statistics for a plan node's output.
#[derive(Clone, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated number of tuples.
    pub rows: f64,
    /// Estimated distinct values per output column.
    pub distinct: Vec<f64>,
}

impl Estimate {
    /// Arity of the estimated output.
    pub fn arity(&self) -> usize {
        self.distinct.len()
    }

    /// Clamp distinct counts to the row estimate (a column cannot have
    /// more distinct values than the relation has rows).
    fn normalized(mut self) -> Estimate {
        for d in &mut self.distinct {
            *d = d
                .min(self.rows)
                .max(if self.rows > 0.0 { 1.0 } else { 0.0 });
        }
        self
    }

    /// Estimated tuples per distinct value of the given columns jointly
    /// (independence-capped) — the §4.4 decision quantity.
    pub fn tuples_per_group(&self, cols: &[usize]) -> f64 {
        let groups = self.group_count(cols);
        if groups <= 0.0 {
            0.0
        } else {
            self.rows / groups
        }
    }

    /// Estimated number of distinct groups over `cols` (product of
    /// per-column distincts, capped by rows).
    pub fn group_count(&self, cols: &[usize]) -> f64 {
        if self.rows <= 0.0 {
            return 0.0;
        }
        let product: f64 = cols.iter().map(|&c| self.distinct[c].max(1.0)).product();
        product.min(self.rows)
    }
}

/// Where base-relation statistics come from.
///
/// [`Database`] supplies exact statistics of materialized relations;
/// plan-search code supplies *predicted* statistics for relations that
/// do not exist yet (`FILTER`-step outputs), via [`MapStats`].
pub trait StatsSource {
    /// Estimated statistics of the named relation, if known.
    fn relation_estimate(&self, name: &str) -> Option<Estimate>;
}

impl StatsSource for Database {
    fn relation_estimate(&self, name: &str) -> Option<Estimate> {
        let r = self.get(name).ok()?;
        let stats = r.stats();
        Some(Estimate {
            rows: stats.cardinality as f64,
            distinct: (0..stats.arity())
                .map(|c| stats.column(c).distinct as f64)
                .collect(),
        })
    }
}

/// A stats source backed by a name → estimate map, optionally falling
/// back to a database for relations not in the map.
pub struct MapStats<'a> {
    /// Predicted estimates by relation name.
    pub map: std::collections::HashMap<String, Estimate>,
    /// Fallback source for everything else.
    pub fallback: Option<&'a Database>,
}

impl<'a> MapStats<'a> {
    /// Map-backed source with a database fallback.
    pub fn with_fallback(db: &'a Database) -> MapStats<'a> {
        MapStats {
            map: std::collections::HashMap::new(),
            fallback: Some(db),
        }
    }

    /// Record a predicted estimate for `name`.
    pub fn insert(&mut self, name: impl Into<String>, est: Estimate) {
        self.map.insert(name.into(), est);
    }
}

impl StatsSource for MapStats<'_> {
    fn relation_estimate(&self, name: &str) -> Option<Estimate> {
        self.map
            .get(name)
            .cloned()
            .or_else(|| self.fallback.and_then(|db| db.relation_estimate(name)))
    }
}

/// Estimate the output of `plan` against a database (exact base stats).
pub fn estimate(plan: &PhysicalPlan, db: &Database) -> Result<Estimate> {
    estimate_with(plan, db)
}

/// Estimate the output of `plan` against any statistics source.
pub fn estimate_with(plan: &PhysicalPlan, src: &impl StatsSource) -> Result<Estimate> {
    estimate_dyn(plan, src)
}

fn estimate_dyn(plan: &PhysicalPlan, src: &(impl StatsSource + ?Sized)) -> Result<Estimate> {
    let est = match plan {
        PhysicalPlan::Scan { relation } => src.relation_estimate(relation).ok_or_else(|| {
            crate::error::EngineError::Storage(StorageError::UnknownRelation {
                name: relation.clone(),
            })
        })?,

        PhysicalPlan::Select { input, predicates } => {
            let mut e = estimate_dyn(input, src)?;
            for p in predicates {
                let sel = predicate_selectivity(p, &e);
                e.rows *= sel;
                // An equality with a constant pins that column to one value.
                if let (Operand::Col(c), CmpOp::Eq, Operand::Const(_)) = (p.lhs, p.op, p.rhs) {
                    e.distinct[c] = 1.0;
                }
                if let (Operand::Const(_), CmpOp::Eq, Operand::Col(c)) = (p.lhs, p.op, p.rhs) {
                    e.distinct[c] = 1.0;
                }
            }
            e
        }

        PhysicalPlan::Project { input, cols } => {
            let e = estimate_dyn(input, src)?;
            let distinct: Vec<f64> = cols.iter().map(|&c| e.distinct[c]).collect();
            // Set semantics: output rows = number of distinct projected
            // tuples ≤ min(input rows, product of distincts).
            let rows = e.group_count(cols);
            Estimate { rows, distinct }
        }

        PhysicalPlan::HashJoin { left, right, keys } => {
            let l = estimate_dyn(left, src)?;
            let r = estimate_dyn(right, src)?;
            let mut rows = l.rows * r.rows;
            for &(lc, rc) in keys {
                let v = l.distinct[lc].max(r.distinct[rc]).max(1.0);
                rows /= v;
            }
            let mut distinct = Vec::with_capacity(l.arity() + r.arity());
            distinct.extend_from_slice(&l.distinct);
            distinct.extend_from_slice(&r.distinct);
            Estimate { rows, distinct }
        }

        PhysicalPlan::AntiJoin { left, right, keys } => {
            let l = estimate_dyn(left, src)?;
            let r = estimate_dyn(right, src)?;
            // Fraction of left key values with at least one right match
            // ≈ min(1, V(right)/V(left)) per key column (containment
            // assumption); survivors are the rest.
            let mut match_frac = 1.0;
            for &(lc, rc) in keys {
                let lv = l.distinct[lc].max(1.0);
                let rv = r.distinct[rc];
                match_frac *= (rv / lv).min(1.0);
            }
            if keys.is_empty() {
                // NOT EXISTS with no key: survivors only if right empty.
                match_frac = if r.rows > 0.0 { 1.0 } else { 0.0 };
            }
            Estimate {
                rows: l.rows * (1.0 - match_frac),
                distinct: l.distinct.clone(),
            }
        }

        PhysicalPlan::Union { inputs } => {
            let mut rows = 0.0;
            let mut distinct: Vec<f64> = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                let e = estimate_dyn(input, src)?;
                rows += e.rows;
                if i == 0 {
                    distinct = e.distinct;
                } else {
                    for (d, nd) in distinct.iter_mut().zip(e.distinct) {
                        // Distinct values across a union can reach the sum.
                        *d += nd;
                    }
                }
            }
            Estimate { rows, distinct }
        }

        PhysicalPlan::Aggregate { input, group, agg } => {
            let e = estimate_dyn(input, src)?;
            let rows = e
                .group_count(group)
                .max(if e.rows > 0.0 { 1.0 } else { 0.0 });
            let mut distinct: Vec<f64> = group.iter().map(|&c| e.distinct[c]).collect();
            // The aggregate column: up to one value per group.
            let agg_distinct = match agg {
                AggFn::Count | AggFn::Sum(_) => rows,
                AggFn::Min(c) | AggFn::Max(c) => e.distinct[*c].min(rows),
            };
            distinct.push(agg_distinct);
            Estimate { rows, distinct }
        }
    };
    Ok(est.normalized())
}

/// Selectivity of one predicate given input statistics.
fn predicate_selectivity(p: &Predicate, e: &Estimate) -> f64 {
    match (p.lhs, p.op, p.rhs) {
        // col = const: 1 / V(col).
        (Operand::Col(c), CmpOp::Eq, Operand::Const(_))
        | (Operand::Const(_), CmpOp::Eq, Operand::Col(c)) => 1.0 / e.distinct[c].max(1.0),
        // col != const.
        (Operand::Col(c), CmpOp::Ne, Operand::Const(_))
        | (Operand::Const(_), CmpOp::Ne, Operand::Col(c)) => 1.0 - 1.0 / e.distinct[c].max(1.0),
        // col = col: 1 / max(V, V).
        (Operand::Col(a), CmpOp::Eq, Operand::Col(b)) => {
            1.0 / e.distinct[a].max(e.distinct[b]).max(1.0)
        }
        (Operand::Col(a), CmpOp::Ne, Operand::Col(b)) => {
            1.0 - 1.0 / e.distinct[a].max(e.distinct[b]).max(1.0)
        }
        // Two constants: decidable now.
        (Operand::Const(a), op, Operand::Const(b)) => {
            if op.eval(a.cmp(&b)) {
                1.0
            } else {
                0.0
            }
        }
        // Col-col strict order over the same domain: (1 - 1/V)/2 ≈ 1/2;
        // use the classic 1/3 to stay conservative, like range guesses.
        _ => INEQUALITY_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::{Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        // 100 tuples, 10 distinct in col 0, 100 distinct in col 1.
        db.insert(Relation::from_rows(
            Schema::new("r", &["a", "b"]),
            (0..100)
                .map(|i| vec![Value::int(i % 10), Value::int(i)])
                .collect(),
        ));
        db
    }

    #[test]
    fn scan_is_exact() {
        let e = estimate(&PhysicalPlan::scan("r"), &db()).unwrap();
        assert_eq!(e.rows, 100.0);
        assert_eq!(e.distinct, vec![10.0, 100.0]);
    }

    #[test]
    fn equality_selectivity() {
        let p = PhysicalPlan::select(
            PhysicalPlan::scan("r"),
            vec![Predicate::col_const(0, CmpOp::Eq, Value::int(3))],
        );
        let e = estimate(&p, &db()).unwrap();
        assert!((e.rows - 10.0).abs() < 1e-9);
        assert_eq!(e.distinct[0], 1.0);
    }

    #[test]
    fn self_join_estimate() {
        let p = PhysicalPlan::hash_join(
            PhysicalPlan::scan("r"),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        );
        let e = estimate(&p, &db()).unwrap();
        // 100*100/10 = 1000 — and the true self-join on a 10-valued key
        // with 10 rows per value is exactly 10*10*10 = 1000.
        assert!((e.rows - 1000.0).abs() < 1e-9);
        assert_eq!(e.arity(), 4);
    }

    #[test]
    fn project_caps_by_distincts() {
        let p = PhysicalPlan::project(PhysicalPlan::scan("r"), vec![0]);
        let e = estimate(&p, &db()).unwrap();
        assert!((e.rows - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_groups() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("r"), vec![0], AggFn::Count);
        let e = estimate(&p, &db()).unwrap();
        assert!((e.rows - 10.0).abs() < 1e-9);
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn antijoin_full_containment_kills_everything() {
        let p = PhysicalPlan::anti_join(
            PhysicalPlan::scan("r"),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        );
        let e = estimate(&p, &db()).unwrap();
        assert!(e.rows.abs() < 1e-9);
    }

    #[test]
    fn union_sums() {
        let p = PhysicalPlan::union(vec![PhysicalPlan::scan("r"), PhysicalPlan::scan("r")]);
        let e = estimate(&p, &db()).unwrap();
        assert!((e.rows - 200.0).abs() < 1e-9);
    }

    #[test]
    fn tuples_per_group_matches_reality() {
        let e = estimate(&PhysicalPlan::scan("r"), &db()).unwrap();
        // 100 rows / 10 groups on column 0.
        assert!((e.tuples_per_group(&[0]) - 10.0).abs() < 1e-9);
        // Grouping by both columns: capped at rows → 1 per group.
        assert!((e.tuples_per_group(&[0, 1]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_caps_distincts() {
        // Selecting a rare constant leaves rows < distincts before
        // normalization; distinct must be clamped.
        let p = PhysicalPlan::select(
            PhysicalPlan::scan("r"),
            vec![Predicate::col_const(1, CmpOp::Eq, Value::int(5))],
        );
        let e = estimate(&p, &db()).unwrap();
        assert!(e.distinct[0] <= e.rows.max(1.0));
    }
}
