//! Scalar comparison predicates over tuples.
//!
//! The query-flock language allows "arithmetic subgoals, e.g. `X < Y`,
//! where `X` and `Y` are variables or parameters" (§2.3). Once a flock
//! is compiled, each arithmetic subgoal becomes a [`Predicate`]
//! comparing two tuple columns or a column with a constant.

pub use qf_storage::CmpOp;
use qf_storage::{Tuple, Value};

/// One side of a comparison: a tuple column or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Column index into the operator's input tuple.
    Col(usize),
    /// Literal value.
    Const(Value),
}

impl Operand {
    #[inline]
    fn resolve(self, t: &Tuple) -> Value {
        match self {
            Operand::Col(i) => t.get(i),
            Operand::Const(v) => v,
        }
    }

    /// The column index if this operand is a column.
    pub fn column(self) -> Option<usize> {
        match self {
            Operand::Col(i) => Some(i),
            Operand::Const(_) => None,
        }
    }
}

/// A comparison `lhs op rhs` evaluated against a tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// `column op constant` predicate.
    pub fn col_const(col: usize, op: CmpOp, v: Value) -> Predicate {
        Predicate {
            lhs: Operand::Col(col),
            op,
            rhs: Operand::Const(v),
        }
    }

    /// `column op column` predicate.
    pub fn col_col(a: usize, op: CmpOp, b: usize) -> Predicate {
        Predicate {
            lhs: Operand::Col(a),
            op,
            rhs: Operand::Col(b),
        }
    }

    /// Evaluate against a tuple.
    #[inline]
    pub fn eval(&self, t: &Tuple) -> bool {
        self.op.eval(self.lhs.resolve(t).cmp(&self.rhs.resolve(t)))
    }

    /// Largest column index referenced, if any (for validation).
    pub fn max_column(&self) -> Option<usize> {
        match (self.lhs.column(), self.rhs.column()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let side = |o: &Operand| match o {
            Operand::Col(i) => format!("#{i}"),
            Operand::Const(v) => v.to_string(),
        };
        write!(f, "{} {} {}", side(&self.lhs), self.op, side(&self.rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::int(a), Value::int(b)])
    }

    #[test]
    fn all_operators() {
        let row = t(1, 2);
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&row));
        assert!(Predicate::col_col(0, CmpOp::Le, 1).eval(&row));
        assert!(!Predicate::col_col(0, CmpOp::Eq, 1).eval(&row));
        assert!(Predicate::col_col(0, CmpOp::Ne, 1).eval(&row));
        assert!(!Predicate::col_col(0, CmpOp::Ge, 1).eval(&row));
        assert!(!Predicate::col_col(0, CmpOp::Gt, 1).eval(&row));
    }

    #[test]
    fn const_comparisons() {
        let row = t(5, 0);
        assert!(Predicate::col_const(0, CmpOp::Ge, Value::int(5)).eval(&row));
        assert!(!Predicate::col_const(0, CmpOp::Gt, Value::int(5)).eval(&row));
    }

    #[test]
    fn strings_compare_lexicographically() {
        let row = Tuple::from([Value::str("anchovy"), Value::str("beer")]);
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&row));
    }

    #[test]
    fn flipped_and_negated_are_consistent() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ] {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                let fwd = op.eval(a.cmp(&b));
                assert_eq!(fwd, op.flipped().eval(b.cmp(&a)), "flip {op} {a} {b}");
                assert_eq!(fwd, !op.negated().eval(a.cmp(&b)), "neg {op} {a} {b}");
            }
        }
    }

    #[test]
    fn max_column() {
        assert_eq!(Predicate::col_col(2, CmpOp::Eq, 5).max_column(), Some(5));
        assert_eq!(
            Predicate::col_const(3, CmpOp::Eq, Value::int(0)).max_column(),
            Some(3)
        );
    }
}
