//! Spill-capable operator execution.
//!
//! When an [`ExecContext`] carries a spill directory
//! ([`ExecContext::with_spill`]), [`crate::execute_with`] routes plans
//! through this module instead of the purely in-memory path: operators
//! that would trip the memory budget partition state to disk and
//! continue, recording a `spill` degradation plus bytes-spilled in
//! [`crate::ExecStats`], instead of failing with `ResourceExhausted`.
//!
//! Two disciplines keep results bitwise-identical to the in-memory path
//! under the engine's set semantics:
//!
//! * **Sorted, deduplicated runs.** Operator *outputs* flow through a
//!   [`SpillSink`]: tuples buffer in memory and, under pressure, flush
//!   as a sorted/deduplicated run file. Consumers k-way-merge all runs
//!   with cross-run deduplication, reconstructing exactly the canonical
//!   sorted set a [`Relation`] would hold. Without any flush the sink
//!   degenerates to the ordinary in-memory construction.
//! * **Grace partitioning.** Hash join and group-by over inputs too
//!   large to hold partition both sides / the input by a salted hash of
//!   the key columns into disk partitions, then process each partition
//!   in memory, recursing with a fresh salt on skewed partitions (depth
//!   capped — a partition of identical keys cannot be split further).
//!   Partition disjointness makes per-partition results independent, so
//!   the sink's global sort/dedup yields the same relation as one big
//!   in-memory pass.
//!
//! Memory accounting in this path tracks *residency*: an operator
//! releases its input's live bytes once the input is fully consumed
//! ([`OpOut::into_each`]), and a sink flush releases the buffered
//! bytes it wrote to disk. Base-relation scans stay charged — spilling
//! bounds derived intermediate state, not the resident catalog, and the
//! final materialized result must still fit the budget.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use qf_storage::{
    Database, FastHasher, FastMap, HashIndex, Relation, Schema, SpillDir, SpillFile, SpillReader,
    SpillWriter, Tuple, Value,
};

use crate::error::{EngineError, Result};
use crate::exec;
use crate::governor::{row_cost, ExecContext};
use crate::plan::{AggFn, PhysicalPlan};

/// Fan-out of one Grace partitioning pass.
const N_PARTS: usize = 8;

/// Transient I/O errors absorbed per spill-file write before giving up
/// (whole-file granularity: a partially written run is discarded and
/// rewritten from the still-buffered tuples).
const MAX_IO_RETRIES: u32 = 3;

/// Exponential-ish backoff before transient-error retry `attempt`
/// (1-based).
fn retry_backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
}

/// Maximum recursive repartitioning depth. A partition that stays too
/// big at this depth (all-identical keys) is processed in memory and
/// may honestly trip the budget.
const MAX_DEPTH: u64 = 3;

/// An operator's output: either an ordinary in-memory relation or a set
/// of sorted/deduplicated spill runs whose merge is the relation.
pub(crate) enum OpOut {
    Mem(Relation),
    Spilled(SpilledRel),
}

pub(crate) struct SpilledRel {
    schema: Schema,
    runs: Vec<SpillFile>,
    /// Upper bound on distinct tuples (cross-run duplicates inflate it).
    rows: u64,
    dir: Arc<SpillDir>,
}

impl Drop for SpilledRel {
    /// Run files are single-consumption: whether the merge completed or
    /// the pipeline aborted mid-way, they are dead once the value drops.
    /// Removing them here (best effort) is what keeps the spill dir
    /// empty after a run — the leak check in `ExecStats` counts on it.
    fn drop(&mut self) {
        for run in &self.runs {
            let _ = self.dir.remove(&run.path);
        }
    }
}

impl OpOut {
    fn schema(&self) -> &Schema {
        match self {
            OpOut::Mem(r) => r.schema(),
            OpOut::Spilled(s) => &s.schema,
        }
    }

    fn arity(&self) -> usize {
        self.schema().arity()
    }

    /// Upper bound on the number of tuples.
    fn rows_hint(&self) -> u64 {
        match self {
            OpOut::Mem(r) => r.len() as u64,
            OpOut::Spilled(s) => s.rows,
        }
    }

    /// Stream every tuple in canonical (sorted, deduplicated) order,
    /// then release the input's live bytes — this consumes the value.
    fn into_each(self, ctx: &ExecContext, f: &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()> {
        match self {
            OpOut::Mem(r) => {
                for t in r.iter() {
                    ctx.tick()?;
                    f(t.clone())?;
                }
                release_rel(ctx, &r);
                Ok(())
            }
            OpOut::Spilled(s) => s.for_each_merged(ctx, f),
        }
    }

    /// Materialize into a `Relation`, charging merged spill rows as they
    /// land (an in-memory output is already charged).
    pub(crate) fn materialize(self, ctx: &ExecContext) -> Result<Relation> {
        match self {
            OpOut::Mem(r) => Ok(r),
            OpOut::Spilled(s) => {
                let width = s.schema.arity();
                let mut out: Vec<Tuple> = Vec::new();
                let schema = s.schema.clone();
                s.for_each_merged(ctx, &mut |t| {
                    ctx.charge_row(width)?;
                    out.push(t);
                    Ok(())
                })?;
                // The merged stream is strictly increasing (cross-run
                // dedup), so the no-sort constructor applies.
                Ok(Relation::from_sorted_dedup(schema, out))
            }
        }
    }
}

impl SpilledRel {
    /// K-way merge over all runs with cross-run deduplication: each run
    /// is sorted and deduplicated, so a heap of per-run cursors yields a
    /// globally sorted stream in which duplicates are adjacent.
    fn for_each_merged(
        &self,
        ctx: &ExecContext,
        f: &mut dyn FnMut(Tuple) -> Result<()>,
    ) -> Result<()> {
        let mut readers: Vec<SpillReader> = Vec::with_capacity(self.runs.len());
        let mut heap: BinaryHeap<Reverse<(Tuple, usize)>> = BinaryHeap::new();
        for (i, run) in self.runs.iter().enumerate() {
            let mut r = self.dir.reader(&run.path)?;
            if let Some(t) = r.next_tuple()? {
                heap.push(Reverse((t, i)));
            }
            readers.push(r);
        }
        let mut last: Option<Tuple> = None;
        while let Some(Reverse((t, i))) = heap.pop() {
            ctx.tick()?;
            if let Some(next) = readers[i].next_tuple()? {
                heap.push(Reverse((next, i)));
            }
            if last.as_ref() != Some(&t) {
                f(t.clone())?;
                last = Some(t);
            }
        }
        Ok(())
    }
}

/// Release the live bytes of a fully consumed in-memory relation.
fn release_rel(ctx: &ExecContext, rel: &Relation) {
    ctx.release_bytes(rel.len() as u64 * row_cost(rel.schema().arity()));
}

/// Buffered operator-output collector that flushes sorted/deduplicated
/// runs to disk when the next charge would trip the memory budget.
struct SpillSink<'a> {
    ctx: &'a ExecContext,
    op: &'static str,
    schema: Schema,
    width: usize,
    buf: Vec<Tuple>,
    buf_bytes: u64,
    runs: Vec<SpillFile>,
    spilled_rows: u64,
}

impl<'a> SpillSink<'a> {
    fn new(ctx: &'a ExecContext, op: &'static str, schema: Schema) -> SpillSink<'a> {
        let width = schema.arity();
        SpillSink {
            ctx,
            op,
            schema,
            width,
            buf: Vec::new(),
            buf_bytes: 0,
            runs: Vec::new(),
            spilled_rows: 0,
        }
    }

    fn push(&mut self, t: Tuple) -> Result<()> {
        let cost = row_cost(self.width);
        if !self.buf.is_empty() && self.ctx.mem_would_trip(cost) {
            self.flush()?;
        }
        // If this still trips after a flush, other live state owns the
        // budget; the error is honest.
        self.ctx.charge_row(self.width)?;
        self.buf_bytes += cost;
        self.buf.push(t);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let dir = self
            .ctx
            .spill_dir()
            .expect("SpillSink::flush without a spill directory")
            .clone();
        self.buf.sort_unstable();
        self.buf.dedup();
        // Whole-file retry: the tuples are still buffered, so a failed
        // write costs nothing but the discarded partial file. Transient
        // errors get bounded retries with backoff; ENOSPC degrades to
        // memory-only (below); anything else is a hard, typed error.
        let mut attempt = 0u32;
        let file = loop {
            let path = dir.alloc(self.op);
            match write_run(&dir, path.clone(), self.width, &self.buf) {
                Ok(file) => break file,
                Err(e) => {
                    let _ = dir.remove(&path);
                    if e.is_transient() && attempt < MAX_IO_RETRIES {
                        attempt += 1;
                        self.ctx.note_io_retry();
                        retry_backoff(attempt);
                    } else if e.is_disk_full() {
                        return self.absorb_enospc(&dir);
                    } else {
                        return Err(e.into());
                    }
                }
            }
        };
        if self.runs.is_empty() {
            self.ctx.record_degradation(
                "spill",
                format!("{}: spilled to disk under memory pressure", self.op),
            );
        }
        self.ctx.note_spill(file.bytes);
        self.ctx.release_bytes(self.buf_bytes);
        self.spilled_rows += file.rows;
        self.buf.clear();
        self.buf_bytes = 0;
        self.runs.push(file);
        Ok(())
    }

    /// ENOSPC policy: the disk is full, so spilling can no longer buy
    /// headroom. Reabsorb the completed runs (freeing their disk space
    /// for anyone else on the volume), waive the memory budget, record
    /// the degradation, and continue purely in memory. The run still
    /// terminates with a correct answer — just without its memory
    /// ceiling — instead of aborting.
    fn absorb_enospc(&mut self, dir: &Arc<SpillDir>) -> Result<()> {
        self.ctx.waive_mem_budget();
        self.ctx.record_degradation(
            "spill-enospc",
            format!(
                "{}: disk full while spilling; reabsorbed {} completed run(s) and continuing \
                 in memory with the budget waived",
                self.op,
                self.runs.len()
            ),
        );
        for run in std::mem::take(&mut self.runs) {
            let mut r = dir.reader(&run.path)?;
            while let Some(t) = r.next_tuple()? {
                // Waived budget: only the row cap or deadline can trip.
                self.ctx.charge_row(self.width)?;
                self.buf_bytes += row_cost(self.width);
                self.buf.push(t);
            }
            drop(r);
            dir.remove(&run.path)?;
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        self.spilled_rows = 0;
        Ok(())
    }

    fn finish(mut self) -> Result<OpOut> {
        if self.runs.is_empty() {
            return Ok(OpOut::Mem(Relation::from_tuples(
                self.schema.clone(),
                std::mem::take(&mut self.buf),
            )));
        }
        self.flush()?;
        let dir = self
            .ctx
            .spill_dir()
            .expect("spilled sink without a spill directory")
            .clone();
        // `flush` may have hit ENOSPC and reabsorbed everything.
        if self.runs.is_empty() {
            return Ok(OpOut::Mem(Relation::from_tuples(
                self.schema.clone(),
                std::mem::take(&mut self.buf),
            )));
        }
        Ok(OpOut::Spilled(SpilledRel {
            schema: self.schema.clone(),
            runs: std::mem::take(&mut self.runs),
            rows: self.spilled_rows,
            dir,
        }))
    }
}

/// Write one sorted/deduplicated run through the directory's vfs.
fn write_run(
    dir: &SpillDir,
    path: std::path::PathBuf,
    width: usize,
    tuples: &[Tuple],
) -> qf_storage::Result<SpillFile> {
    let mut w = SpillWriter::create_on(&**dir.vfs(), path, width)?;
    for t in tuples {
        w.write_tuple(t)?;
    }
    w.finish()
}

/// Evaluate `plan` with spilling enabled. Within an operator this path
/// is sequential — the spill machinery trades parallel probes for
/// bounded memory; plan-level parallelism (independent FILTER steps)
/// is unaffected.
pub(crate) fn execute_spill(
    plan: &PhysicalPlan,
    db: &Database,
    ctx: &ExecContext,
) -> Result<OpOut> {
    match plan {
        PhysicalPlan::Scan { relation } => {
            ctx.enter("Scan")?;
            let rel = db.get(relation)?;
            ctx.charge_rows(rel.len() as u64, rel.schema().arity())?;
            Ok(OpOut::Mem(rel.clone()))
        }

        PhysicalPlan::Select { input, predicates } => {
            ctx.enter("Select")?;
            let child = execute_spill(input, db, ctx)?;
            exec::check_predicates(predicates, child.arity(), "Select")?;
            let mut sink = SpillSink::new(ctx, "select", child.schema().clone());
            child.into_each(ctx, &mut |t| {
                if predicates.iter().all(|p| p.eval(&t)) {
                    sink.push(t)?;
                }
                Ok(())
            })?;
            sink.finish()
        }

        PhysicalPlan::Project { input, cols } => {
            ctx.enter("Project")?;
            let child = execute_spill(input, db, ctx)?;
            exec::check_columns(cols, child.arity(), "Project")?;
            let names: Vec<String> = cols
                .iter()
                .map(|&c| child.schema().columns()[c].clone())
                .collect();
            let schema = Schema::from_columns("project", names);
            let mut sink = SpillSink::new(ctx, "project", schema);
            let cols = cols.clone();
            child.into_each(ctx, &mut |t| sink.push(t.project(&cols)))?;
            sink.finish()
        }

        PhysicalPlan::HashJoin { left, right, keys } => {
            ctx.enter("HashJoin")?;
            let l = execute_spill(left, db, ctx)?;
            let r = execute_spill(right, db, ctx)?;
            exec::check_join_keys(keys, l.arity(), r.arity(), "HashJoin")?;
            join_spill(l, r, keys, ctx)
        }

        PhysicalPlan::AntiJoin { left, right, keys } => {
            ctx.enter("AntiJoin")?;
            let l = execute_spill(left, db, ctx)?;
            let r = execute_spill(right, db, ctx)?;
            exec::check_join_keys(keys, l.arity(), r.arity(), "AntiJoin")?;
            let (lk, rk): (Vec<usize>, Vec<usize>) = keys.iter().copied().unzip();
            // The right side is the filter; it is typically the small
            // side in mining plans, so materialize it for the index.
            let filter = r.materialize(ctx)?;
            let idx = HashIndex::build(&filter, &rk);
            let mut sink = SpillSink::new(ctx, "antijoin", l.schema().clone());
            l.into_each(ctx, &mut |t| {
                if !idx.contains_key(&t.project(&lk)) {
                    sink.push(t)?;
                }
                Ok(())
            })?;
            drop(idx);
            release_rel(ctx, &filter);
            sink.finish()
        }

        PhysicalPlan::Union { inputs } => {
            ctx.enter("Union")?;
            if inputs.is_empty() {
                return Ok(OpOut::Mem(Relation::empty(Schema::new("union", &[]))));
            }
            let first = execute_spill(&inputs[0], db, ctx)?;
            let arity = first.arity();
            let schema = first.schema().renamed("union");
            let mut sink = SpillSink::new(ctx, "union", schema);
            first.into_each(ctx, &mut |t| sink.push(t))?;
            for input in &inputs[1..] {
                let child = execute_spill(input, db, ctx)?;
                if child.arity() != arity {
                    return Err(EngineError::UnionArityMismatch {
                        first: arity,
                        other: child.arity(),
                    });
                }
                child.into_each(ctx, &mut |t| sink.push(t))?;
            }
            sink.finish()
        }

        PhysicalPlan::Aggregate { input, group, agg } => {
            ctx.enter("Aggregate")?;
            let child = execute_spill(input, db, ctx)?;
            let arity = child.arity();
            exec::check_columns(group, arity, "Aggregate")?;
            if let Some(c) = agg.input_column() {
                exec::check_columns(&[c], arity, "Aggregate")?;
            }
            aggregate_spill(child, group, *agg, ctx)
        }
    }
}

/// Spill-capable hash join. In-memory inputs that fit get a plain
/// smaller-side-build hash join (output still sink-buffered, so a huge
/// *output* spills); any spilled input triggers Grace partitioning.
fn join_spill(l: OpOut, r: OpOut, keys: &[(usize, usize)], ctx: &ExecContext) -> Result<OpOut> {
    let (lk, rk): (Vec<usize>, Vec<usize>) = keys.iter().copied().unzip();
    let mut names: Vec<String> = l.schema().columns().to_vec();
    names.extend(r.schema().columns().iter().cloned());
    let out_schema = Schema::from_columns("join", names);
    let mut sink = SpillSink::new(ctx, "join", out_schema);

    match (l, r) {
        (OpOut::Mem(lrel), OpOut::Mem(rrel)) => {
            join_mem_into(&lrel, &rrel, &lk, &rk, ctx, &mut sink)?;
            release_rel(ctx, &lrel);
            release_rel(ctx, &rrel);
        }
        (l, r) => {
            if keys.is_empty() {
                // Cross product: partitioning by an empty key cannot
                // split anything; materialize the smaller side.
                let (small, big, small_is_left) = if l.rows_hint() <= r.rows_hint() {
                    (l, r, true)
                } else {
                    (r, l, false)
                };
                let srel = small.materialize(ctx)?;
                big.into_each(ctx, &mut |t| {
                    for st in srel.iter() {
                        sink.push(if small_is_left {
                            st.concat(&t)
                        } else {
                            t.concat(st)
                        })?;
                    }
                    Ok(())
                })?;
                release_rel(ctx, &srel);
            } else {
                let dir_owned = ctx
                    .spill_dir()
                    .expect("grace join without spill dir")
                    .clone();
                let lp = partition_out(ctx, &dir_owned, "jpart-l", &lk, 0, l)?;
                let rp = partition_out(ctx, &dir_owned, "jpart-r", &rk, 0, r)?;
                for (lpart, rpart) in lp.into_iter().zip(rp) {
                    join_parts(lpart, rpart, &lk, &rk, ctx, &mut sink, 1)?;
                }
            }
        }
    }
    sink.finish()
}

/// Plain hash join of two resident relations, output through `sink`.
fn join_mem_into(
    l: &Relation,
    r: &Relation,
    lk: &[usize],
    rk: &[usize],
    ctx: &ExecContext,
    sink: &mut SpillSink<'_>,
) -> Result<()> {
    let build_left = l.len() < r.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (l, r, lk, rk)
    } else {
        (r, l, rk, lk)
    };
    let idx = HashIndex::build(build, build_keys);
    for t in probe.iter() {
        ctx.tick()?;
        for &row in idx.probe(&t.project(probe_keys)) {
            let bt = &build.tuples()[row as usize];
            sink.push(if build_left {
                bt.concat(t)
            } else {
                t.concat(bt)
            })?;
        }
    }
    Ok(())
}

/// One disk partition produced by Grace partitioning: a raw (unsorted)
/// tuple file private to the operator that wrote it. The file is
/// removed when the partition drops — consumed or abandoned alike — so
/// Grace recursion never accumulates dead partition files.
struct Part {
    file: SpillFile,
    arity: usize,
    dir: Arc<SpillDir>,
}

impl Part {
    fn rows(&self) -> u64 {
        self.file.rows
    }

    fn for_each(&self, ctx: &ExecContext, f: &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()> {
        let mut r = self.dir.reader(&self.file.path)?;
        while let Some(t) = r.next_tuple()? {
            ctx.tick()?;
            f(t)?;
        }
        Ok(())
    }
}

impl Drop for Part {
    fn drop(&mut self) {
        let _ = self.dir.remove(&self.file.path);
    }
}

fn part_of(t: &Tuple, keys: &[usize], salt: u64, n_parts: usize) -> usize {
    let mut h = FastHasher::default();
    salt.hash(&mut h);
    for &k in keys {
        t.get(k).hash(&mut h);
    }
    // Partition by the HIGH bits: the Fx multiply only mixes upward, so
    // the low bits of `finish()` are a salt-*permuted* function of the
    // key's low bits alone — `finish() % n_parts` would glue every key
    // sharing `v mod n_parts` into one partition at every salt,
    // defeating recursive repartitioning entirely.
    ((h.finish() >> 32) % n_parts as u64) as usize
}

/// A per-tuple consumer handed to a [`partition_stream`] source.
type TupleEmit<'a> = &'a mut dyn FnMut(Tuple) -> Result<()>;

/// Route a tuple stream into [`N_PARTS`] disk partitions by a salted
/// hash of `keys`. Every partition file is counted as spilled bytes.
fn partition_stream(
    ctx: &ExecContext,
    dir: &Arc<SpillDir>,
    tag: &str,
    arity: usize,
    keys: &[usize],
    salt: u64,
    source: &mut dyn FnMut(TupleEmit) -> Result<()>,
) -> Result<Vec<Part>> {
    // Writer *creation* precedes any consumption of the source, so
    // transient errors here are safely retryable. Once the source
    // starts streaming it can only be consumed once — a mid-stream
    // failure propagates typed (the plan-level corruption/recompute
    // loop in `execute_with` is the recovery of last resort).
    let mut writers: Vec<SpillWriter> = Vec::with_capacity(N_PARTS);
    for _ in 0..N_PARTS {
        let mut attempt = 0u32;
        let w = loop {
            match dir.writer(tag, arity) {
                Ok(w) => break w,
                Err(e) if e.is_transient() && attempt < MAX_IO_RETRIES => {
                    attempt += 1;
                    ctx.note_io_retry();
                    retry_backoff(attempt);
                }
                Err(e) => return Err(e.into()),
            }
        };
        writers.push(w);
    }
    let mut failed: Option<EngineError> = source(&mut |t| {
        writers[part_of(&t, keys, salt, N_PARTS)].write_tuple(&t)?;
        Ok(())
    })
    .err();
    let mut parts = Vec::with_capacity(N_PARTS);
    for w in writers {
        if failed.is_some() {
            // Abandon (and remove) partial partition files so a
            // recompute starts from a clean directory.
            let path = w.path().to_path_buf();
            drop(w);
            let _ = dir.remove(&path);
            continue;
        }
        match w.finish() {
            Ok(file) => {
                ctx.note_spill(file.bytes);
                parts.push(Part {
                    file,
                    arity,
                    dir: Arc::clone(dir),
                });
            }
            Err(e) => failed = Some(e.into()),
        }
    }
    match failed {
        // Dropping `parts` here removes any already-finished files.
        Some(e) => Err(e),
        None => Ok(parts),
    }
}

/// Partition an operator output (consuming it, releasing its memory).
fn partition_out(
    ctx: &ExecContext,
    dir: &Arc<SpillDir>,
    tag: &str,
    keys: &[usize],
    salt: u64,
    out: OpOut,
) -> Result<Vec<Part>> {
    let arity = out.arity();
    let mut out = Some(out);
    partition_stream(ctx, dir, tag, arity, keys, salt, &mut |emit| {
        out.take()
            .expect("partition source consumed twice")
            .into_each(ctx, emit)
    })
}

/// Repartition one skewed partition with a fresh salt.
fn repartition(
    ctx: &ExecContext,
    dir: &Arc<SpillDir>,
    tag: &str,
    keys: &[usize],
    salt: u64,
    arity: usize,
    part: &Part,
) -> Result<Vec<Part>> {
    partition_stream(ctx, dir, tag, arity, keys, salt, &mut |emit| {
        part.for_each(ctx, emit)
    })
}

/// Join one pair of matching partitions: build the smaller side in
/// memory (charged, then released), stream the other. Recurses with a
/// fresh salt while the build side would trip the budget.
fn join_parts(
    lpart: Part,
    rpart: Part,
    lk: &[usize],
    rk: &[usize],
    ctx: &ExecContext,
    sink: &mut SpillSink<'_>,
    depth: u64,
) -> Result<()> {
    if lpart.rows() == 0 || rpart.rows() == 0 {
        return Ok(());
    }
    let build_left = lpart.rows() <= rpart.rows();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (&lpart, &rpart, lk, rk)
    } else {
        (&rpart, &lpart, rk, lk)
    };
    let build_arity = build.arity;
    let build_bytes = build.rows() * row_cost(build_arity);
    if ctx.mem_would_trip(build_bytes) {
        // Free the output sink's buffer first — the build side deserves
        // the headroom, and the flush may make recursion unnecessary.
        sink.flush()?;
    }
    if depth < MAX_DEPTH && ctx.mem_would_trip(build_bytes) {
        let dir = ctx
            .spill_dir()
            .expect("grace join without spill dir")
            .clone();
        let lps = repartition(ctx, &dir, "jpart-l", lk, depth, lpart.arity, &lpart)?;
        let rps = repartition(ctx, &dir, "jpart-r", rk, depth, rpart.arity, &rpart)?;
        for (lp, rp) in lps.into_iter().zip(rps) {
            join_parts(lp, rp, lk, rk, ctx, sink, depth + 1)?;
        }
        return Ok(());
    }
    // Load the build partition (charged as live memory for its
    // duration), index it by key, stream the probe partition.
    ctx.charge_rows(build.rows(), build_arity)?;
    let mut build_rows: Vec<Tuple> = Vec::with_capacity(build.rows() as usize);
    build.for_each(ctx, &mut |t| {
        build_rows.push(t);
        Ok(())
    })?;
    let mut index: FastMap<Tuple, Vec<u32>> = FastMap::default();
    for (i, t) in build_rows.iter().enumerate() {
        index
            .entry(t.project(build_keys))
            .or_default()
            .push(i as u32);
    }
    probe.for_each(ctx, &mut |t| {
        if let Some(rows) = index.get(&t.project(probe_keys)) {
            for &row in rows {
                let bt = &build_rows[row as usize];
                sink.push(if build_left {
                    bt.concat(&t)
                } else {
                    t.concat(bt)
                })?;
            }
        }
        Ok(())
    })?;
    drop(index);
    drop(build_rows);
    ctx.release_bytes(build_bytes);
    Ok(())
}

/// Spill-capable grouped aggregation.
fn aggregate_spill(child: OpOut, group: &[usize], agg: AggFn, ctx: &ExecContext) -> Result<OpOut> {
    let mut names: Vec<String> = group
        .iter()
        .map(|&c| child.schema().columns()[c].clone())
        .collect();
    names.push(agg.name().to_lowercase());
    let out_schema = Schema::from_columns("aggregate", names);
    let width = group.len() + 1;

    // Global aggregate (empty group list): one accumulator, O(1) memory
    // regardless of input size — stream and fold. Empty-input identity
    // semantics match the in-memory path.
    if group.is_empty() {
        let mut acc: Option<exec::Acc> = None;
        child.into_each(ctx, &mut |t| {
            acc.get_or_insert_with(|| exec::Acc::new(agg))
                .update(&t, agg)
        })?;
        return match (acc, agg) {
            (Some(a), _) => {
                ctx.charge_row(width)?;
                Ok(OpOut::Mem(Relation::from_tuples(
                    out_schema,
                    vec![Tuple::from([a.finish()?])],
                )))
            }
            (None, AggFn::Count | AggFn::Sum(_)) => {
                ctx.charge_row(width)?;
                Ok(OpOut::Mem(Relation::from_tuples(
                    out_schema,
                    vec![Tuple::from([Value::int(0)])],
                )))
            }
            (None, AggFn::Min(_) | AggFn::Max(_)) => Ok(OpOut::Mem(Relation::empty(out_schema))),
        };
    }

    let fits = !matches!(&child, OpOut::Spilled(_))
        && !ctx.mem_would_trip(child.rows_hint() * row_cost(width));
    if fits {
        // Small enough: the existing parallel in-memory aggregation.
        if let OpOut::Mem(rel) = child {
            let out = exec::aggregate(&rel, group, agg, ctx)?;
            release_rel(ctx, &rel);
            return Ok(OpOut::Mem(out));
        }
        unreachable!("fits implies Mem");
    }

    // Grace aggregation: partition the input by a salted hash of the
    // group columns; group keys never straddle partitions, so each
    // partition aggregates independently.
    let dir = ctx
        .spill_dir()
        .expect("grace aggregate without spill dir")
        .clone();
    let in_arity = child.arity();
    let mut sink = SpillSink::new(ctx, "aggregate", out_schema);
    let parts = partition_out(ctx, &dir, "apart", group, 0, child)?;
    for part in parts {
        aggregate_part(&part, in_arity, group, agg, ctx, &mut sink, 1)?;
    }
    sink.finish()
}

/// Aggregate one partition in memory, repartitioning first (fresh salt)
/// while its worst-case accumulator map would trip the budget.
fn aggregate_part(
    part: &Part,
    in_arity: usize,
    group: &[usize],
    agg: AggFn,
    ctx: &ExecContext,
    sink: &mut SpillSink<'_>,
    depth: u64,
) -> Result<()> {
    if part.rows() == 0 {
        return Ok(());
    }
    let width = group.len() + 1;
    // Worst case every input row is its own group.
    let map_bytes = part.rows() * row_cost(width);
    if ctx.mem_would_trip(map_bytes) {
        sink.flush()?;
    }
    if depth < MAX_DEPTH && ctx.mem_would_trip(map_bytes) {
        let dir = ctx
            .spill_dir()
            .expect("grace aggregate without spill dir")
            .clone();
        let subparts = partition_stream(ctx, &dir, "apart", in_arity, group, depth, &mut |emit| {
            part.for_each(ctx, emit)
        })?;
        for sp in subparts {
            aggregate_part(&sp, in_arity, group, agg, ctx, sink, depth + 1)?;
        }
        return Ok(());
    }
    ctx.charge_rows(part.rows(), width)?;
    let mut groups: FastMap<Tuple, exec::Acc> = FastMap::default();
    part.for_each(ctx, &mut |t| {
        let key = t.project(group);
        groups
            .entry(key)
            .or_insert_with(|| exec::Acc::new(agg))
            .update(&t, agg)
    })?;
    for (key, acc) in groups {
        let mut v = key.values().to_vec();
        v.push(acc.finish()?);
        sink.push(Tuple::from(v))?;
    }
    ctx.release_bytes(map_bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_with};
    use crate::expr::{CmpOp, Predicate};
    use std::sync::Arc;

    fn big_db(n: i64) -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("edges", &["src", "dst"]),
            (0..n)
                .map(|i| vec![Value::int(i % 37), Value::int(i % 53)])
                .collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("labels", &["node", "tag"]),
            (0..n / 2)
                .map(|i| vec![Value::int(i % 53), Value::str(&format!("t{}", i % 11))])
                .collect(),
        ));
        db
    }

    fn spill_ctx(budget: u64, threads: usize) -> ExecContext {
        ExecContext::unbounded()
            .with_mem_budget(budget)
            .with_threads(threads)
            .with_spill(Arc::new(qf_storage::SpillDir::create_temp().unwrap()))
    }

    /// A join+select+aggregate plan with an output much larger than the
    /// base relations.
    fn explosive_plan() -> PhysicalPlan {
        PhysicalPlan::aggregate(
            PhysicalPlan::select(
                PhysicalPlan::hash_join(
                    PhysicalPlan::scan("edges"),
                    PhysicalPlan::scan("labels"),
                    vec![(1, 0)],
                ),
                vec![Predicate::col_col(0, CmpOp::Lt, 2)],
            ),
            vec![3],
            AggFn::Count,
        )
    }

    #[test]
    fn spilled_run_matches_in_memory() {
        let db = big_db(4000);
        let expected = execute(&explosive_plan(), &db).unwrap();
        for threads in [1usize, 4] {
            // Budget above the scans (~4000+2000 rows * 48B ≈ 290 KB)
            // but far below the join output.
            let ctx = spill_ctx(400 << 10, threads);
            let got = execute_with(&explosive_plan(), &db, &ctx).unwrap();
            assert_eq!(got.tuples(), expected.tuples(), "threads={threads}");
            assert_eq!(got.schema().columns(), expected.schema().columns());
            let stats = ctx.stats();
            assert!(stats.spilled_bytes > 0, "expected spilling: {stats:?}");
            assert!(
                stats.degradations.iter().any(|d| d.stage == "spill"),
                "{stats:?}"
            );
            // Leak check: every run file was consumed and removed.
            assert_eq!(stats.spill_files_live, 0, "leaked spill files: {stats:?}");
        }
    }

    #[test]
    fn ungoverned_budget_would_have_tripped() {
        // Sanity for the acceptance criterion: the same budget without
        // a spill dir aborts with ResourceExhausted(Memory).
        let db = big_db(4000);
        let ctx = ExecContext::unbounded().with_mem_budget(400 << 10);
        let err = execute_with(&explosive_plan(), &db, &ctx).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ResourceExhausted {
                resource: crate::Resource::Memory,
                ..
            }
        ));
    }

    #[test]
    fn grace_join_recurses_on_skewed_partitions() {
        // Both join inputs are cross-join outputs too big for the
        // budget (so they arrive spilled), and every first-level hash
        // partition of the 40-key join column still exceeds the budget
        // — forcing the salted recursive repartition before any
        // partition fits.
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("a", &["k", "v"]),
            (0..40)
                .map(|i| vec![Value::int(i), Value::int(i + 100)])
                .collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("b", &["k", "w"]),
            (0..40)
                .map(|i| vec![Value::int(i), Value::int(i + 200)])
                .collect(),
        ));
        let cross = |name: &str| {
            PhysicalPlan::hash_join(PhysicalPlan::scan(name), PhysicalPlan::scan(name), vec![])
        };
        let plan = PhysicalPlan::aggregate(
            PhysicalPlan::hash_join(cross("a"), cross("b"), vec![(0, 0)]),
            vec![],
            AggFn::Count,
        );
        let expected = execute(&plan, &db).unwrap();
        let ctx = spill_ctx(12 << 10, 1);
        let got = execute_with(&plan, &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        // 40 keys × 40 left × 40 right pairings.
        assert_eq!(got.tuples()[0].get(0), Value::int(40 * 40 * 40));
        assert!(ctx.stats().spilled_bytes > 0);
    }

    #[test]
    fn spilled_union_and_project_dedup_across_runs() {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("a", &["x", "y"]),
            (0..3000)
                .map(|i| vec![Value::int(i), Value::int(i % 7)])
                .collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("b", &["x", "y"]),
            (1500..4500)
                .map(|i| vec![Value::int(i), Value::int(i % 7)])
                .collect(),
        ));
        // Union overlaps; projection collapses to 7 values. Duplicates
        // appear across spill runs and must dedup at the merge.
        let plan = PhysicalPlan::project(
            PhysicalPlan::union(vec![PhysicalPlan::scan("a"), PhysicalPlan::scan("b")]),
            vec![1],
        );
        let expected = execute(&plan, &db).unwrap();
        let ctx = spill_ctx(150 << 10, 2);
        let got = execute_with(&plan, &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn spill_mode_without_pressure_is_identical() {
        // A spill dir with a huge budget (or none) must not change
        // results or spill anything.
        let db = big_db(1000);
        let expected = execute(&explosive_plan(), &db).unwrap();
        let ctx = ExecContext::unbounded()
            .with_spill(Arc::new(qf_storage::SpillDir::create_temp().unwrap()));
        let got = execute_with(&explosive_plan(), &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        assert_eq!(ctx.stats().spilled_bytes, 0);
        assert_eq!(ctx.stats().spills, 0);
    }

    fn chaos_ctx(chaos: qf_storage::ChaosFs, budget: u64) -> ExecContext {
        let dir = qf_storage::SpillDir::create_on(Arc::new(chaos), &std::env::temp_dir()).unwrap();
        ExecContext::unbounded()
            .with_mem_budget(budget)
            .with_threads(1)
            .with_spill(Arc::new(dir))
    }

    #[test]
    fn enospc_during_spill_reabsorbs_and_degrades() {
        use qf_storage::{ChaosFs, Fault, OpClass};
        let db = big_db(4000);
        let expected = execute(&explosive_plan(), &db).unwrap();
        // Create #1 is the spill dir itself; a later create is some
        // sink run. The documented policy: free completed runs, waive
        // the budget, finish in memory with the degradation recorded.
        let ctx = chaos_ctx(
            ChaosFs::quiet().with_fault(OpClass::Create, 4, Fault::DiskFull),
            400 << 10,
        );
        let got = execute_with(&explosive_plan(), &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        let stats = ctx.stats();
        assert!(
            stats.degradations.iter().any(|d| d.stage == "spill-enospc"),
            "{stats:?}"
        );
        assert_eq!(stats.spill_files_live, 0, "{stats:?}");
    }

    #[test]
    fn transient_write_errors_absorbed_by_whole_run_retry() {
        use qf_storage::{ChaosFs, Fault, OpClass};
        let db = big_db(4000);
        let expected = execute(&explosive_plan(), &db).unwrap();
        let ctx = chaos_ctx(
            ChaosFs::quiet().with_fault(OpClass::Write, 3, Fault::Transient),
            400 << 10,
        );
        let got = execute_with(&explosive_plan(), &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        let stats = ctx.stats();
        assert!(stats.io_retries >= 1, "{stats:?}");
        assert_eq!(stats.spill_files_live, 0, "{stats:?}");
    }

    #[test]
    fn corrupt_spill_run_recovered_by_recompute() {
        use qf_storage::{ChaosFs, Fault, OpClass};
        let db = big_db(4000);
        let expected = execute(&explosive_plan(), &db).unwrap();
        // One scheduled bit flip lands in some run's payload; the
        // writer believes it succeeded, the reader's frame checksum
        // catches it, and the plan is recomputed (fault is one-shot).
        let ctx = chaos_ctx(
            ChaosFs::quiet().with_fault(OpClass::Write, 3, Fault::BitFlip),
            400 << 10,
        );
        let got = execute_with(&explosive_plan(), &db, &ctx).unwrap();
        assert_eq!(got.tuples(), expected.tuples());
        let stats = ctx.stats();
        assert_eq!(stats.corruption_recoveries, 1, "{stats:?}");
        assert!(
            stats
                .degradations
                .iter()
                .any(|d| d.stage == "spill-corruption"),
            "{stats:?}"
        );
        assert_eq!(stats.spill_files_live, 0, "{stats:?}");
    }

    #[test]
    fn anti_join_and_cross_product_under_spill() {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("l", &["a"]),
            (0..2000).map(|i| vec![Value::int(i)]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::new("r", &["b"]),
            (0..40).map(|i| vec![Value::int(i * 3)]).collect(),
        ));
        let anti = PhysicalPlan::anti_join(
            PhysicalPlan::scan("l"),
            PhysicalPlan::scan("r"),
            vec![(0, 0)],
        );
        let cross = PhysicalPlan::aggregate(
            PhysicalPlan::hash_join(PhysicalPlan::scan("l"), PhysicalPlan::scan("r"), vec![]),
            vec![1],
            AggFn::Count,
        );
        for plan in [anti, cross] {
            let expected = execute(&plan, &db).unwrap();
            // Budget above the resident scans (~66 KB) but below the
            // 80k-row cross-product output.
            let ctx = spill_ctx(96 << 10, 1);
            let got = execute_with(&plan, &db, &ctx).unwrap();
            assert_eq!(got.tuples(), expected.tuples());
        }
    }
}
