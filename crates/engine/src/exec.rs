//! Physical plan execution.
//!
//! [`execute`] evaluates a [`PhysicalPlan`] against a [`Database`] and
//! returns a set-semantics [`Relation`]. Column names are propagated
//! through the tree so results stay self-describing (joins concatenate
//! names, aggregates append the aggregate's name), but all plan-level
//! references are positional.
//!
//! [`execute_with`] is the governed variant: every operator loop checks
//! the supplied [`ExecContext`] cooperatively, charging each tuple it
//! materializes *before* storing it, so a budgeted execution fails with
//! [`EngineError::ResourceExhausted`] / [`EngineError::Cancelled`]
//! instead of exhausting the machine. `execute` is simply
//! `execute_with` under an unbounded context.
//!
//! Row-at-a-time operators (select, project, join probe, anti-join
//! probe, group-by accumulation) are partition-parallel: the input's
//! sorted tuple slice is split into contiguous chunks processed on
//! scoped worker threads (see [`crate::parallel`]), up to
//! [`ExecContext::threads`] of them. Chunk outputs are reassembled in
//! chunk order and canonicalized, so results are identical to
//! single-thread execution.

use qf_storage::{Database, FastMap, HashIndex, Relation, Schema, Tuple, Value};

use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::governor::ExecContext;
use crate::merge;
use crate::parallel;
use crate::plan::{AggFn, PhysicalPlan};

/// Evaluate `plan` against `db` with no resource limits.
pub fn execute(plan: &PhysicalPlan, db: &Database) -> Result<Relation> {
    execute_with(plan, db, &ExecContext::unbounded())
}

/// Evaluate `plan` against `db` under the governance of `ctx`.
///
/// When `ctx` carries a spill directory ([`ExecContext::with_spill`]),
/// execution routes through the out-of-core path ([`crate::spill`]):
/// operators that would trip the memory budget spill to disk and
/// continue instead of failing.
pub fn execute_with(plan: &PhysicalPlan, db: &Database, ctx: &ExecContext) -> Result<Relation> {
    if ctx.spill_enabled() {
        // Corruption-recovery loop: a spill run whose frame checksum
        // fails verification is deleted state we can regenerate — the
        // inputs are still in the catalog — so recompute the pipeline
        // (bounded) rather than failing the query over a flipped bit.
        // Live-byte accounting from the abandoned attempt is left
        // charged (shared counters; a sibling wave step may own some),
        // which is conservative: the retry spills earlier, never later.
        let mut attempts = 0u32;
        loop {
            match crate::spill::execute_spill(plan, db, ctx).and_then(|o| o.materialize(ctx)) {
                Err(e) if e.is_corruption() && attempts < 2 => {
                    attempts += 1;
                    ctx.note_corruption_recovery();
                    ctx.record_degradation(
                        "spill-corruption",
                        format!("{e}; recomputing pipeline (attempt {attempts})"),
                    );
                }
                other => return other,
            }
        }
    }
    match plan {
        PhysicalPlan::Scan { relation } => {
            ctx.enter("Scan")?;
            let rel = db.get(relation)?;
            // A scan materializes a working copy; charge it like any
            // other operator output, before cloning.
            ctx.charge_rows(rel.len() as u64, rel.schema().arity())?;
            Ok(rel.clone())
        }

        PhysicalPlan::Select { input, predicates } => {
            ctx.enter("Select")?;
            let rel = execute_with(input, db, ctx)?;
            check_predicates(predicates, rel.schema().arity(), "Select")?;
            let width = rel.schema().arity();
            let workers = parallel::workers_for(rel.len(), ctx.threads());
            ctx.note_workers(workers);
            let chunks =
                parallel::par_chunks(rel.tuples(), workers, |chunk| -> Result<Vec<Tuple>> {
                    let mut keep: Vec<Tuple> = Vec::new();
                    for t in chunk {
                        ctx.tick()?;
                        if predicates.iter().all(|p| p.eval(t)) {
                            ctx.charge_row(width)?;
                            keep.push(t.clone());
                        }
                    }
                    Ok(keep)
                })?;
            // Filtering contiguous chunks of a sorted set and
            // concatenating them in chunk order preserves sortedness
            // and dedup.
            let tuples: Vec<Tuple> = chunks.into_iter().flatten().collect();
            Ok(Relation::from_sorted_dedup(rel.schema().clone(), tuples))
        }

        PhysicalPlan::Project { input, cols } => {
            ctx.enter("Project")?;
            let rel = execute_with(input, db, ctx)?;
            check_columns(cols, rel.schema().arity(), "Project")?;
            let names: Vec<String> = cols
                .iter()
                .map(|&c| rel.schema().columns()[c].clone())
                .collect();
            let schema = Schema::from_columns("project", names);
            let workers = parallel::workers_for(rel.len(), ctx.threads());
            ctx.note_workers(workers);
            let chunks =
                parallel::par_chunks(rel.tuples(), workers, |chunk| -> Result<Vec<Tuple>> {
                    let mut out: Vec<Tuple> = Vec::with_capacity(chunk.len());
                    for t in chunk {
                        ctx.charge_row(cols.len())?;
                        out.push(t.project(cols));
                    }
                    Ok(out)
                })?;
            let tuples: Vec<Tuple> = chunks.into_iter().flatten().collect();
            Ok(Relation::from_tuples(schema, tuples))
        }

        PhysicalPlan::HashJoin { left, right, keys } => {
            ctx.enter("HashJoin")?;
            let l = execute_with(left, db, ctx)?;
            let r = execute_with(right, db, ctx)?;
            check_join_keys(keys, l.schema().arity(), r.schema().arity(), "HashJoin")?;
            // Merge fast path when the keys are the leading columns of
            // both (sorted) inputs; otherwise hash join with the build
            // table on the smaller side and a parallel probe.
            merge::join_auto_with(&l, &r, keys, ctx)
        }

        PhysicalPlan::AntiJoin { left, right, keys } => {
            ctx.enter("AntiJoin")?;
            let l = execute_with(left, db, ctx)?;
            let r = execute_with(right, db, ctx)?;
            check_join_keys(keys, l.schema().arity(), r.schema().arity(), "AntiJoin")?;
            let (lk, rk): (Vec<usize>, Vec<usize>) = keys.iter().copied().unzip();
            // The right side is the filter, so it must be the build
            // side regardless of size.
            let idx = HashIndex::build(&r, &rk);
            let width = l.schema().arity();
            let workers = parallel::workers_for(l.len(), ctx.threads());
            ctx.note_workers(workers);
            let chunks =
                parallel::par_chunks(l.tuples(), workers, |chunk| -> Result<Vec<Tuple>> {
                    let mut keep: Vec<Tuple> = Vec::new();
                    for lt in chunk {
                        ctx.tick()?;
                        if !idx.contains_key(&lt.project(&lk)) {
                            ctx.charge_row(width)?;
                            keep.push(lt.clone());
                        }
                    }
                    Ok(keep)
                })?;
            let tuples: Vec<Tuple> = chunks.into_iter().flatten().collect();
            Ok(Relation::from_sorted_dedup(l.schema().clone(), tuples))
        }

        PhysicalPlan::Union { inputs } => {
            ctx.enter("Union")?;
            if inputs.is_empty() {
                // A union of zero queries is the empty nullary relation.
                return Ok(Relation::empty(Schema::new("union", &[])));
            }
            let first = execute_with(&inputs[0], db, ctx)?;
            let arity = first.schema().arity();
            let schema = first.schema().renamed("union");
            let mut tuples: Vec<Tuple> = Vec::new();
            for t in first.iter() {
                ctx.charge_row(arity)?;
                tuples.push(t.clone());
            }
            for input in &inputs[1..] {
                let rel = execute_with(input, db, ctx)?;
                if rel.schema().arity() != arity {
                    return Err(EngineError::UnionArityMismatch {
                        first: arity,
                        other: rel.schema().arity(),
                    });
                }
                for t in rel.iter() {
                    ctx.charge_row(arity)?;
                    tuples.push(t.clone());
                }
            }
            Ok(Relation::from_tuples(schema, tuples))
        }

        PhysicalPlan::Aggregate { input, group, agg } => {
            ctx.enter("Aggregate")?;
            let rel = execute_with(input, db, ctx)?;
            let arity = rel.schema().arity();
            check_columns(group, arity, "Aggregate")?;
            if let Some(c) = agg.input_column() {
                check_columns(&[c], arity, "Aggregate")?;
            }
            aggregate(&rel, group, *agg, ctx)
        }
    }
}

/// Grouped aggregation. Output schema: group columns then the aggregate
/// column (named after the function).
///
/// Accumulation is partition-parallel: each worker folds its chunk into
/// a private accumulator map, and the per-worker maps are merged
/// ([`Acc::merge`]) on the caller's thread. COUNT/SUM/MIN/MAX all admit
/// associative merges, so the result is independent of the partitioning.
pub(crate) fn aggregate(
    rel: &Relation,
    group: &[usize],
    agg: AggFn,
    ctx: &ExecContext,
) -> Result<Relation> {
    let mut names: Vec<String> = group
        .iter()
        .map(|&c| rel.schema().columns()[c].clone())
        .collect();
    names.push(agg.name().to_lowercase());
    let schema = Schema::from_columns("aggregate", names);
    let width = group.len() + 1;

    // SQL/paper semantics: a *global* aggregate (empty group list) over
    // empty input still yields one row. COUNT and SUM have identity 0
    // (the paper's support filter compares `COUNT(answer.X) >= s`, and
    // an unsupported candidate must see count 0, not a vanished row);
    // MIN/MAX have no identity in a NULL-free value domain, so an empty
    // global MIN/MAX yields the empty relation.
    if group.is_empty() && rel.is_empty() {
        return match agg {
            AggFn::Count | AggFn::Sum(_) => {
                ctx.charge_row(width)?;
                Ok(Relation::from_tuples(
                    schema,
                    vec![Tuple::from([Value::int(0)])],
                ))
            }
            AggFn::Min(_) | AggFn::Max(_) => Ok(Relation::empty(schema)),
        };
    }

    let workers = parallel::workers_for(rel.len(), ctx.threads());
    ctx.note_workers(workers);
    let maps = parallel::par_chunks(
        rel.tuples(),
        workers,
        |chunk| -> Result<FastMap<Tuple, Acc>> {
            let mut groups: FastMap<Tuple, Acc> = FastMap::default();
            for t in chunk {
                ctx.tick()?;
                let key = t.project(group);
                if !groups.contains_key(&key) {
                    // A new group materializes an accumulator row. (A group
                    // spanning chunks is charged once per chunk — a
                    // deliberate overestimate; budgets trip early, never
                    // late.)
                    ctx.charge_row(width)?;
                }
                let acc = groups.entry(key).or_insert_with(|| Acc::new(agg));
                acc.update(t, agg)?;
            }
            Ok(groups)
        },
    )?;

    let mut groups: FastMap<Tuple, Acc> = FastMap::default();
    for map in maps {
        for (key, acc) in map {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(acc, agg)?;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(acc);
                }
            }
        }
    }
    let tuples: Vec<Tuple> = groups
        .into_iter()
        .map(|(key, acc)| {
            let mut v = key.values().to_vec();
            v.push(acc.finish()?);
            Ok(Tuple::from(v))
        })
        .collect::<Result<_>>()?;
    Ok(Relation::from_tuples(schema, tuples))
}

/// Running aggregate state for one group.
pub(crate) enum Acc {
    Count(i64),
    Sum(i64),
    MinMax(Option<Value>),
}

impl Acc {
    pub(crate) fn new(agg: AggFn) -> Acc {
        match agg {
            AggFn::Count => Acc::Count(0),
            AggFn::Sum(_) => Acc::Sum(0),
            AggFn::Min(_) | AggFn::Max(_) => Acc::MinMax(None),
        }
    }

    pub(crate) fn update(&mut self, t: &Tuple, agg: AggFn) -> Result<()> {
        match (self, agg) {
            (Acc::Count(n), AggFn::Count) => *n += 1,
            (Acc::Sum(s), AggFn::Sum(c)) => {
                let v = t
                    .get(c)
                    .as_int()
                    .ok_or_else(|| EngineError::AggregateType {
                        detail: format!("SUM over non-integer value {:?}", t.get(c)),
                    })?;
                *s = s.saturating_add(v);
            }
            (Acc::MinMax(m), AggFn::Min(c)) => {
                let v = t.get(c);
                *m = Some(m.map_or(v, |old| old.min(v)));
            }
            (Acc::MinMax(m), AggFn::Max(c)) => {
                let v = t.get(c);
                *m = Some(m.map_or(v, |old| old.max(v)));
            }
            (acc, agg) => {
                return Err(EngineError::AggregateType {
                    detail: format!("accumulator {} does not accept {}", acc.kind(), agg.name()),
                })
            }
        }
        Ok(())
    }

    /// Fold another group's state (from a different partition) into
    /// this one. All four aggregates are associative and commutative,
    /// so merge order does not affect the result.
    fn merge(&mut self, other: Acc, agg: AggFn) -> Result<()> {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum(a), Acc::Sum(b)) => *a = a.saturating_add(b),
            (Acc::MinMax(a), Acc::MinMax(b)) => {
                *a = match (*a, b) {
                    (Some(x), Some(y)) => Some(if matches!(agg, AggFn::Min(_)) {
                        x.min(y)
                    } else {
                        x.max(y)
                    }),
                    (x, y) => x.or(y),
                };
            }
            (acc, other) => {
                return Err(EngineError::AggregateType {
                    detail: format!(
                        "cannot merge accumulator {} into {}",
                        other.kind(),
                        acc.kind()
                    ),
                })
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Result<Value> {
        match self {
            Acc::Count(n) => Ok(Value::int(n)),
            Acc::Sum(s) => Ok(Value::int(s)),
            // A MIN/MAX group exists only because a row created it, so
            // an empty accumulator here is an internal invariant
            // violation — reported as an error, never a panic.
            Acc::MinMax(v) => v.ok_or_else(|| EngineError::AggregateType {
                detail: "MIN/MAX group finished with no rows".to_string(),
            }),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Acc::Count(_) => "COUNT",
            Acc::Sum(_) => "SUM",
            Acc::MinMax(_) => "MIN/MAX",
        }
    }
}

pub(crate) fn check_columns(cols: &[usize], arity: usize, operator: &'static str) -> Result<()> {
    for &c in cols {
        if c >= arity {
            return Err(EngineError::ColumnOutOfRange {
                column: c,
                arity,
                operator,
            });
        }
    }
    Ok(())
}

pub(crate) fn check_predicates(
    preds: &[Predicate],
    arity: usize,
    operator: &'static str,
) -> Result<()> {
    for p in preds {
        if let Some(c) = p.max_column() {
            if c >= arity {
                return Err(EngineError::ColumnOutOfRange {
                    column: c,
                    arity,
                    operator,
                });
            }
        }
    }
    Ok(())
}

pub(crate) fn check_join_keys(
    keys: &[(usize, usize)],
    l_arity: usize,
    r_arity: usize,
    operator: &'static str,
) -> Result<()> {
    for &(l, r) in keys {
        if l >= l_arity {
            return Err(EngineError::ColumnOutOfRange {
                column: l,
                arity: l_arity,
                operator,
            });
        }
        if r >= r_arity {
            return Err(EngineError::ColumnOutOfRange {
                column: r,
                arity: r_arity,
                operator,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::str("beer")],
                vec![Value::int(1), Value::str("diapers")],
                vec![Value::int(2), Value::str("beer")],
                vec![Value::int(2), Value::str("diapers")],
                vec![Value::int(3), Value::str("beer")],
            ],
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["disease", "symptom"]),
            vec![vec![Value::str("flu"), Value::str("fever")]],
        ));
        db
    }

    #[test]
    fn scan_returns_relation() {
        let r = execute(&PhysicalPlan::scan("baskets"), &db()).unwrap();
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn scan_unknown_relation_errors() {
        let e = execute(&PhysicalPlan::scan("nope"), &db()).unwrap_err();
        assert!(matches!(e, EngineError::Storage(_)));
    }

    #[test]
    fn select_filters() {
        let p = PhysicalPlan::select(
            PhysicalPlan::scan("baskets"),
            vec![Predicate::col_const(1, CmpOp::Eq, Value::str("beer"))],
        );
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn project_dedups() {
        let p = PhysicalPlan::project(PhysicalPlan::scan("baskets"), vec![1]);
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 2); // beer, diapers
        assert_eq!(r.schema().columns(), &["item".to_string()]);
    }

    #[test]
    fn self_join_counts_pairs() {
        // Fig. 1's core: baskets ⋈ baskets on bid with item < item.
        let join = PhysicalPlan::hash_join(
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::scan("baskets"),
            vec![(0, 0)],
        );
        let pairs = PhysicalPlan::select(join, vec![Predicate::col_col(1, CmpOp::Lt, 3)]);
        let r = execute(&pairs, &db()).unwrap();
        // Baskets 1 and 2 contain {beer, diapers}: two (bid, beer, bid, diapers) rows.
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().arity(), 4);
    }

    #[test]
    fn aggregate_count() {
        // COUNT baskets per item.
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![1], AggFn::Count);
        let r = execute(&p, &db()).unwrap();
        let beer = r
            .iter()
            .find(|t| t.get(0) == Value::str("beer"))
            .expect("beer group");
        assert_eq!(beer.get(1), Value::int(3));
        assert_eq!(r.schema().columns()[1], "count");
    }

    #[test]
    fn aggregate_sum_min_max() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![1], AggFn::Sum(0));
        let r = execute(&p, &db()).unwrap();
        let beer = r.iter().find(|t| t.get(0) == Value::str("beer")).unwrap();
        assert_eq!(beer.get(1), Value::int(6)); // 1 + 2 + 3

        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![1], AggFn::Min(0));
        let r = execute(&p, &db()).unwrap();
        let beer = r.iter().find(|t| t.get(0) == Value::str("beer")).unwrap();
        assert_eq!(beer.get(1), Value::int(1));

        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![1], AggFn::Max(0));
        let r = execute(&p, &db()).unwrap();
        let beer = r.iter().find(|t| t.get(0) == Value::str("beer")).unwrap();
        assert_eq!(beer.get(1), Value::int(3));
    }

    #[test]
    fn sum_over_symbol_is_type_error() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![0], AggFn::Sum(1));
        let e = execute(&p, &db()).unwrap_err();
        assert!(matches!(e, EngineError::AggregateType { .. }));
    }

    #[test]
    fn global_aggregate_empty_group() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("baskets"), vec![], AggFn::Count);
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), Value::int(5));
    }

    /// An empty relation named `nothing` alongside the sample data.
    fn db_with_empty() -> Database {
        let mut d = db();
        d.insert(Relation::empty(Schema::new("nothing", &["x", "y"])));
        d
    }

    #[test]
    fn global_count_over_empty_input_is_zero_row() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("nothing"), vec![], AggFn::Count);
        let r = execute(&p, &db_with_empty()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), Value::int(0));
        assert_eq!(r.schema().columns(), &["count".to_string()]);
    }

    #[test]
    fn global_sum_over_empty_input_is_zero_row() {
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("nothing"), vec![], AggFn::Sum(0));
        let r = execute(&p, &db_with_empty()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), Value::int(0));
    }

    #[test]
    fn global_min_max_over_empty_input_is_empty() {
        // MIN/MAX have no identity element in a NULL-free domain.
        for agg in [AggFn::Min(0), AggFn::Max(0)] {
            let p = PhysicalPlan::aggregate(PhysicalPlan::scan("nothing"), vec![], agg);
            let r = execute(&p, &db_with_empty()).unwrap();
            assert!(r.is_empty());
            assert_eq!(r.schema().arity(), 1);
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        // With a non-empty group list there are no groups to report.
        let p = PhysicalPlan::aggregate(PhysicalPlan::scan("nothing"), vec![0], AggFn::Count);
        let r = execute(&p, &db_with_empty()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn accumulator_mismatch_is_error_not_panic() {
        let mut acc = Acc::new(AggFn::Count);
        let t = Tuple::from([Value::int(1)]);
        let err = acc.update(&t, AggFn::Sum(0)).unwrap_err();
        assert!(matches!(err, EngineError::AggregateType { .. }));
        let err = Acc::new(AggFn::Count)
            .merge(Acc::new(AggFn::Min(0)), AggFn::Count)
            .unwrap_err();
        assert!(matches!(err, EngineError::AggregateType { .. }));
    }

    #[test]
    fn empty_minmax_accumulator_finishes_with_error() {
        let err = Acc::new(AggFn::Min(0)).finish().unwrap_err();
        assert!(matches!(err, EngineError::AggregateType { .. }));
    }

    #[test]
    fn parallel_execution_matches_single_thread_on_large_input() {
        // Large enough that workers_for actually fans out (> PAR_THRESHOLD).
        let n = crate::parallel::PAR_THRESHOLD as i64 * 3;
        let mut d = Database::new();
        d.insert(Relation::from_rows(
            Schema::new("big", &["k", "v"]),
            (0..n)
                .map(|i| vec![Value::int(i % 397), Value::int(i)])
                .collect(),
        ));
        let plan = PhysicalPlan::aggregate(
            PhysicalPlan::select(
                PhysicalPlan::hash_join(
                    PhysicalPlan::scan("big"),
                    PhysicalPlan::scan("big"),
                    vec![(0, 0)],
                ),
                vec![Predicate::col_col(1, CmpOp::Lt, 3)],
            ),
            vec![0],
            AggFn::Count,
        );
        let ctx1 = ExecContext::unbounded().with_threads(1);
        let ctx4 = ExecContext::unbounded().with_threads(4);
        let one = execute_with(&plan, &d, &ctx1).unwrap();
        let four = execute_with(&plan, &d, &ctx4).unwrap();
        assert_eq!(one.tuples(), four.tuples());
        assert_eq!(ctx1.stats().workers, 1);
        assert!(ctx4.stats().workers > 1);
    }

    #[test]
    fn anti_join_removes_matches() {
        // Baskets whose item is NOT a known symptom-causing… (nonsense
        // semantically, but exercises key matching across relations).
        let p = PhysicalPlan::anti_join(
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::scan("causes"),
            vec![(1, 1)],
        );
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 5); // no basket item is "fever"

        let p = PhysicalPlan::anti_join(
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::scan("baskets"),
            vec![(0, 0)],
        );
        let r = execute(&p, &db()).unwrap();
        assert!(r.is_empty()); // everything matches itself
    }

    #[test]
    fn union_dedups_and_checks_arity() {
        let p = PhysicalPlan::union(vec![
            PhysicalPlan::project(PhysicalPlan::scan("baskets"), vec![1]),
            PhysicalPlan::project(PhysicalPlan::scan("causes"), vec![1]),
        ]);
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 3); // beer, diapers, fever

        let bad = PhysicalPlan::union(vec![
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::project(PhysicalPlan::scan("causes"), vec![1]),
        ]);
        assert!(matches!(
            execute(&bad, &db()).unwrap_err(),
            EngineError::UnionArityMismatch { first: 2, other: 1 }
        ));
    }

    #[test]
    fn empty_union_is_empty() {
        let r = execute(&PhysicalPlan::union(vec![]), &db()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn column_bounds_checked() {
        let p = PhysicalPlan::project(PhysicalPlan::scan("baskets"), vec![7]);
        assert!(matches!(
            execute(&p, &db()).unwrap_err(),
            EngineError::ColumnOutOfRange { column: 7, .. }
        ));
    }

    #[test]
    fn join_key_bounds_checked() {
        let p = PhysicalPlan::hash_join(
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::scan("causes"),
            vec![(0, 9)],
        );
        assert!(matches!(
            execute(&p, &db()).unwrap_err(),
            EngineError::ColumnOutOfRange { column: 9, .. }
        ));
    }

    #[test]
    fn cross_product_via_empty_keys() {
        let p = PhysicalPlan::hash_join(
            PhysicalPlan::scan("baskets"),
            PhysicalPlan::scan("causes"),
            vec![],
        );
        let r = execute(&p, &db()).unwrap();
        assert_eq!(r.len(), 5); // 5 baskets rows × 1 causes row
    }
}
