//! Partition-parallel execution primitives.
//!
//! The engine parallelizes operators by splitting a relation's sorted
//! tuple slice into contiguous chunks and processing each chunk on a
//! scoped worker thread (`std::thread::scope` — no external thread-pool
//! dependency, consistent with the offline `shims/` build). Contiguous
//! chunks processed in order and concatenated in order preserve the
//! sortedness invariants that [`qf_storage::Relation::from_sorted_dedup`]
//! relies on, so order-preserving operators (select, anti-join) stay on
//! the no-sort path even when parallel.
//!
//! Work distribution is dynamic: workers pull the next unclaimed item
//! from a shared atomic cursor, so skewed chunks (one hot join key) do
//! not leave the other workers idle.
//!
//! Determinism: results are reassembled in item order regardless of
//! which worker produced them, and every output relation is canonically
//! sorted/deduplicated, so parallel and single-thread execution produce
//! identical relations. Governor counters ([`crate::ExecContext`]) are
//! atomic and shared across workers; budget overshoot is bounded by one
//! in-flight charge per worker.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::EngineError;

/// Minimum number of items that justifies handing a worker thread its
/// own chunk. Below this, thread spawn/join overhead dominates and the
/// work runs inline on the caller's thread.
pub const PAR_THRESHOLD: usize = 4096;

/// Thread count used when none is configured explicitly: the
/// `QF_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("QF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many workers to actually use for `len` items under a configured
/// thread count: never more than `threads`, never so many that a worker
/// gets fewer than [`PAR_THRESHOLD`] items, and at least 1.
pub fn workers_for(len: usize, threads: usize) -> usize {
    threads.min(len.div_ceil(PAR_THRESHOLD)).max(1)
}

/// Split `0..len` into `workers` near-equal contiguous ranges (the
/// first `len % workers` ranges get one extra item). Empty ranges are
/// omitted, so the result may be shorter than `workers`.
pub fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Apply `f` to every item of `items` on up to `threads` scoped worker
/// threads, returning results **in item order**. The first `Err` (in
/// item order) is returned. A panic inside `f` on a worker thread is
/// caught at the worker boundary and surfaced as a clean
/// [`EngineError::WorkerPanic`]-derived error — it never poisons shared
/// state (the `ExecContext`) or cascades into sibling-thread panics.
/// With `threads <= 1` (or a single item) everything runs inline on the
/// caller's thread — no spawn overhead, and a panic propagates as in
/// any sequential code.
///
/// Items are claimed dynamically from a shared cursor, so uneven item
/// costs balance across workers. Generic over the error type so that
/// higher layers (the flock pipeline) can parallelize with their own
/// error enums; `E: From<EngineError>` lets the panic conversion
/// surface in those enums too.
pub fn par_items<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send + From<EngineError>,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let n_workers = threads.max(1).min(items.len());
    if n_workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<R, E>)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| f(&items[i]))).unwrap_or_else(
                            |payload| {
                                Err(E::from(EngineError::WorkerPanic {
                                    detail: panic_message(payload.as_ref()),
                                }))
                            },
                        );
                        // After an error, later items are moot; stop
                        // claiming work so the pipeline fails fast.
                        let failed = r.is_err();
                        local.push((i, r));
                        if failed {
                            break;
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => indexed.extend(local),
                // Defensive: `f` panics are already caught above, so
                // this only fires for panics in the claiming loop
                // itself. Surface them as errors too (ordered last).
                Err(payload) => indexed.push((
                    usize::MAX,
                    Err(E::from(EngineError::WorkerPanic {
                        detail: panic_message(payload.as_ref()),
                    })),
                )),
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Partition `items` into at most `workers` contiguous chunks and apply
/// `f` to each chunk in parallel, returning per-chunk results in chunk
/// order. See [`par_items`] for error/panic semantics.
pub fn par_chunks<T, R, E, F>(items: &[T], workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send + From<EngineError>,
    F: Fn(&[T]) -> Result<R, E> + Sync,
{
    let ranges = chunk_ranges(items.len(), workers);
    par_items(&ranges, workers, |r| f(&items[r.clone()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 100, 101] {
            for workers in [1usize, 2, 3, 7] {
                let ranges = chunk_ranges(len, workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} workers={workers}");
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= workers);
            }
        }
    }

    #[test]
    fn workers_respect_threshold() {
        assert_eq!(workers_for(0, 8), 1);
        assert_eq!(workers_for(100, 8), 1);
        assert_eq!(workers_for(PAR_THRESHOLD + 1, 8), 2);
        assert_eq!(workers_for(PAR_THRESHOLD * 100, 8), 8);
        assert_eq!(workers_for(PAR_THRESHOLD * 100, 1), 1);
    }

    #[test]
    fn par_items_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 2, 4] {
            let out = par_items(&items, threads, |&x| Ok::<u64, EngineError>(x * 2)).unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_items_propagates_first_error() {
        let items: Vec<u64> = (0..100).collect();
        let err = par_items(&items, 4, |&x| {
            if x >= 7 {
                Err(EngineError::Cancelled)
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, EngineError::Cancelled);
    }

    #[test]
    fn par_chunks_reassembles_in_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for workers in [1usize, 3, 8] {
            let chunks = par_chunks(&items, workers, |c| Ok::<_, EngineError>(c.to_vec())).unwrap();
            let flat: Vec<u64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_surfaces_as_clean_error() {
        // Silence the default panic hook for the intentional panic so
        // test output stays readable; restore it afterwards.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..10_000).collect();
        let err = par_items(&items, 4, |&x| {
            if x == 5000 {
                panic!("boom at {x}");
            }
            Ok::<u64, EngineError>(x)
        })
        .unwrap_err();
        std::panic::set_hook(prev);
        match err {
            EngineError::WorkerPanic { detail } => assert!(detail.contains("boom"), "{detail}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_does_not_poison_shared_context() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ctx = crate::ExecContext::unbounded();
        let items: Vec<u64> = (0..10_000).collect();
        let r = par_items(&items, 4, |&x| {
            ctx.record_degradation("test", "before panic");
            if x == 0 {
                panic!("poison attempt");
            }
            Ok::<u64, EngineError>(x)
        });
        std::panic::set_hook(prev);
        assert!(matches!(r, Err(EngineError::WorkerPanic { .. })));
        // The shared context is still fully usable afterwards.
        ctx.record_degradation("test", "after panic");
        assert!(!ctx.stats().degradations.is_empty());
        ctx.charge_row(4).unwrap();
    }
}
