//! Report tables: what the `reproduce` binary prints and
//! `EXPERIMENTS.md` records.

/// A titled table with optional prose notes.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (includes the paper artifact it reproduces).
    pub title: String,
    /// Explanatory notes printed under the title.
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a prose note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Add a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("   {n}\n"));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("{n}\n\n"));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Format a `Duration` compactly (µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "n"]);
        t.row(vec!["longer-name".into(), "7".into()]);
        t.row(vec!["x".into(), "123".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.note("a note");
        t.row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn duration_formats() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
