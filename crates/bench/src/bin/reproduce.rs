//! `reproduce` — regenerate every experiment table from the paper.
//!
//! ```text
//! reproduce all            # every experiment at small scale
//! reproduce e1 e5          # selected experiments
//! reproduce all --scale full    # the EXPERIMENTS.md configuration
//! reproduce all --markdown      # emit Markdown instead of plain text
//! ```

use qf_bench::{run_experiment, Scale, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut markdown = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale needs `small` or `full`"));
            }
            "--markdown" => markdown = true,
            "--help" | "-h" => {
                eprintln!("usage: reproduce [all | e1..e9 ...] [--scale small|full] [--markdown]");
                return;
            }
            "all" => ids.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string()));
    }
    ids.dedup();

    for id in &ids {
        eprintln!("running {id} ({scale:?}) …");
        let Some(tables) = run_experiment(id, scale) else {
            die(&format!("unknown experiment `{id}` (e1..e9)"));
        };
        for t in tables {
            if markdown {
                println!("{}", t.markdown());
            } else {
                println!("{}", t.render());
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
