//! Shared workload constructors, scaled per [`Scale`].
//!
//! Criterion benches and the `reproduce` experiments draw from the same
//! constructors so their numbers describe the same data.

use qf_datagen::{baskets, graph, medical, web, words};
use qf_storage::Database;

use crate::Scale;

/// Zipf word-occurrence database (§1.3's "newspaper articles").
pub fn words_db(scale: Scale) -> Database {
    let config = match scale {
        Scale::Small => words::WordsConfig {
            n_docs: 300,
            words_per_doc: 20,
            vocabulary: 2000,
            exponent: 1.0,
            seed: 1,
        },
        Scale::Full => words::WordsConfig {
            n_docs: 4000,
            words_per_doc: 40,
            vocabulary: 120_000,
            exponent: 0.8,
            seed: 1,
        },
    };
    let mut db = Database::new();
    db.insert(words::generate(&config));
    db
}

/// Quest-style basket database plus ground truth.
pub fn basket_data(scale: Scale) -> baskets::BasketData {
    let config = match scale {
        Scale::Small => baskets::BasketConfig {
            n_baskets: 300,
            avg_basket_size: 8,
            n_items: 200,
            n_patterns: 10,
            ..baskets::BasketConfig::default()
        },
        Scale::Full => baskets::BasketConfig {
            n_baskets: 4000,
            avg_basket_size: 10,
            n_items: 1000,
            n_patterns: 30,
            ..baskets::BasketConfig::default()
        },
    };
    baskets::generate(&config)
}

/// Basket database (relation only).
pub fn basket_db(scale: Scale) -> Database {
    let mut db = Database::new();
    db.insert(basket_data(scale).baskets);
    db
}

/// Basket database plus `importance` weights (Fig. 10).
pub fn weighted_basket_db(scale: Scale) -> Database {
    let config = match scale {
        Scale::Small => baskets::BasketConfig {
            n_baskets: 300,
            avg_basket_size: 8,
            n_items: 200,
            n_patterns: 10,
            ..baskets::BasketConfig::default()
        },
        Scale::Full => baskets::BasketConfig {
            n_baskets: 4000,
            avg_basket_size: 10,
            n_items: 1000,
            n_patterns: 30,
            ..baskets::BasketConfig::default()
        },
    };
    let data = baskets::generate(&config);
    let mut db = Database::new();
    db.insert(data.baskets);
    db.insert(baskets::importance(&config, 50));
    db
}

/// Medical database (Ex. 2.2) with a chosen rare-value density.
pub fn medical_data(scale: Scale, rare_fraction: f64) -> medical::MedicalData {
    let config = match scale {
        Scale::Small => medical::MedicalConfig {
            n_patients: 600,
            rare_fraction,
            seed: 1,
            ..medical::MedicalConfig::default()
        },
        Scale::Full => medical::MedicalConfig {
            n_patients: 20_000,
            n_symptoms: 500,
            n_medicines: 250,
            symptoms_per_patient: 4,
            rare_fraction,
            seed: 1,
            ..medical::MedicalConfig::default()
        },
    };
    medical::generate(&config)
}

/// Web corpus (Ex. 2.3).
pub fn web_data(scale: Scale) -> web::WebData {
    let config = match scale {
        Scale::Small => web::WebConfig {
            n_docs: 300,
            n_anchors: 600,
            vocabulary: 1000,
            ..web::WebConfig::default()
        },
        Scale::Full => web::WebConfig {
            n_docs: 3000,
            n_anchors: 6000,
            vocabulary: 40_000,
            words_per_title: 14,
            words_per_anchor: 5,
            ..web::WebConfig::default()
        },
    };
    web::generate(&config)
}

/// Hub-structured digraph (Ex. 4.3).
pub fn graph_db(scale: Scale) -> Database {
    let config = match scale {
        Scale::Small => graph::GraphConfig {
            n_nodes: 500,
            n_random_arcs: 1000,
            ..graph::GraphConfig::default()
        },
        Scale::Full => graph::GraphConfig {
            n_nodes: 5000,
            n_random_arcs: 12_000,
            n_hubs: 8,
            hub_degree: 40,
            chain_len: 8,
            seed: 1,
        },
    };
    let mut db = Database::new();
    db.insert(graph::generate(&config));
    db
}

/// The paper's standard support threshold.
pub const PAPER_THRESHOLD: i64 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_workloads_build() {
        assert!(words_db(Scale::Small).get("baskets").unwrap().len() > 1000);
        assert!(basket_db(Scale::Small).get("baskets").unwrap().len() > 500);
        assert!(weighted_basket_db(Scale::Small).contains("importance"));
        assert!(medical_data(Scale::Small, 0.3).db.contains("causes"));
        assert!(web_data(Scale::Small).db.contains("link"));
        assert!(graph_db(Scale::Small).get("arc").unwrap().len() > 500);
    }
}
