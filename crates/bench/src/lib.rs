//! # qf-bench — the reproduction harness
//!
//! One module per experiment in `EXPERIMENTS.md`, each regenerating a
//! figure or quantified claim of the paper:
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | [`experiments::e1_apriori_speedup`] | §1.3 claim + Fig. 1 (≈20× rewrite speedup) |
//! | [`experiments::e2_basket_flock`] | Fig. 2 (market-basket flock) |
//! | [`experiments::e3_medical_plans`] | Figs. 3 & 5, Ex. 3.2/4.1 |
//! | [`experiments::e4_union_flock`] | Fig. 4, Ex. 3.3 |
//! | [`experiments::e5_path_chain`] | Figs. 6 & 7, Ex. 4.3 |
//! | [`experiments::e6_dynamic`] | Figs. 8 & 9, Ex. 4.4 |
//! | [`experiments::e7_weighted`] | Fig. 10 (monotone SUM filter) |
//! | [`experiments::e8_levelwise`] | §4.3 option 2 vs. classic a-priori |
//! | [`experiments::e9_plan_search`] | §4.2–4.3 ablation: search strategies & cost model |
//!
//! Run everything with the `reproduce` binary:
//!
//! ```text
//! cargo run --release -p qf-bench --bin reproduce -- all --scale full
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod timing;
pub mod workloads;

pub use table::Table;

/// Experiment scale: `Small` finishes in seconds (CI, tests); `Full` is
/// the scale recorded in `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke configuration.
    Small,
    /// The configuration whose numbers are recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parse `small`/`full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Run one experiment by id (`e1`…`e9`), returning its report tables.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Table>> {
    use experiments::*;
    Some(match id {
        "e1" => e1_apriori_speedup::run(scale),
        "e2" => e2_basket_flock::run(scale),
        "e3" => e3_medical_plans::run(scale),
        "e4" => e4_union_flock::run(scale),
        "e5" => e5_path_chain::run(scale),
        "e6" => e6_dynamic::run(scale),
        "e7" => e7_weighted::run(scale),
        "e8" => e8_levelwise::run(scale),
        "e9" => e9_plan_search::run(scale),
        _ => return None,
    })
}

/// All experiment ids, in order.
pub const EXPERIMENT_IDS: [&str; 9] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
