//! Timing helpers for the experiments.

use std::time::{Duration, Instant};

/// Time one run of `f`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Run `f` `n` times, returning the last value and the **median**
/// duration (robust to scheduler noise without the cost of full
/// criterion sampling).
pub fn time_median<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut durations = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (v, d) = time(&mut f);
        durations.push(d);
        last = Some(v);
    }
    durations.sort();
    (last.unwrap(), durations[durations.len() / 2])
}

/// Ratio of two durations as `a / b` (∞-safe).
pub fn speedup(a: Duration, b: Duration) -> f64 {
    let b_us = b.as_secs_f64();
    if b_us == 0.0 {
        f64::INFINITY
    } else {
        a.as_secs_f64() / b_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn median_of_three() {
        let mut i = 0;
        let (_, d) = time_median(3, || {
            i += 1;
            std::thread::sleep(Duration::from_millis(if i == 1 { 20 } else { 2 }));
        });
        assert!(
            d < Duration::from_millis(15),
            "median should skip the outlier"
        );
    }

    #[test]
    fn speedup_ratio() {
        let a = Duration::from_millis(100);
        let b = Duration::from_millis(10);
        assert!((speedup(a, b) - 10.0).abs() < 0.5);
    }
}
