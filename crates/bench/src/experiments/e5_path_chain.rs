//! **E5 — Figs. 6 & 7, Ex. 4.3.** The "pathological" path flock: does
//! node `$1` have ≥ c successors from which a length-n path extends?
//!
//! Fig. 7's (n+1)-step plan chains a `FILTER` after every prefix — each
//! `ok_i` feeds `ok_{i+1}` — so nodes without enough successors never
//! join into the long path. We sweep n and compare the chain plan with
//! direct evaluation; the paper's point is that the chain's advantage
//! *grows with n*, which is why no exponential plan space can contain
//! all the good plans.

use qf_core::{chain_plan, evaluate_direct, execute_plan, JoinOrderStrategy, QueryFlock};

use crate::table::{fmt_duration, Table};
use crate::timing::{speedup, time_median};
use crate::workloads::graph_db;
use crate::Scale;

/// The Fig. 6 flock with a length-`n` extension after the first arc.
pub fn path_flock(n: usize, threshold: i64) -> QueryFlock {
    let mut body = vec!["arc($1,X)".to_string()];
    let mut prev = "X".to_string();
    for i in 1..=n {
        let next = format!("Y{i}");
        body.push(format!("arc({prev},{next})"));
        prev = next;
    }
    QueryFlock::with_support(&format!("answer(X) :- {}", body.join(" AND ")), threshold)
        .expect("static flock text")
}

/// Run E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let db = graph_db(scale);
    let (ns, threshold): (&[usize], i64) = match scale {
        Scale::Small => (&[1, 2, 3], 10),
        Scale::Full => (&[1, 2, 3, 4, 5], 20),
    };

    let mut table = Table::new(
        "E5 (Figs. 6–7, Ex. 4.3): path flock, direct vs. (n+1)-step chain plan",
        &[
            "path n",
            "chain steps",
            "direct",
            "chain plan",
            "speedup",
            "nodes found",
        ],
    );
    table.note(format!(
        "graph: {} arcs over hub-structured random digraph, support {}",
        db.get("arc").unwrap().len(),
        threshold
    ));

    for &n in ns {
        let flock = path_flock(n, threshold);
        let (direct, direct_t) = time_median(3, || {
            evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap()
        });
        let plan = chain_plan(&flock).unwrap();
        let (chained, chain_t) = time_median(3, || {
            execute_plan(&plan, &db, JoinOrderStrategy::AsWritten).unwrap()
        });
        assert_eq!(direct.tuples(), chained.result.tuples(), "n={n}");
        table.row(vec![
            n.to_string(),
            plan.len().to_string(),
            fmt_duration(direct_t),
            fmt_duration(chain_t),
            format!("{:.1}x", speedup(direct_t, chain_t)),
            direct.len().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs_and_chain_wins_eventually() {
        let tables = run(Scale::Small);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 3);
        // The chain plan should win at the largest n.
        let last_speedup: f64 = rows.last().unwrap()[4]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(
            last_speedup > 1.0,
            "chain should win at n=3: {last_speedup}x"
        );
    }

    #[test]
    fn flock_text_shape() {
        let f = path_flock(2, 20);
        assert_eq!(
            f.query().to_string(),
            "answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)"
        );
    }
}
