//! The nine reproduction experiments (see crate docs and
//! `EXPERIMENTS.md` for the mapping to the paper's figures).

pub mod e1_apriori_speedup;
pub mod e2_basket_flock;
pub mod e3_medical_plans;
pub mod e4_union_flock;
pub mod e5_path_chain;
pub mod e6_dynamic;
pub mod e7_weighted;
pub mod e8_levelwise;
pub mod e9_plan_search;
