//! **E8 — §4.3 option 2.** Levelwise k-itemset mining as a sequence of
//! query flocks, against the classic file-based a-priori algorithm.
//!
//! Two claims checked:
//!
//! * **equivalence** — the flock sequence finds exactly the classic
//!   algorithm's frequent itemsets at every level (the paper's central
//!   "generalization" claim);
//! * **§1.4's honesty clause** — "ad-hoc file processing algorithms can
//!   outperform, often significantly, DBMS-based algorithms"; the
//!   timing columns record that expected gap rather than hiding it.

use qf_mine::{generate_rules, mine_apriori, mine_flockwise};

use crate::table::{fmt_duration, Table};
use crate::timing::time_median;
use crate::workloads::basket_data;
use crate::Scale;

/// Run E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let data = basket_data(scale);
    let mut db = qf_storage::Database::new();
    db.insert(data.baskets.clone());
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();
    let (threshold, max_k) = match scale {
        Scale::Small => (15i64, 3usize),
        Scale::Full => (40i64, 4usize),
    };

    let (flock_levels, flock_t) = time_median(1, || mine_flockwise(&db, threshold, max_k).unwrap());
    let (classic, classic_t) = time_median(3, || mine_apriori(&txns, threshold as u64, max_k));

    let mut table = Table::new(
        "E8 (§4.3 option 2): levelwise flocks vs. classic a-priori",
        &["level k", "flock itemsets", "classic itemsets", "equal"],
    );
    table.note(format!(
        "support {threshold}, {} transactions; flock sequence total {}, \
         classic total {} (§1.4 predicts the file algorithm wins on time)",
        txns.len(),
        fmt_duration(flock_t),
        fmt_duration(classic_t),
    ));
    for k in 1..=max_k {
        let flock_n = flock_levels.get(k - 1).map_or(0, |r| r.len());
        let classic_n = classic.frequent_k(k).len();
        assert_eq!(flock_n, classic_n, "level {k} cardinality mismatch");
        table.row(vec![
            k.to_string(),
            flock_n.to_string(),
            classic_n.to_string(),
            "yes".to_string(),
        ]);
    }

    // Bonus: the §1.1 measures on the classic result.
    let rules = generate_rules(&classic, 0.6);
    let mut rules_table = Table::new(
        "E8b (§1.1): top association rules by confidence",
        &["rule", "support", "confidence", "interest"],
    );
    for r in rules.iter().take(10) {
        let ante: Vec<String> = r
            .antecedent
            .iter()
            .map(|&i| qf_datagen::baskets::item_name(i as usize))
            .collect();
        rules_table.row(vec![
            format!(
                "{{{}}} -> {}",
                ante.join(","),
                qf_datagen::baskets::item_name(r.consequent as usize)
            ),
            format!("{:.4}", r.support),
            format!("{:.3}", r.confidence),
            format!("{:.2}", r.interest),
        ]);
    }
    vec![table, rules_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_levels_agree() {
        let tables = run(Scale::Small);
        assert!(tables[0].rows.iter().all(|r| r[3] == "yes"));
    }
}
