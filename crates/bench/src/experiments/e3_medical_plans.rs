//! **E3 — Figs. 3 & 5, Examples 3.2 & 4.1.** The medical side-effects
//! flock and its candidate plans.
//!
//! Two tables:
//!
//! 1. The Ex. 3.2 enumeration: all safe subqueries of the flock (the
//!    paper counts 8 of 14 nontrivial subsets) with their parameter
//!    sets.
//! 2. The Ex. 4.1 trade-off: execution time of the direct plan, the
//!    `okS`-only and `okM`-only plans, and the full Fig. 5 plan, across
//!    rare-value densities. §3.2's prediction: prefilters pay off when
//!    rare symptoms/medicines are dense and are wasted work when almost
//!    everything passes support.

use std::collections::BTreeSet;

use qf_core::{direct_plan, execute_plan, param_set_plan, JoinOrderStrategy, QueryFlock};
use qf_datalog::safe_subqueries;
use qf_storage::Symbol;

use crate::table::{fmt_duration, Table};
use crate::timing::time_median;
use crate::workloads::{medical_data, PAPER_THRESHOLD};
use crate::Scale;

/// The Fig. 3 flock.
pub fn medical_flock(threshold: i64) -> QueryFlock {
    QueryFlock::with_support(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
         diagnoses(P,D) AND NOT causes(D,$s)",
        threshold,
    )
    .expect("static flock text")
}

/// Run E3.
pub fn run(scale: Scale) -> Vec<Table> {
    // Table 1: the Ex. 3.2 safe-subquery enumeration.
    let flock = medical_flock(PAPER_THRESHOLD);
    let rule = flock.single_rule().unwrap();
    let subs = safe_subqueries(rule);
    let mut enumeration = Table::new(
        "E3a (Ex. 3.2): safe subqueries of the side-effects flock",
        &["#", "subquery", "params"],
    );
    enumeration.note(format!(
        "{} of the 14 nontrivial subgoal subsets are safe (paper: 8).",
        subs.len()
    ));
    for (i, s) in subs.iter().enumerate() {
        let params: Vec<String> = s.params().iter().map(|p| format!("${p}")).collect();
        enumeration.row(vec![(i + 1).to_string(), s.to_string(), params.join(",")]);
    }
    assert_eq!(subs.len(), 8, "Ex. 3.2 count");

    // Table 2: plan trade-offs across rare-value density.
    let rare_fractions: &[f64] = match scale {
        Scale::Small => &[0.1, 0.5],
        Scale::Full => &[0.05, 0.3, 0.6],
    };
    let mut tradeoff = Table::new(
        "E3b (Ex. 4.1, Fig. 5): plan execution time vs. rare-value density",
        &[
            "rare fraction",
            "direct",
            "okS only",
            "okM only",
            "fig5 (okS+okM)",
            "results",
        ],
    );
    tradeoff.note(
        "§3.2: prefiltering rare symptoms/medicines helps in proportion to \
         how much of the data is rare."
            .to_string(),
    );

    let s_set: BTreeSet<Symbol> = [Symbol::intern("s")].into_iter().collect();
    let m_set: BTreeSet<Symbol> = [Symbol::intern("m")].into_iter().collect();
    for &rare in rare_fractions {
        let data = medical_data(scale, rare);
        let db = &data.db;
        let p_direct = direct_plan(&flock).unwrap();
        let p_s = param_set_plan(&flock, db, std::slice::from_ref(&s_set)).unwrap();
        let p_m = param_set_plan(&flock, db, std::slice::from_ref(&m_set)).unwrap();
        let p_both = param_set_plan(&flock, db, &[s_set.clone(), m_set.clone()]).unwrap();

        let mut times = Vec::new();
        let mut results = Vec::new();
        for plan in [&p_direct, &p_s, &p_m, &p_both] {
            let (run, t) = time_median(3, || {
                execute_plan(plan, db, JoinOrderStrategy::Greedy).unwrap()
            });
            times.push(t);
            results.push(run.result);
        }
        for r in &results[1..] {
            assert_eq!(results[0].tuples(), r.tuples(), "plans disagree");
        }
        tradeoff.row(vec![
            format!("{rare:.2}"),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            fmt_duration(times[2]),
            fmt_duration(times[3]),
            results[0].len().to_string(),
        ]);
    }
    vec![enumeration, tradeoff]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 8);
        assert_eq!(tables[1].rows.len(), 2);
    }
}
