//! **E2 — Fig. 2.** The market-basket problem as a query flock. Three
//! computations of the same answer must coincide exactly:
//!
//! 1. the flock evaluated directly (Fig. 1/Fig. 2 semantics);
//! 2. the flock evaluated through an a-priori query plan;
//! 3. the classic file-based a-priori miner at level 2 (\[AS94\]).
//!
//! This is the paper's framing made executable: association-rule mining
//! *is* a query flock, and the flock machinery reproduces the classic
//! algorithm's output tuple for tuple.

use qf_core::{evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy, QueryFlock};
use qf_mine::mine_apriori;
use qf_storage::Value;

use crate::table::{fmt_duration, Table};
use crate::timing::time_median;
use crate::workloads::basket_data;
use crate::Scale;

/// Run E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let data = basket_data(scale);
    let mut db = qf_storage::Database::new();
    db.insert(data.baskets.clone());
    let thresholds: &[i64] = match scale {
        Scale::Small => &[10, 20],
        Scale::Full => &[20, 40, 80],
    };
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();

    let mut table = Table::new(
        "E2 (Fig. 2): market-basket flock vs. classic a-priori",
        &[
            "support",
            "flock direct",
            "flock plan",
            "classic apriori",
            "pairs",
            "agree",
        ],
    );
    table.note(format!(
        "Quest-style baskets: {} transactions, {} items",
        txns.len(),
        data.baskets.distinct(1)
    ));

    for &threshold in thresholds {
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        )
        .unwrap();
        let (direct, direct_t) = time_median(3, || {
            evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        let plan = single_param_plan(&flock, &db).unwrap();
        let (planned, plan_t) = time_median(3, || {
            execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        let (classic, classic_t) = time_median(3, || mine_apriori(&txns, threshold as u64, 2));

        // Convert classic level-2 itemsets to the flock's tuple form.
        let mut classic_pairs: Vec<(Value, Value)> = classic
            .frequent_k(2)
            .into_iter()
            .map(|(set, _)| {
                (
                    Value::str(&qf_datagen::baskets::item_name(set[0] as usize)),
                    Value::str(&qf_datagen::baskets::item_name(set[1] as usize)),
                )
            })
            .collect();
        classic_pairs.sort();
        let flock_pairs: Vec<(Value, Value)> =
            direct.iter().map(|t| (t.get(0), t.get(1))).collect();
        let agree = direct.tuples() == planned.result.tuples() && flock_pairs == classic_pairs;
        assert!(
            agree,
            "the three computations disagree at support {threshold}"
        );

        table.row(vec![
            threshold.to_string(),
            fmt_duration(direct_t),
            fmt_duration(plan_t),
            fmt_duration(classic_t),
            direct.len().to_string(),
            "yes".to_string(),
        ]);
    }
    table.note(
        "`agree` asserts all three produce identical pair sets — the flock \
         framework generalizes a-priori without changing its answers (§1.4 \
         expects the file algorithm to be fastest)."
            .to_string(),
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_agrees() {
        let tables = run(Scale::Small);
        assert!(tables[0].rows.iter().all(|r| r[5] == "yes"));
    }
}
