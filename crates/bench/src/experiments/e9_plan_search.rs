//! **E9 — §4.2–4.3 ablation.** The plan search itself.
//!
//! Three questions the paper raises but cannot measure without an
//! implementation:
//!
//! 1. **Cost-model fidelity** — for every enumerated plan, does the
//!    [`estimate_plan_cost`] ranking agree with actual execution?
//! 2. **Search strategy value** — exhaustive enumeration vs. the
//!    Fig. 5 heuristic vs. dynamic: answer quality and search price.
//! 3. **Plan spread** — how much is at stake between the best and worst
//!    legal plan (if the spread is small, none of §4 matters).

use qf_core::{
    best_plan, enumerate_plans, estimate_plan_cost, evaluate_dynamic, execute_plan,
    single_param_plan, DynamicConfig, JoinOrderStrategy,
};

use crate::experiments::e3_medical_plans::medical_flock;
use crate::table::{fmt_duration, Table};
use crate::timing::{time, time_median};
use crate::workloads::{medical_data, PAPER_THRESHOLD};
use crate::Scale;

/// Run E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let data = medical_data(scale, 0.3);
    let db = &data.db;
    let flock = medical_flock(PAPER_THRESHOLD);

    // 1. Every enumerated plan: estimated vs. actual.
    let plans = enumerate_plans(&flock, db).unwrap();
    let mut fidelity = Table::new(
        "E9a (§4.2): cost model vs. reality over the enumerated plan space",
        &[
            "plan (reductions)",
            "est. cost (tuples)",
            "actual tuples",
            "actual time",
        ],
    );
    let mut measured: Vec<(String, f64, usize, std::time::Duration)> = Vec::new();
    for plan in &plans {
        let label = if plan.len() == 1 {
            "direct".to_string()
        } else {
            plan.reduction_names().join("+")
        };
        let est = estimate_plan_cost(plan, db, JoinOrderStrategy::Greedy).unwrap();
        let (run, t) = time_median(3, || {
            execute_plan(plan, db, JoinOrderStrategy::Greedy).unwrap()
        });
        measured.push((label, est, run.total_answer_tuples(), t));
    }
    for (label, est, tuples, t) in &measured {
        fidelity.row(vec![
            label.clone(),
            format!("{est:.0}"),
            tuples.to_string(),
            fmt_duration(*t),
        ]);
    }
    let est_argmin = measured
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
        .clone();
    let time_argmin = measured.iter().min_by_key(|m| m.3).unwrap().0.clone();
    let worst = measured.iter().max_by_key(|m| m.3).unwrap();
    let best = measured.iter().min_by_key(|m| m.3).unwrap();
    fidelity.note(format!(
        "cost-model pick: `{est_argmin}`; actual fastest: `{time_argmin}`; \
         best/worst actual spread: {:.1}x",
        worst.3.as_secs_f64() / best.3.as_secs_f64().max(1e-9)
    ));

    // 2. Search strategies.
    let mut strategies = Table::new(
        "E9b (§4.3): search strategy vs. resulting execution",
        &["strategy", "search time", "chosen plan", "execution time"],
    );
    let ((chosen, _cost), search_t) = {
        let (r, t) = time(|| best_plan(&flock, db).unwrap());
        (r, t)
    };
    let (_, exec_t) = time_median(3, || {
        execute_plan(&chosen, db, JoinOrderStrategy::Greedy).unwrap()
    });
    strategies.row(vec![
        "exhaustive + cost model".to_string(),
        fmt_duration(search_t),
        if chosen.len() == 1 {
            "direct".into()
        } else {
            chosen.reduction_names().join("+")
        },
        fmt_duration(exec_t),
    ]);

    let (heuristic, heuristic_search_t) = time(|| single_param_plan(&flock, db).unwrap());
    let (_, heuristic_exec_t) = time_median(3, || {
        execute_plan(&heuristic, db, JoinOrderStrategy::Greedy).unwrap()
    });
    strategies.row(vec![
        "fig. 5 heuristic (singletons)".to_string(),
        fmt_duration(heuristic_search_t),
        heuristic.reduction_names().join("+"),
        fmt_duration(heuristic_exec_t),
    ]);

    let (report, dynamic_t) = time_median(3, || {
        evaluate_dynamic(&flock, db, &DynamicConfig::default()).unwrap()
    });
    strategies.row(vec![
        "dynamic (§4.4)".to_string(),
        "0 (online)".to_string(),
        format!(
            "{} voluntary filters",
            report
                .decisions
                .iter()
                .filter(|d| d.filtered && d.reason != qf_core::DecisionReason::FinalMandatory)
                .count()
        ),
        fmt_duration(dynamic_t),
    ]);

    vec![fidelity, strategies]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        // Params {m,s} → up to 3 reduction options → 8 plans.
        assert_eq!(tables[0].rows.len(), 8);
        assert_eq!(tables[1].rows.len(), 3);
    }
}
