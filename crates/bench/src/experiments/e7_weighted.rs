//! **E7 — Fig. 10 (§5 future work).** The weighted market-basket flock:
//! a monotone `SUM` filter over basket importance weights.
//!
//! The claim to reproduce: "the techniques described in this paper apply
//! directly to any monotone filter condition." Concretely, the a-priori
//! prefilter (`ok_1`/`ok_2` by *summed weight*) must leave the answer
//! unchanged and still pay off on skewed data — and the machinery must
//! *reject* pruning when monotonicity breaks (negative weights).

use qf_core::{
    evaluate_direct, execute_plan, single_param_plan, FlockError, JoinOrderStrategy, QueryFlock,
};
use qf_storage::{Relation, Schema, Value};

use crate::table::{fmt_duration, Table};
use crate::timing::{speedup, time_median};
use crate::workloads::weighted_basket_db;
use crate::Scale;

/// The Fig. 10 flock.
pub fn weighted_flock(threshold: i64) -> QueryFlock {
    QueryFlock::parse(&format!(
        "QUERY:
         answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND importance(B,W)
         FILTER: SUM(answer.W) >= {threshold}"
    ))
    .expect("static flock text")
}

/// Run E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let db = weighted_basket_db(scale);
    let thresholds: &[i64] = match scale {
        Scale::Small => &[100, 300],
        Scale::Full => &[300, 1000, 3000],
    };

    let mut table = Table::new(
        "E7 (Fig. 10): weighted baskets under a monotone SUM filter",
        &[
            "SUM threshold",
            "direct",
            "a-priori plan",
            "speedup",
            "pairs",
        ],
    );
    table.note(
        "weights are non-negative (precondition for SUM monotonicity, §5); \
         the prefilters restrict each item by summed basket weight."
            .to_string(),
    );

    for &threshold in thresholds {
        let flock = weighted_flock(threshold);
        let (direct, direct_t) = time_median(3, || {
            evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        let plan = single_param_plan(&flock, &db).unwrap();
        let (planned, plan_t) = time_median(3, || {
            execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        assert_eq!(direct.tuples(), planned.result.tuples());
        table.row(vec![
            threshold.to_string(),
            fmt_duration(direct_t),
            fmt_duration(plan_t),
            format!("{:.1}x", speedup(direct_t, plan_t)),
            direct.len().to_string(),
        ]);
    }

    // Monotonicity guard: a negative weight must abort evaluation.
    let mut guarded = db.clone();
    let mut rows: Vec<Vec<Value>> = guarded
        .get("importance")
        .unwrap()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();
    rows[0][1] = Value::int(-5);
    guarded.insert(Relation::from_rows(
        Schema::new("importance", &["bid", "w"]),
        rows,
    ));
    let err =
        evaluate_direct(&weighted_flock(100), &guarded, JoinOrderStrategy::Greedy).unwrap_err();
    assert!(matches!(err, FlockError::NegativeWeight { .. }));
    table.note(
        "guard check: injecting a negative weight makes evaluation fail with \
         NegativeWeight instead of silently returning unsound prunes — \
         verified on this run."
            .to_string(),
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs() {
        let tables = run(Scale::Small);
        assert_eq!(tables[0].rows.len(), 2);
    }
}
