//! **E6 — Figs. 8 & 9, Ex. 4.4.** Dynamic selection of filter steps.
//!
//! The static plans of E3 must be chosen before seeing any data; the
//! §4.4 strategy decides *during* execution from observed
//! tuples-per-assignment ratios. We sweep data regimes (rare-value
//! density) and compare the dynamic evaluator against every static
//! plan. The shape to verify: the dynamic strategy tracks the best
//! static plan in each regime — filtering early on skewed data,
//! skipping useless filters on dense data — without being told which
//! regime it is in.

use std::collections::BTreeSet;

use qf_core::{
    direct_plan, evaluate_dynamic, execute_plan, param_set_plan, DynamicConfig, JoinOrderStrategy,
};
use qf_storage::Symbol;

use crate::experiments::e3_medical_plans::medical_flock;
use crate::table::{fmt_duration, Table};
use crate::timing::time_median;
use crate::workloads::{medical_data, PAPER_THRESHOLD};
use crate::Scale;

/// Run E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let rare_fractions: &[f64] = match scale {
        Scale::Small => &[0.1, 0.6],
        Scale::Full => &[0.05, 0.3, 0.6],
    };
    let flock = medical_flock(PAPER_THRESHOLD);
    let s_set: BTreeSet<Symbol> = [Symbol::intern("s")].into_iter().collect();
    let m_set: BTreeSet<Symbol> = [Symbol::intern("m")].into_iter().collect();

    let mut table = Table::new(
        "E6 (Figs. 8–9, Ex. 4.4): dynamic filter selection vs. static plans",
        &[
            "rare fraction",
            "direct",
            "best static",
            "dynamic",
            "dyn/best",
            "filters applied",
        ],
    );
    table.note(
        "best static = min over {direct, okS, okM, okS+okM}; `filters \
         applied` counts the dynamic evaluator's voluntary FILTER decisions \
         (the final mandatory filter is excluded)."
            .to_string(),
    );

    let mut decisions_table = Table::new(
        "E6b: dynamic decision trace (highest rare fraction)",
        &[
            "after subgoal",
            "params",
            "tuples",
            "assignments",
            "ratio",
            "action",
        ],
    );

    for (ri, &rare) in rare_fractions.iter().enumerate() {
        let data = medical_data(scale, rare);
        let db = &data.db;

        let mut static_times = Vec::new();
        let mut reference: Option<qf_storage::Relation> = None;
        let plans = [
            direct_plan(&flock).unwrap(),
            param_set_plan(&flock, db, std::slice::from_ref(&s_set)).unwrap(),
            param_set_plan(&flock, db, std::slice::from_ref(&m_set)).unwrap(),
            param_set_plan(&flock, db, &[s_set.clone(), m_set.clone()]).unwrap(),
        ];
        for plan in &plans {
            let (run, t) = time_median(3, || {
                execute_plan(plan, db, JoinOrderStrategy::Greedy).unwrap()
            });
            static_times.push(t);
            match &reference {
                None => reference = Some(run.result),
                Some(r) => assert_eq!(r.tuples(), run.result.tuples()),
            }
        }
        let direct_t = static_times[0];
        let best_static = *static_times.iter().min().unwrap();

        let (report, dynamic_t) = time_median(3, || {
            evaluate_dynamic(&flock, db, &DynamicConfig::default()).unwrap()
        });
        assert_eq!(
            reference.as_ref().unwrap().tuples(),
            report.result.tuples(),
            "dynamic evaluation changed the answer"
        );
        let voluntary_filters = report
            .decisions
            .iter()
            .filter(|d| d.filtered && d.reason != qf_core::DecisionReason::FinalMandatory)
            .count();

        table.row(vec![
            format!("{rare:.2}"),
            fmt_duration(direct_t),
            fmt_duration(best_static),
            fmt_duration(dynamic_t),
            format!(
                "{:.2}",
                dynamic_t.as_secs_f64() / best_static.as_secs_f64().max(1e-9)
            ),
            voluntary_filters.to_string(),
        ]);

        // Record the trace for the last (most skewed) regime.
        if ri == rare_fractions.len() - 1 {
            for d in &report.decisions {
                decisions_table.row(vec![
                    d.after_subgoal.clone(),
                    d.param_set.join(","),
                    d.tuples.to_string(),
                    d.assignments.to_string(),
                    format!("{:.2}", d.ratio),
                    if d.filtered {
                        format!("FILTER ({:?}) → {}", d.reason, d.survivors.unwrap_or(0))
                    } else {
                        format!("skip ({:?})", d.reason)
                    },
                ]);
            }
        }
    }
    vec![table, decisions_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_dynamic_is_competitive() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        // Dynamic should stay within 4x of the best static plan at both
        // regimes (it usually matches; the bound is deliberately loose
        // for CI noise).
        for row in &tables[0].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 4.0, "dynamic far off best static: {row:?}");
        }
        assert!(!tables[1].rows.is_empty());
    }
}
