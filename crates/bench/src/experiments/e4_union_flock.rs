//! **E4 — Fig. 4, Ex. 3.3.** The strongly-connected-words flock: a
//! union of three extended conjunctive queries. The Ex. 3.3
//! optimization prefilters word `$1` (and `$2`) by the **union of
//! per-branch safe subqueries** — a word qualifies only if its summed
//! appearances across title/anchor/anchor-target reach support.
//!
//! Measured: direct union evaluation vs. the union-prefiltered plan,
//! with result equality asserted and the planted strongly-connected
//! pairs recovered.

use std::collections::BTreeSet;

use qf_core::{evaluate_direct, execute_plan, param_set_plan, JoinOrderStrategy, QueryFlock};
use qf_storage::{Symbol, Value};

use crate::table::{fmt_duration, Table};
use crate::timing::{speedup, time_median};
use crate::workloads::web_data;
use crate::Scale;

/// The Fig. 4 flock.
pub fn fig4_flock(threshold: i64) -> QueryFlock {
    QueryFlock::parse(&format!(
        "QUERY:
         answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
         FILTER: COUNT(answer(*)) >= {threshold}"
    ))
    .expect("static flock text")
}

/// Run E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let data = web_data(scale);
    let db = &data.db;
    let thresholds: &[i64] = match scale {
        Scale::Small => &[5, 10],
        Scale::Full => &[10, 20, 40],
    };

    let mut table = Table::new(
        "E4 (Fig. 4, Ex. 3.3): union flock for strongly connected words",
        &[
            "support",
            "direct union",
            "union-prefiltered",
            "speedup",
            "pairs",
            "planted found",
        ],
    );
    table.note(format!(
        "corpus: {} title tuples, {} anchor tuples, {} links; {} planted pairs",
        db.get("inTitle").unwrap().len(),
        db.get("inAnchor").unwrap().len(),
        db.get("link").unwrap().len(),
        data.planted.len()
    ));
    table.note(
        "The prefilter is the Ex. 3.3 union of one safe subquery per branch: \
         a word's title + anchor + anchor-target counts must jointly reach \
         support."
            .to_string(),
    );

    let p1: BTreeSet<Symbol> = [Symbol::intern("1")].into_iter().collect();
    let p2: BTreeSet<Symbol> = [Symbol::intern("2")].into_iter().collect();
    for &threshold in thresholds {
        let flock = fig4_flock(threshold);
        let (direct, direct_t) = time_median(3, || {
            evaluate_direct(&flock, db, JoinOrderStrategy::Greedy).unwrap()
        });
        let plan = param_set_plan(&flock, db, &[p1.clone(), p2.clone()]).unwrap();
        let (planned, plan_t) = time_median(3, || {
            execute_plan(&plan, db, JoinOrderStrategy::Greedy).unwrap()
        });
        assert_eq!(direct.tuples(), planned.result.tuples());

        let planted_found = data
            .planted
            .iter()
            .filter(|(a, b)| {
                direct
                    .iter()
                    .any(|t| t.get(0) == Value::str(a) && t.get(1) == Value::str(b))
            })
            .count();
        table.row(vec![
            threshold.to_string(),
            fmt_duration(direct_t),
            fmt_duration(plan_t),
            format!("{:.1}x", speedup(direct_t, plan_t)),
            direct.len().to_string(),
            format!("{planted_found}/{}", data.planted.len()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs_and_finds_planted() {
        let tables = run(Scale::Small);
        let first = &tables[0].rows[0];
        assert_eq!(first[5], "3/3", "planted pairs must be mined: {first:?}");
    }
}
