//! **E1 — the §1.3 claim (Fig. 1).** "Rewriting the query of Fig. 1 to
//! first find those items that appeared in at least 20 baskets …
//! resulted in a 20-fold speedup" on word occurrences in newspaper
//! articles.
//!
//! We run the Fig. 2 pair flock over a Zipf word corpus two ways:
//!
//! * **direct** — one monolithic join-group-filter plan with the
//!   subgoal order exactly as written (what a conventional optimizer
//!   does with the Fig. 1 SQL);
//! * **a-priori rewrite** — the Fig. 5-shaped plan: prefilter each
//!   parameter by support, then the restricted join.
//!
//! The absolute ratio depends on engine and data; the *shape* to check
//! is an order-of-magnitude win that grows with threshold skew.

use qf_core::{evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy, QueryFlock};

use crate::table::{fmt_duration, Table};
use crate::timing::{speedup, time_median};
use crate::workloads::words_db;
use crate::Scale;

/// The Fig. 2 flock at a given support threshold.
pub fn pair_flock(threshold: i64) -> QueryFlock {
    QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        threshold,
    )
    .expect("static flock text")
}

/// Run E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let db = words_db(scale);
    let thresholds: &[i64] = match scale {
        Scale::Small => &[5, 10, 20],
        Scale::Full => &[10, 20, 40, 80],
    };
    let reps = match scale {
        Scale::Small => 3,
        Scale::Full => 3,
    };

    let mut table = Table::new(
        "E1 (§1.3, Fig. 1): a-priori rewrite speedup on Zipf word pairs",
        &["support", "direct", "rewritten", "speedup", "pairs found"],
    );
    table.note(format!(
        "baskets relation: {} (doc,word) tuples, {} distinct words",
        db.get("baskets").unwrap().len(),
        db.get("baskets").unwrap().distinct(1)
    ));
    table.note(
        "direct = Fig. 1 shape, join order as written; rewritten = ok_1/ok_2 \
         support prefilters, then the restricted join ordered greedily from \
         the materialized reduction statistics (the paper's rewrite joins \
         the frequent-item set with baskets first, §1.3)."
            .to_string(),
    );

    for &threshold in thresholds {
        let flock = pair_flock(threshold);
        let (direct_result, direct_t) = time_median(reps, || {
            evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap()
        });
        let plan = single_param_plan(&flock, &db).unwrap();
        let (rewritten, rewritten_t) = time_median(reps, || {
            execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        assert_eq!(
            direct_result.tuples(),
            rewritten.result.tuples(),
            "rewrite must not change the answer"
        );
        table.row(vec![
            threshold.to_string(),
            fmt_duration(direct_t),
            fmt_duration(rewritten_t),
            format!("{:.1}x", speedup(direct_t, rewritten_t)),
            direct_result.len().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs_and_speeds_up() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        // At the highest threshold the rewrite must win clearly.
        let last = tables[0].rows.last().unwrap();
        let speedup: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 1.5, "expected a-priori win, got {speedup}x");
    }
}
