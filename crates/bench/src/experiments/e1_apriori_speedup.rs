//! **E1 — the §1.3 claim (Fig. 1).** "Rewriting the query of Fig. 1 to
//! first find those items that appeared in at least 20 baskets …
//! resulted in a 20-fold speedup" on word occurrences in newspaper
//! articles.
//!
//! We run the Fig. 2 pair flock over a Zipf word corpus two ways:
//!
//! * **direct** — one monolithic join-group-filter plan with the
//!   subgoal order exactly as written (what a conventional optimizer
//!   does with the Fig. 1 SQL);
//! * **a-priori rewrite** — the Fig. 5-shaped plan: prefilter each
//!   parameter by support, then the restricted join.
//!
//! The absolute ratio depends on engine and data; the *shape* to check
//! is an order-of-magnitude win that grows with threshold skew.

use qf_core::{
    default_threads, evaluate_direct, execute_plan, execute_plan_with, single_param_plan,
    ExecContext, JoinOrderStrategy, QueryFlock,
};

use crate::table::{fmt_duration, Table};
use crate::timing::{speedup, time_median};
use crate::workloads::words_db;
use crate::Scale;

/// The Fig. 2 flock at a given support threshold.
pub fn pair_flock(threshold: i64) -> QueryFlock {
    QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        threshold,
    )
    .expect("static flock text")
}

/// Run E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let db = words_db(scale);
    let thresholds: &[i64] = match scale {
        Scale::Small => &[5, 10, 20],
        Scale::Full => &[10, 20, 40, 80],
    };
    let reps = match scale {
        Scale::Small => 3,
        Scale::Full => 3,
    };

    let mut table = Table::new(
        "E1 (§1.3, Fig. 1): a-priori rewrite speedup on Zipf word pairs",
        &["support", "direct", "rewritten", "speedup", "pairs found"],
    );
    table.note(format!(
        "baskets relation: {} (doc,word) tuples, {} distinct words",
        db.get("baskets").unwrap().len(),
        db.get("baskets").unwrap().distinct(1)
    ));
    table.note(
        "direct = Fig. 1 shape, join order as written; rewritten = ok_1/ok_2 \
         support prefilters, then the restricted join ordered greedily from \
         the materialized reduction statistics (the paper's rewrite joins \
         the frequent-item set with baskets first, §1.3)."
            .to_string(),
    );

    for &threshold in thresholds {
        let flock = pair_flock(threshold);
        let (direct_result, direct_t) = time_median(reps, || {
            evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap()
        });
        let plan = single_param_plan(&flock, &db).unwrap();
        let (rewritten, rewritten_t) = time_median(reps, || {
            execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap()
        });
        assert_eq!(
            direct_result.tuples(),
            rewritten.result.tuples(),
            "rewrite must not change the answer"
        );
        table.row(vec![
            threshold.to_string(),
            fmt_duration(direct_t),
            fmt_duration(rewritten_t),
            format!("{:.1}x", speedup(direct_t, rewritten_t)),
            direct_result.len().to_string(),
        ]);
    }
    vec![table, thread_scaling_table(scale)]
}

/// Thread-scaling companion table: the rewritten plan pinned to one
/// worker vs. the configured parallelism ([`default_threads`]). On a
/// single-core host the two columns coincide (the pool never spawns
/// more workers than can run).
fn thread_scaling_table(scale: Scale) -> Table {
    let db = words_db(scale);
    let n = default_threads();
    let mut table = Table::new(
        "E1b: rewritten-plan thread scaling (1 thread vs. configured)",
        &[
            "support",
            "1 thread",
            &format!("{n} thread(s)"),
            "speedup",
            "pairs found",
        ],
    );
    table.note(format!(
        "configured parallelism: {n} (QF_THREADS or available cores); \
         partition-parallel join probe, select, and per-worker aggregate \
         accumulators, identical results at every thread count"
    ));
    let thresholds: &[i64] = match scale {
        Scale::Small => &[5, 20],
        Scale::Full => &[10, 40],
    };
    for &threshold in thresholds {
        let flock = pair_flock(threshold);
        let plan = single_param_plan(&flock, &db).unwrap();
        let one_ctx = ExecContext::unbounded().with_threads(1);
        let (one_result, one_t) = time_median(3, || {
            execute_plan_with(&plan, &db, JoinOrderStrategy::Greedy, &one_ctx).unwrap()
        });
        let many_ctx = ExecContext::unbounded().with_threads(n);
        let (many_result, many_t) = time_median(3, || {
            execute_plan_with(&plan, &db, JoinOrderStrategy::Greedy, &many_ctx).unwrap()
        });
        assert_eq!(
            one_result.result.tuples(),
            many_result.result.tuples(),
            "thread count must not change the answer"
        );
        table.row(vec![
            threshold.to_string(),
            fmt_duration(one_t),
            fmt_duration(many_t),
            format!("{:.1}x", speedup(one_t, many_t)),
            one_result.result.len().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_runs_and_speeds_up() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 3);
        // At the highest threshold the rewrite must win clearly.
        let last = tables[0].rows.last().unwrap();
        let speedup: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 1.5, "expected a-priori win, got {speedup}x");
        // The scaling table always reports both thread columns.
        assert_eq!(tables[1].rows.len(), 2);
    }

    /// On a genuinely multi-core host, the partition-parallel engine
    /// must beat its own single-thread run by ≥1.5× on the direct
    /// (join-heavy) evaluation of a low-threshold pair flock. Skipped
    /// where the hardware cannot run two workers at once — `QF_THREADS`
    /// cannot conjure cores.
    #[test]
    fn multicore_parallel_speedup() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 2 {
            return;
        }
        let db = crate::workloads::words_db(Scale::Small);
        let flock = pair_flock(5);
        let plan = qf_core::direct_plan(&flock).unwrap();
        let threads = cores.min(4);
        let one_ctx = ExecContext::unbounded().with_threads(1);
        let (one_result, one_t) = crate::timing::time_median(3, || {
            execute_plan_with(&plan, &db, JoinOrderStrategy::Greedy, &one_ctx).unwrap()
        });
        let many_ctx = ExecContext::unbounded().with_threads(threads);
        let (many_result, many_t) = crate::timing::time_median(3, || {
            execute_plan_with(&plan, &db, JoinOrderStrategy::Greedy, &many_ctx).unwrap()
        });
        assert_eq!(one_result.result.tuples(), many_result.result.tuples());
        let s = crate::timing::speedup(one_t, many_t);
        assert!(
            s >= 1.5,
            "expected >=1.5x parallel speedup on {threads} of {cores} cores, got {s:.2}x \
             ({one_t:?} -> {many_t:?})"
        );
    }
}
