//! Criterion bench for E8 (§4.3 option 2): levelwise flock mining vs.
//! the classic file-based a-priori algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::workloads::basket_data;
use qf_bench::Scale;
use qf_mine::{mine_apriori, mine_flockwise};

fn bench(c: &mut Criterion) {
    let data = basket_data(Scale::Small);
    let mut db = qf_storage::Database::new();
    db.insert(data.baskets.clone());
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();

    let mut group = c.benchmark_group("levelwise");
    group.sample_size(10);
    group.bench_function("flock_sequence_k3", |b| {
        b.iter(|| mine_flockwise(&db, 15, 3).unwrap())
    });
    group.bench_function("classic_apriori_k3", |b| {
        b.iter(|| mine_apriori(&txns, 15, 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
