//! Criterion bench for E5 (Figs. 6–7): the path flock at n=3, direct
//! vs. the (n+1)-step chain plan.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e5_path_chain::path_flock;
use qf_bench::workloads::graph_db;
use qf_bench::Scale;
use qf_core::{chain_plan, evaluate_direct, execute_plan, JoinOrderStrategy};

fn bench(c: &mut Criterion) {
    let db = graph_db(Scale::Small);
    let flock = path_flock(3, 10);
    let plan = chain_plan(&flock).unwrap();

    let mut group = c.benchmark_group("fig7_path_plan");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap())
    });
    group.bench_function("chain_plan", |b| {
        b.iter(|| execute_plan(&plan, &db, JoinOrderStrategy::AsWritten).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
