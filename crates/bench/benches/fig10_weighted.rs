//! Criterion bench for E7 (Fig. 10): the monotone-SUM weighted basket
//! flock, direct vs. the a-priori plan.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e7_weighted::weighted_flock;
use qf_bench::workloads::weighted_basket_db;
use qf_bench::Scale;
use qf_core::{evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy};

fn bench(c: &mut Criterion) {
    let db = weighted_basket_db(Scale::Small);
    let flock = weighted_flock(300);
    let plan = single_param_plan(&flock, &db).unwrap();

    let mut group = c.benchmark_group("fig10_weighted");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("apriori_plan", |b| {
        b.iter(|| execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
