//! Criterion bench for E3 (Figs. 3 & 5): the four static plans for the
//! medical side-effects flock.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e3_medical_plans::medical_flock;
use qf_bench::workloads::{medical_data, PAPER_THRESHOLD};
use qf_bench::Scale;
use qf_core::{
    default_threads, direct_plan, execute_plan, execute_plan_with, param_set_plan, ExecContext,
    JoinOrderStrategy,
};
use qf_storage::Symbol;

fn bench(c: &mut Criterion) {
    let data = medical_data(Scale::Small, 0.3);
    let db = &data.db;
    let flock = medical_flock(PAPER_THRESHOLD);
    let s: BTreeSet<Symbol> = [Symbol::intern("s")].into_iter().collect();
    let m: BTreeSet<Symbol> = [Symbol::intern("m")].into_iter().collect();
    let plans = [
        ("direct", direct_plan(&flock).unwrap()),
        (
            "okS",
            param_set_plan(&flock, db, std::slice::from_ref(&s)).unwrap(),
        ),
        (
            "okM",
            param_set_plan(&flock, db, std::slice::from_ref(&m)).unwrap(),
        ),
        (
            "fig5_okS_okM",
            param_set_plan(&flock, db, &[s.clone(), m.clone()]).unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("fig5_medical_plan");
    group.sample_size(10);
    for (name, plan) in &plans {
        group.bench_function(name, |b| {
            b.iter(|| execute_plan(plan, db, JoinOrderStrategy::Greedy).unwrap())
        });
    }
    // Thread-scaling variants of the paper's Fig. 5 plan: the same plan
    // pinned to one worker and to the configured parallelism.
    let fig5 = &plans[3].1;
    let n = default_threads();
    for (name, threads) in [
        ("fig5_1thread".to_string(), 1),
        (format!("fig5_{n}threads"), n),
    ] {
        let ctx = ExecContext::unbounded().with_threads(threads);
        group.bench_function(&name, |b| {
            b.iter(|| execute_plan_with(fig5, db, JoinOrderStrategy::Greedy, &ctx).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
