//! Criterion bench for E4 (Fig. 4): the union flock, direct vs. the
//! Ex. 3.3 union-of-subqueries prefilter plan.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e4_union_flock::fig4_flock;
use qf_bench::workloads::web_data;
use qf_bench::Scale;
use qf_core::{evaluate_direct, execute_plan, param_set_plan, JoinOrderStrategy};
use qf_storage::Symbol;

fn bench(c: &mut Criterion) {
    let data = web_data(Scale::Small);
    let db = &data.db;
    let flock = fig4_flock(10);
    let p1: BTreeSet<Symbol> = [Symbol::intern("1")].into_iter().collect();
    let p2: BTreeSet<Symbol> = [Symbol::intern("2")].into_iter().collect();
    let plan = param_set_plan(&flock, db, &[p1, p2]).unwrap();

    let mut group = c.benchmark_group("fig4_union_flock");
    group.sample_size(10);
    group.bench_function("direct_union", |b| {
        b.iter(|| evaluate_direct(&flock, db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("union_prefiltered", |b| {
        b.iter(|| execute_plan(&plan, db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
