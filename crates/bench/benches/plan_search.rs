//! Criterion bench for E9 (§4.2–4.3 ablation): the price of plan
//! search — exhaustive enumeration + cost model vs. the Fig. 5
//! heuristic — and the cost model itself.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e3_medical_plans::medical_flock;
use qf_bench::workloads::{medical_data, PAPER_THRESHOLD};
use qf_bench::Scale;
use qf_core::{best_plan, direct_plan, estimate_plan_cost, single_param_plan, JoinOrderStrategy};

fn bench(c: &mut Criterion) {
    let data = medical_data(Scale::Small, 0.3);
    let db = &data.db;
    let flock = medical_flock(PAPER_THRESHOLD);
    let plan = direct_plan(&flock).unwrap();

    let mut group = c.benchmark_group("plan_search");
    group.sample_size(10);
    group.bench_function("exhaustive_best_plan", |b| {
        b.iter(|| best_plan(&flock, db).unwrap())
    });
    group.bench_function("fig5_heuristic", |b| {
        b.iter(|| single_param_plan(&flock, db).unwrap())
    });
    group.bench_function("cost_model_single_plan", |b| {
        b.iter(|| estimate_plan_cost(&plan, db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
