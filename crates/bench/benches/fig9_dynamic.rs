//! Criterion bench for E6 (Figs. 8–9): dynamic filter selection vs. the
//! static Fig. 5 plan and the direct plan.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e3_medical_plans::medical_flock;
use qf_bench::workloads::{medical_data, PAPER_THRESHOLD};
use qf_bench::Scale;
use qf_core::{
    direct_plan, evaluate_dynamic, execute_plan, param_set_plan, DynamicConfig, JoinOrderStrategy,
};
use qf_storage::Symbol;

fn bench(c: &mut Criterion) {
    let data = medical_data(Scale::Small, 0.5);
    let db = &data.db;
    let flock = medical_flock(PAPER_THRESHOLD);
    let s: BTreeSet<Symbol> = [Symbol::intern("s")].into_iter().collect();
    let m: BTreeSet<Symbol> = [Symbol::intern("m")].into_iter().collect();
    let static_plan = param_set_plan(&flock, db, &[s, m]).unwrap();
    let direct = direct_plan(&flock).unwrap();
    let config = DynamicConfig::default();

    let mut group = c.benchmark_group("fig9_dynamic");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| execute_plan(&direct, db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("static_fig5", |b| {
        b.iter(|| execute_plan(&static_plan, db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| evaluate_dynamic(&flock, db, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
