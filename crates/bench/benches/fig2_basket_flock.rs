//! Criterion bench for E2 (Fig. 2): the market-basket flock three ways —
//! direct, planned, and the classic file-based a-priori miner.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::workloads::{basket_data, PAPER_THRESHOLD};
use qf_bench::Scale;
use qf_core::{evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy, QueryFlock};
use qf_mine::mine_apriori;

fn bench(c: &mut Criterion) {
    let data = basket_data(Scale::Small);
    let mut db = qf_storage::Database::new();
    db.insert(data.baskets.clone());
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();
    let flock = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        PAPER_THRESHOLD,
    )
    .unwrap();
    let plan = single_param_plan(&flock, &db).unwrap();

    let mut group = c.benchmark_group("fig2_basket_flock");
    group.sample_size(10);
    group.bench_function("flock_direct", |b| {
        b.iter(|| evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("flock_plan", |b| {
        b.iter(|| execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.bench_function("classic_apriori_k2", |b| {
        b.iter(|| mine_apriori(&txns, PAPER_THRESHOLD as u64, 2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
