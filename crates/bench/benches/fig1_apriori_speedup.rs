//! Criterion bench for E1 (§1.3, Fig. 1): direct evaluation vs. the
//! a-priori rewrite on Zipf word pairs at the paper's threshold of 20.

use criterion::{criterion_group, criterion_main, Criterion};
use qf_bench::experiments::e1_apriori_speedup::pair_flock;
use qf_bench::workloads::{words_db, PAPER_THRESHOLD};
use qf_bench::Scale;
use qf_core::{evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy};

fn bench(c: &mut Criterion) {
    let db = words_db(Scale::Small);
    let flock = pair_flock(PAPER_THRESHOLD);
    let plan = single_param_plan(&flock, &db).unwrap();

    let mut group = c.benchmark_group("fig1_apriori_speedup");
    group.sample_size(10);
    group.bench_function("direct_as_written", |b| {
        b.iter(|| evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap())
    });
    group.bench_function("apriori_rewrite", |b| {
        b.iter(|| execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
