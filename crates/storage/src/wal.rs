//! Durable catalog write-ahead log.
//!
//! The server catalog ([`Database`]) lives behind a lock in memory; this
//! module makes it the durable thing. Every catalog mutation — a bulk
//! `load`, a `gen`, a streaming `append` delta — is written to a log as
//! a checksummed, length-framed, fsynced record *before* it is
//! acknowledged, and a restarted process replays the log over the last
//! snapshot to recover exactly the acknowledged state.
//!
//! All I/O goes through the [`Vfs`] seam, so [`crate::vfs::ChaosFs`]
//! fault-injects every path deterministically. The crash-consistency
//! discipline mirrors the run journal in `qf-core` (temp + fsync +
//! rename publishes, PID lock with dead-owner reclaim, bounded transient
//! retry, contiguous-prefix replay) with one addition the catalog
//! demands: **read-back verification**. A torn write or a flipped bit
//! *lies* — the writer sees success — so after every fsync the WAL reads
//! the bytes back and compares before acknowledging. A mutation is
//! therefore either durable exactly as written, or it fails typed and
//! the log is restored to its trusted prefix.
//!
//! ## On-disk layout (one directory per catalog)
//!
//! * `wal.lock` — PID lock; reclaimed when the owner is dead.
//! * `wal.meta` — `QFWAL v1\ngen <n>\n`; names the live generation.
//!   Absent until the first compaction (generation 0 has no snapshot).
//! * `snap-<gen>.manifest` — the generation's snapshot manifest:
//!   catalog fingerprint, the log sequence number the snapshot covers,
//!   and one `rel <idx> <content-hash> <name>` line per relation.
//! * `snap-<gen>-<idx>.qfr` — one framed, checksummed relation snapshot
//!   per catalog relation (the spill layer's encoding).
//! * `log-<gen>.wal` — the live log of records since the snapshot.
//!
//! ## Record format
//!
//! ```text
//! [u32 payload_len][u64 seq][u64 post_fp][payload][u64 fnv1a]
//! ```
//!
//! all little-endian; the checksum covers everything before it. `seq`
//! is globally monotone (replay enforces contiguity), `post_fp` is the
//! catalog fingerprint *after* applying the record — recovery verifies
//! the replayed [`Database::fingerprint`] against it record by record,
//! so a replay that diverges from the original application is caught
//! immediately rather than served as wrong data.
//!
//! ## Recovery policy
//!
//! * A torn or checksum-failed **tail** record is expected (a crash
//!   mid-append): recovery truncates the log to the trusted prefix and
//!   continues. The strict reader ([`Wal::verify_log`]) reports it as
//!   typed [`StorageError::Corruption`] instead, for audits.
//! * A corrupt **snapshot**, **manifest**, or **meta** is a hard typed
//!   error: those files were published atomically and read-back
//!   verified, so damage means the directory can no longer prove what
//!   was acknowledged — the WAL refuses to guess (see the README
//!   troubleshooting entry for recovering a corrupt data dir).
//!
//! ## Compaction
//!
//! When the live log exceeds [`WalOptions::compact_threshold`] bytes,
//! the catalog is snapshotted into the next generation (every file
//! read-back verified), the manifest is published, and then `wal.meta`
//! is renamed into place — the single commit point. Files of older
//! generations are removed best-effort afterwards and swept on open.

use std::io::{ErrorKind, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::catalog::Database;
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::spill::{content_hash, read_relation_on, write_relation_on, Fnv1a};
use crate::tsv::read_tsv;
use crate::tuple::Tuple;
use crate::vfs::Vfs;

const LOCK_FILE: &str = "wal.lock";
const META_FILE: &str = "wal.meta";
const META_FORMAT: &str = "QFWAL v1";
const MANIFEST_FORMAT: &str = "QFWAL-SNAP v1";

/// Transient I/O errors absorbed per WAL operation before giving up.
const MAX_IO_RETRIES: u32 = 3;

/// Fixed bytes around a record payload: 4 (length) + 8 (seq) + 8
/// (post-fingerprint) before it, 8 (checksum) after.
const RECORD_OVERHEAD: usize = 28;

/// Bytes of a record before the payload (length + seq + fingerprint).
const RECORD_HEADER: usize = 20;

/// Payload tag bytes.
const TAG_PUT: u8 = 0x01;
const TAG_APPEND: u8 = 0x02;
const TAG_RETRACT: u8 = 0x03;

/// Options for [`Wal::open`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Compact (snapshot + truncate the log) once the live log exceeds
    /// this many bytes. `u64::MAX` disables compaction.
    pub compact_threshold: u64,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            compact_threshold: 1 << 20,
        }
    }
}

/// One logged catalog mutation, with its inputs fully materialized as
/// TSV text so replay never depends on anything but the log (a `gen`
/// mutation is logged as the relations it produced, not the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert (or replace) whole relations: a `load` or a `gen`.
    Put {
        /// One TSV document (header + rows) per relation.
        relations: Vec<String>,
    },
    /// Merge a delta into one relation (set-semantics union): an
    /// `append`. The target relation is named by the TSV header.
    Append {
        /// The delta as one TSV document.
        tsv: String,
    },
    /// Remove a delta from one relation (set-semantics difference): a
    /// `retract`. The target relation is named by the TSV header.
    Retract {
        /// The delta as one TSV document.
        tsv: String,
    },
}

/// Live WAL counters, shared with the serving layer for `stats`
/// reporting. All values are "since open" except `wal_records` /
/// `wal_bytes`, which describe the live log (and reset on compaction).
#[derive(Debug, Default)]
pub struct WalCounters {
    /// Records in the live log (recovered + committed − compacted away).
    pub wal_records: AtomicU64,
    /// Bytes in the live log.
    pub wal_bytes: AtomicU64,
    /// Snapshot generations published since open.
    pub snapshots: AtomicU64,
    /// Compactions completed since open.
    pub compactions: AtomicU64,
    /// Records replayed from the log during open.
    pub recovered_records: AtomicU64,
    /// Wall-clock milliseconds spent recovering in open.
    pub recovery_ms: AtomicU64,
}

/// A plain snapshot of [`WalCounters`], for report structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records in the live log.
    pub wal_records: u64,
    /// Bytes in the live log.
    pub wal_bytes: u64,
    /// Snapshot generations published since open.
    pub snapshots: u64,
    /// Compactions completed since open.
    pub compactions: u64,
    /// Records replayed from the log during open.
    pub recovered_records: u64,
    /// Milliseconds spent recovering in open.
    pub recovery_ms: u64,
}

impl WalCounters {
    /// Read every counter at once.
    pub fn stats(&self) -> WalStats {
        WalStats {
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            recovered_records: self.recovered_records.load(Ordering::Relaxed),
            recovery_ms: self.recovery_ms.load(Ordering::Relaxed),
        }
    }
}

/// A durable write-ahead log for one catalog directory.
///
/// See the [module docs](self) for the format and guarantees.
#[derive(Debug)]
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    opts: WalOptions,
    /// Live snapshot generation (0 = no snapshot yet).
    generation: u64,
    /// Sequence number of the last durable record.
    last_seq: u64,
    /// In-memory copy of the trusted (acknowledged) log bytes; the
    /// repair path republishes exactly these after a failed append.
    log_buf: Vec<u8>,
    /// A failed append may have left unacknowledged bytes on disk; the
    /// next attempt must republish the trusted prefix first.
    dirty: bool,
    /// Repair failed: the on-disk log can no longer be trusted to match
    /// `log_buf`. Every further mutation fails typed until restart.
    poisoned: bool,
    /// The lock file this instance owns (absent on reentrant opens).
    lock: Option<PathBuf>,
    counters: Arc<WalCounters>,
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(lock) = &self.lock {
            let _ = self.vfs.remove_file(lock);
        }
    }
}

impl Wal {
    /// Open (or create) the WAL in `dir`, recovering the catalog it
    /// proves: load the live generation's snapshot, replay the log over
    /// it (validating checksums, sequence contiguity, and the stamped
    /// post-mutation fingerprint record by record), and truncate any
    /// torn tail. Returns the WAL handle and the recovered catalog.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &Path, opts: WalOptions) -> Result<(Wal, Database)> {
        let start = Instant::now();
        with_retries(|| vfs.create_dir_all(dir).map_err(StorageError::from))?;
        let lock = with_retries(|| acquire_pid_lock(&*vfs, &dir.join(LOCK_FILE)))?;
        let meta_path = dir.join(META_FILE);
        let generation = if vfs.exists(&meta_path) {
            let text = with_retries(|| vfs.read_to_string(&meta_path).map_err(StorageError::from))?;
            parse_meta(&text).ok_or_else(|| corruption(&meta_path, "unparsable wal.meta"))?
        } else {
            // No meta means generation 0 — legal only if no snapshot was
            // ever published. Snapshot files without a meta naming them
            // mean the meta was lost: refuse to silently recover empty.
            if let Some(stray) = find_snapshot_file(&*vfs, dir) {
                return Err(corruption(
                    &meta_path,
                    &format!(
                        "wal.meta is missing but snapshot files exist (e.g. {})",
                        stray.display()
                    ),
                ));
            }
            0
        };
        sweep(&*vfs, dir, generation);
        let mut db = Database::new();
        let mut last_seq = 0u64;
        if generation > 0 {
            let manifest_path = dir.join(format!("snap-{generation}.manifest"));
            let text = with_retries(|| {
                vfs.read_to_string(&manifest_path)
                    .map_err(StorageError::from)
            })
            .map_err(|e| missing_as_corruption(&manifest_path, e))?;
            let manifest = parse_manifest(&text)
                .ok_or_else(|| corruption(&manifest_path, "unparsable snapshot manifest"))?;
            for (idx, hash, name) in &manifest.relations {
                let path = dir.join(format!("snap-{generation}-{idx}.qfr"));
                let rel = with_retries(|| read_relation_on(&*vfs, &path))
                    .map_err(|e| missing_as_corruption(&path, e))?;
                if rel.name() != name {
                    return Err(corruption(
                        &path,
                        &format!(
                            "snapshot holds relation `{}` but the manifest expects `{name}`",
                            rel.name()
                        ),
                    ));
                }
                let got = content_hash(&rel);
                if got != *hash {
                    return Err(corruption(
                        &path,
                        &format!("content hash {got:016x} does not match manifest {hash:016x}"),
                    ));
                }
                db.insert(rel);
            }
            let got = db.fingerprint();
            if got != manifest.catalog_fp {
                return Err(corruption(
                    &manifest_path,
                    &format!(
                        "assembled snapshot fingerprint {got:016x} does not match manifest {:016x}",
                        manifest.catalog_fp
                    ),
                ));
            }
            last_seq = manifest.seq;
        }
        let log_path = dir.join(format!("log-{generation}.wal"));
        let mut log_buf = Vec::new();
        let mut recovered = 0u64;
        if vfs.exists(&log_path) {
            let bytes = with_retries(|| read_file_bytes(&*vfs, &log_path))?;
            let scan = scan_log(&bytes, last_seq);
            for (seq, post_fp, record) in &scan.records {
                Wal::apply(&mut db, record)?;
                let got = db.fingerprint();
                if got != *post_fp {
                    return Err(StorageError::Corruption {
                        path: log_path.display().to_string(),
                        frame: *seq,
                        detail: format!(
                            "replayed catalog fingerprint {got:016x} does not match the \
                             fingerprint {post_fp:016x} stamped at commit"
                        ),
                    });
                }
                last_seq = *seq;
            }
            recovered = scan.records.len() as u64;
            log_buf = bytes[..scan.trusted_len].to_vec();
            if scan.trusted_len < bytes.len() {
                // Torn tail (crash mid-append): republish the trusted
                // prefix so the file and `log_buf` agree again.
                publish_verified(&*vfs, &log_path, &log_buf)?;
            }
        }
        let counters = Arc::new(WalCounters::default());
        counters.wal_records.store(recovered, Ordering::Relaxed);
        counters
            .wal_bytes
            .store(log_buf.len() as u64, Ordering::Relaxed);
        counters
            .recovered_records
            .store(recovered, Ordering::Relaxed);
        counters
            .recovery_ms
            .store(start.elapsed().as_millis() as u64, Ordering::Relaxed);
        Ok((
            Wal {
                vfs,
                dir: dir.to_path_buf(),
                opts,
                generation,
                last_seq,
                log_buf,
                dirty: false,
                poisoned: false,
                lock,
                counters,
            },
            db,
        ))
    }

    /// The shared counters, for `stats` reporting.
    pub fn counters(&self) -> Arc<WalCounters> {
        Arc::clone(&self.counters)
    }

    /// The data directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last durable record.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// A failed commit could not be rolled back (the log repair itself
    /// failed), so the on-disk log may hold one complete record that
    /// was never acknowledged — its outcome is *indeterminate* until
    /// restart, exactly like a write that times out in flight. Every
    /// further mutation fails typed while poisoned; recovery on the
    /// next open resolves the ambiguity (the record is either there in
    /// full or truncated away).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Apply one record to a catalog. This is the **only** mutation
    /// path — both live application and replay go through it, so a
    /// recovered catalog equals the served one by construction.
    pub fn apply(db: &mut Database, record: &WalRecord) -> Result<()> {
        match record {
            WalRecord::Put { relations } => {
                for tsv in relations {
                    let rel = read_tsv(std::io::Cursor::new(tsv.as_bytes()))?;
                    db.insert(rel);
                }
            }
            WalRecord::Append { tsv } => {
                let delta = read_tsv(std::io::Cursor::new(tsv.as_bytes()))?;
                apply_append(db, delta)?;
            }
            WalRecord::Retract { tsv } => {
                let delta = read_tsv(std::io::Cursor::new(tsv.as_bytes()))?;
                apply_retract(db, delta)?;
            }
        }
        Ok(())
    }

    /// Durably commit one record: append it to the log, fsync, then
    /// read the log back and verify the bytes before acknowledging —
    /// a write that *lied* (torn stream, flipped bit) is caught here,
    /// the trusted prefix is republished, and the commit fails typed.
    /// `post_fp` is the catalog fingerprint after applying `record`;
    /// recovery re-derives and checks it.
    ///
    /// On success the record is durable: a process killed any time
    /// after this returns recovers a catalog containing it. On failure
    /// the log is restored to its pre-call state (or the WAL is
    /// poisoned if even that failed, failing all further mutations).
    pub fn commit(&mut self, record: &WalRecord, post_fp: u64) -> Result<()> {
        if self.poisoned {
            return Err(poisoned_err(&self.dir));
        }
        let seq = self.last_seq + 1;
        let rec = encode_record(seq, post_fp, &encode_payload(record));
        let log_path = self.log_path();
        let mut attempt = 0u32;
        loop {
            let result = self.try_append(&log_path, &rec);
            match result {
                Ok(()) => {
                    self.log_buf.extend_from_slice(&rec);
                    self.last_seq = seq;
                    self.dirty = false;
                    self.counters.wal_records.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .wal_bytes
                        .store(self.log_buf.len() as u64, Ordering::Relaxed);
                    return Ok(());
                }
                Err(e) => {
                    self.dirty = true;
                    if e.is_transient() && attempt < MAX_IO_RETRIES {
                        attempt += 1;
                        std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
                        continue;
                    }
                    // Final failure: restore the trusted prefix so the
                    // log never carries unacknowledged bytes.
                    match publish_verified(&*self.vfs, &log_path, &self.log_buf) {
                        Ok(()) => self.dirty = false,
                        Err(_) => self.poisoned = true,
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One append attempt: repair if a previous attempt left junk,
    /// append + fsync, then read back and byte-compare.
    fn try_append(&mut self, log_path: &Path, rec: &[u8]) -> Result<()> {
        if self.dirty {
            publish_verified(&*self.vfs, log_path, &self.log_buf)?;
            self.dirty = false;
        }
        let mut f = self.vfs.append(log_path)?;
        f.write_all(rec)?;
        f.flush()?;
        f.sync_all()?;
        drop(f);
        let on_disk = read_file_bytes(&*self.vfs, log_path)?;
        let expected_len = self.log_buf.len() + rec.len();
        if on_disk.len() != expected_len
            || on_disk[..self.log_buf.len()] != self.log_buf[..]
            || on_disk[self.log_buf.len()..] != rec[..]
        {
            return Err(corruption(
                log_path,
                "read-back after append does not match the written bytes",
            ));
        }
        Ok(())
    }

    /// Compact if the live log has outgrown the threshold. `db` must be
    /// the catalog state as of [`Wal::last_seq`]. Returns whether a
    /// compaction ran. A failed compaction is typed but non-fatal: the
    /// old generation stays authoritative and the log keeps growing.
    pub fn maybe_compact(&mut self, db: &Database) -> Result<bool> {
        if self.poisoned || (self.log_buf.len() as u64) < self.opts.compact_threshold {
            return Ok(false);
        }
        self.compact(db)?;
        Ok(true)
    }

    /// Snapshot `db` into the next generation and truncate the log.
    /// Every snapshot file and the manifest are read-back verified
    /// *before* the `wal.meta` rename that commits the generation, so a
    /// crash or lying write anywhere in here leaves the old generation
    /// fully intact.
    pub fn compact(&mut self, db: &Database) -> Result<()> {
        if self.poisoned {
            return Err(poisoned_err(&self.dir));
        }
        let next = self.generation + 1;
        let mut manifest = format!(
            "{MANIFEST_FORMAT}\ncatalog {:016x}\nseq {}\n",
            db.fingerprint(),
            self.last_seq
        );
        for (idx, rel) in db.iter().enumerate() {
            let path = self.dir.join(format!("snap-{next}-{idx}.qfr"));
            with_retries(|| {
                write_relation_on(&*self.vfs, &path, rel)?;
                let back = read_relation_on(&*self.vfs, &path)?;
                if back.name() != rel.name() || content_hash(&back) != content_hash(rel) {
                    return Err(corruption(
                        &path,
                        "read-back after snapshot write does not match the relation",
                    ));
                }
                Ok(())
            })?;
            manifest.push_str(&format!(
                "rel {idx} {:016x} {}\n",
                content_hash(rel),
                rel.name()
            ));
        }
        let manifest_path = self.dir.join(format!("snap-{next}.manifest"));
        publish_verified(&*self.vfs, &manifest_path, manifest.as_bytes())?;
        // The commit point: after this rename the new generation is
        // authoritative and the old one is garbage.
        let meta = format!("{META_FORMAT}\ngen {next}\n");
        publish_verified(&*self.vfs, &self.dir.join(META_FILE), meta.as_bytes())?;
        let old = self.generation;
        self.generation = next;
        self.log_buf.clear();
        self.dirty = false;
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        self.counters.wal_records.store(0, Ordering::Relaxed);
        self.counters.wal_bytes.store(0, Ordering::Relaxed);
        // Old-generation files are unreferenced now; best-effort removal
        // (open sweeps whatever survives a crash here).
        sweep_generation(&*self.vfs, &self.dir, old);
        Ok(())
    }

    /// Strictly verify the live log: every byte must parse, checksum,
    /// and chain — any damage (even a torn tail that recovery would
    /// tolerate) is a typed [`StorageError::Corruption`]. Returns the
    /// number of records verified.
    pub fn verify_log(vfs: &dyn Vfs, dir: &Path, start_seq: u64) -> Result<u64> {
        let log_path = dir.join(format!("log-{}.wal", read_generation(vfs, dir)?));
        if !vfs.exists(&log_path) {
            return Ok(0);
        }
        let bytes = read_file_bytes(vfs, &log_path)?;
        let scan = scan_log(&bytes, start_seq);
        if scan.trusted_len < bytes.len() {
            return Err(StorageError::Corruption {
                path: log_path.display().to_string(),
                frame: scan.records.len() as u64,
                detail: scan
                    .issue
                    .unwrap_or_else(|| "trailing bytes after final record".to_string()),
            });
        }
        Ok(scan.records.len() as u64)
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(format!("log-{}.wal", self.generation))
    }
}

/// Merge `delta` into the catalog under set semantics (tuples union;
/// the relation is created if absent). The delta's columns must match
/// the existing schema exactly.
fn apply_append(db: &mut Database, delta: Relation) -> Result<()> {
    let name = delta.name().to_string();
    if !db.contains(&name) {
        db.insert(delta);
        return Ok(());
    }
    let base = db.get(&name)?;
    if base.schema().columns() != delta.schema().columns() {
        return Err(StorageError::Malformed {
            detail: format!(
                "append to `{name}`: delta columns {:?} do not match existing columns {:?}",
                delta.schema().columns(),
                base.schema().columns()
            ),
        });
    }
    let mut tuples: Vec<Tuple> = base.tuples().to_vec();
    tuples.extend(delta.iter().cloned());
    let merged = Relation::from_tuples(base.schema().clone(), tuples);
    db.insert(merged);
    Ok(())
}

/// Remove `delta` from the catalog under set semantics (tuples
/// difference; retracting from an absent relation is a no-op, and
/// tuples not present are silently skipped — the difference is exact
/// either way). The delta's columns must match the existing schema.
fn apply_retract(db: &mut Database, delta: Relation) -> Result<()> {
    let name = delta.name().to_string();
    if !db.contains(&name) {
        return Ok(());
    }
    let base = db.get(&name)?;
    if base.schema().columns() != delta.schema().columns() {
        return Err(StorageError::Malformed {
            detail: format!(
                "retract from `{name}`: delta columns {:?} do not match existing columns {:?}",
                delta.schema().columns(),
                base.schema().columns()
            ),
        });
    }
    let remaining: Vec<Tuple> = base
        .tuples()
        .iter()
        .filter(|t| !delta.contains(t))
        .cloned()
        .collect();
    // `base` is sorted and deduplicated; filtering preserves that.
    let reduced = Relation::from_sorted_dedup(base.schema().clone(), remaining);
    db.insert(reduced);
    Ok(())
}

/// Take a PID lock at `path`. Returns the lock path when this call
/// created (and therefore owns) the lock; `None` when the lock is
/// already held by *this* process (reentrant — the earlier owner keeps
/// responsibility for removal). A lock held by a dead process (or with
/// torn content) is reclaimed; one held by a live foreign process is a
/// hard error. Shared by the catalog WAL and the run journal.
pub fn acquire_pid_lock(vfs: &dyn Vfs, path: &Path) -> Result<Option<PathBuf>> {
    for _ in 0..2 {
        match vfs.create_new(path) {
            Ok(mut f) => {
                let _ = f.write_all(std::process::id().to_string().as_bytes());
                let _ = f.flush();
                return Ok(Some(path.to_path_buf()));
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                let holder = vfs
                    .read_to_string(path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid == std::process::id() => return Ok(None),
                    Some(pid) if process_alive(pid) => {
                        return Err(StorageError::Io {
                            kind: ErrorKind::AlreadyExists,
                            detail: format!(
                                "{} is locked by running process {pid}",
                                path.display()
                            ),
                        });
                    }
                    // Dead owner or torn lock content: reclaim.
                    _ => {
                        vfs.remove_file(path)?;
                    }
                }
            }
            Err(e) => return Err(StorageError::from(e)),
        }
    }
    Err(StorageError::Io {
        kind: ErrorKind::AlreadyExists,
        detail: format!(
            "could not acquire {} (lock keeps reappearing)",
            path.display()
        ),
    })
}

/// Is a process with this PID alive? Used for dead-owner lock reclaim.
#[cfg(unix)]
pub fn process_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Is a process with this PID alive? On platforms with no cheap
/// liveness probe this answers `true`: never steal a foreign lock.
#[cfg(not(unix))]
pub fn process_alive(_pid: u32) -> bool {
    true
}

/// Run `f`, absorbing up to [`MAX_IO_RETRIES`] transient I/O errors
/// with exponential backoff.
fn with_retries<T>(mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(e) if e.is_transient() && attempt < MAX_IO_RETRIES => {
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
            }
            other => return other,
        }
    }
}

/// A file the live generation *names* but that cannot be found is
/// damage to the directory, not a plain I/O miss.
fn missing_as_corruption(path: &Path, e: StorageError) -> StorageError {
    match &e {
        StorageError::Io { kind, .. } if *kind == ErrorKind::NotFound => corruption(
            path,
            &format!("file named by the live generation is missing: {e}"),
        ),
        _ => e,
    }
}

fn corruption(path: &Path, detail: &str) -> StorageError {
    StorageError::Corruption {
        path: path.display().to_string(),
        frame: 0,
        detail: detail.to_string(),
    }
}

fn poisoned_err(dir: &Path) -> StorageError {
    StorageError::Io {
        kind: ErrorKind::Other,
        detail: format!(
            "wal in {} is poisoned after a failed log repair; restart to recover",
            dir.display()
        ),
    }
}

/// Read a whole file through the VFS.
fn read_file_bytes(vfs: &dyn Vfs, path: &Path) -> Result<Vec<u8>> {
    let mut f = vfs.open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Publish `bytes` at `path` via temp + fsync + **read-back verify** +
/// rename. The verification happens on the temp file, *before* the
/// rename that makes it visible — a lying write can never replace good
/// bytes with bad ones.
fn publish_verified(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = tmp_path(path);
    let result = with_retries(|| {
        let mut f = vfs.create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
        drop(f);
        let back = read_file_bytes(vfs, &tmp)?;
        if back != bytes {
            return Err(corruption(
                &tmp,
                "read-back after write does not match the written bytes",
            ));
        }
        vfs.rename(&tmp, path)?;
        Ok(())
    });
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Parse `wal.meta`; `None` means torn/unparsable.
fn parse_meta(text: &str) -> Option<u64> {
    let mut lines = text.lines();
    if lines.next() != Some(META_FORMAT) {
        return None;
    }
    lines.next()?.strip_prefix("gen ")?.trim().parse().ok()
}

/// Read the live generation from `wal.meta` (0 when absent).
fn read_generation(vfs: &dyn Vfs, dir: &Path) -> Result<u64> {
    let meta_path = dir.join(META_FILE);
    if !vfs.exists(&meta_path) {
        return Ok(0);
    }
    let text = vfs.read_to_string(&meta_path)?;
    parse_meta(&text).ok_or_else(|| corruption(&meta_path, "unparsable wal.meta"))
}

struct Manifest {
    catalog_fp: u64,
    seq: u64,
    /// `(file index, content hash, relation name)` per relation.
    relations: Vec<(u64, u64, String)>,
}

/// Parse a snapshot manifest; `None` means torn/unparsable.
fn parse_manifest(text: &str) -> Option<Manifest> {
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_FORMAT) {
        return None;
    }
    let catalog_fp =
        u64::from_str_radix(lines.next()?.strip_prefix("catalog ")?.trim(), 16).ok()?;
    let seq = lines.next()?.strip_prefix("seq ")?.trim().parse().ok()?;
    let mut relations = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("rel ")?;
        let mut parts = rest.splitn(3, ' ');
        let idx = parts.next()?.parse().ok()?;
        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
        let name = parts.next()?.to_string();
        relations.push((idx, hash, name));
    }
    Some(Manifest {
        catalog_fp,
        seq,
        relations,
    })
}

/// Does the directory hold any published snapshot manifest?
fn find_snapshot_file(vfs: &dyn Vfs, dir: &Path) -> Option<PathBuf> {
    vfs.read_dir(dir).ok()?.into_iter().find(|p| {
        p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".manifest"))
    })
}

/// Best-effort removal of orphaned temp files and files from any
/// generation other than `keep` (leftovers of a crashed compaction or
/// of the generation it replaced).
fn sweep(vfs: &dyn Vfs, dir: &Path, keep: u64) {
    let Ok(entries) = vfs.read_dir(dir) else {
        return;
    };
    for p in entries {
        let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            let _ = vfs.remove_file(&p);
            continue;
        }
        if let Some(g) = file_generation(name) {
            if g != keep {
                let _ = vfs.remove_file(&p);
            }
        }
    }
}

/// Best-effort removal of one generation's files.
fn sweep_generation(vfs: &dyn Vfs, dir: &Path, generation: u64) {
    let Ok(entries) = vfs.read_dir(dir) else {
        return;
    };
    for p in entries {
        let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if file_generation(name) == Some(generation) {
            let _ = vfs.remove_file(&p);
        }
    }
}

/// The generation a WAL-managed file belongs to, from its name:
/// `log-<g>.wal`, `snap-<g>.manifest`, `snap-<g>-<idx>.qfr`. `None`
/// for anything else (meta, lock, foreign files — never touched).
fn file_generation(name: &str) -> Option<u64> {
    if let Some(rest) = name.strip_prefix("log-") {
        return rest.strip_suffix(".wal")?.parse().ok();
    }
    if let Some(rest) = name.strip_prefix("snap-") {
        if let Some(g) = rest.strip_suffix(".manifest") {
            return g.parse().ok();
        }
        let body = rest.strip_suffix(".qfr")?;
        return body.split('-').next()?.parse().ok();
    }
    None
}

/// Frame one record: `[u32 len][u64 seq][u64 post_fp][payload][u64 fnv]`.
fn encode_record(seq: u64, post_fp: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&post_fp.to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Fnv1a::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Encode a record payload: a tag byte, then length-prefixed TSV
/// documents.
fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Put { relations } => {
            out.push(TAG_PUT);
            out.extend_from_slice(&(relations.len() as u32).to_le_bytes());
            for tsv in relations {
                out.extend_from_slice(&(tsv.len() as u32).to_le_bytes());
                out.extend_from_slice(tsv.as_bytes());
            }
        }
        WalRecord::Append { tsv } => {
            out.push(TAG_APPEND);
            out.extend_from_slice(&(tsv.len() as u32).to_le_bytes());
            out.extend_from_slice(tsv.as_bytes());
        }
        WalRecord::Retract { tsv } => {
            out.push(TAG_RETRACT);
            out.extend_from_slice(&(tsv.len() as u32).to_le_bytes());
            out.extend_from_slice(tsv.as_bytes());
        }
    }
    out
}

/// Decode a record payload; `None` means malformed.
fn decode_payload(bytes: &[u8]) -> Option<WalRecord> {
    fn take_u32(rest: &mut &[u8]) -> Option<u32> {
        let (head, tail) = rest.split_at_checked(4)?;
        *rest = tail;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }
    fn take_str(rest: &mut &[u8]) -> Option<String> {
        let len = take_u32(rest)? as usize;
        let (head, tail) = rest.split_at_checked(len)?;
        *rest = tail;
        String::from_utf8(head.to_vec()).ok()
    }
    let (&tag, mut rest) = bytes.split_first()?;
    let record = match tag {
        TAG_PUT => {
            let n = take_u32(&mut rest)?;
            let mut relations = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                relations.push(take_str(&mut rest)?);
            }
            WalRecord::Put { relations }
        }
        TAG_APPEND => WalRecord::Append {
            tsv: take_str(&mut rest)?,
        },
        TAG_RETRACT => WalRecord::Retract {
            tsv: take_str(&mut rest)?,
        },
        _ => return None,
    };
    if !rest.is_empty() {
        return None;
    }
    Some(record)
}

/// Result of a tolerant log scan: the records of the trusted prefix,
/// how many bytes it spans, and why the scan stopped early (if it did).
struct LogScan {
    records: Vec<(u64, u64, WalRecord)>,
    trusted_len: usize,
    issue: Option<String>,
}

/// Scan a log tolerantly: any violation — a truncated frame, a
/// checksum mismatch, a sequence discontinuity, an undecodable payload
/// — ends the trusted prefix there. Sequence numbers must continue
/// from `start_seq` (the snapshot's coverage) contiguously.
fn scan_log(bytes: &[u8], start_seq: u64) -> LogScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut seq = start_seq;
    loop {
        let remaining = bytes.len() - off;
        if remaining == 0 {
            return LogScan {
                records,
                trusted_len: off,
                issue: None,
            };
        }
        let stop = |records: Vec<(u64, u64, WalRecord)>, issue: &str| LogScan {
            records,
            trusted_len: off,
            issue: Some(issue.to_string()),
        };
        if remaining < RECORD_OVERHEAD {
            return stop(records, "truncated record frame");
        }
        let payload_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if payload_len > remaining - RECORD_OVERHEAD {
            return stop(records, "record length exceeds the file");
        }
        let body_end = off + RECORD_HEADER + payload_len;
        let mut h = Fnv1a::new();
        h.write(&bytes[off..body_end]);
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        if h.finish() != stored {
            return stop(records, "record checksum mismatch");
        }
        let rec_seq = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        if rec_seq != seq + 1 {
            return stop(records, "sequence discontinuity");
        }
        let post_fp = u64::from_le_bytes(bytes[off + 12..off + 20].try_into().unwrap());
        let Some(record) = decode_payload(&bytes[off + RECORD_HEADER..body_end]) else {
            return stop(records, "undecodable record payload");
        };
        records.push((rec_seq, post_fp, record));
        seq = rec_seq;
        off = body_end + 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{real_fs, ChaosFs, Fault, OpClass};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qf-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tsv(name: &str, rows: &[(i64, &str)]) -> String {
        let mut out = format!("{name}\tid\titem\n");
        for (id, item) in rows {
            out.push_str(&format!("{id}\t{item}\n"));
        }
        out
    }

    /// Apply `record` to `db` and commit it, returning the post-fp.
    fn commit(wal: &mut Wal, db: &mut Database, record: WalRecord) -> Result<u64> {
        let mut next = db.clone();
        Wal::apply(&mut next, &record)?;
        let fp = next.fingerprint();
        wal.commit(&record, fp)?;
        *db = next;
        Ok(fp)
    }

    #[test]
    fn empty_open_recovers_empty_catalog() {
        let dir = tmp("empty");
        let (wal, db) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        assert!(db.is_empty());
        assert_eq!(wal.last_seq(), 0);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_then_reopen_recovers_acknowledged_state() {
        let dir = tmp("basic");
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("baskets", &[(1, "beer"), (2, "chips")])],
            },
        )
        .unwrap();
        let fp = commit(
            &mut wal,
            &mut db,
            WalRecord::Append {
                tsv: tsv("baskets", &[(3, "beer")]),
            },
        )
        .unwrap();
        drop(wal);
        let (wal, recovered) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.fingerprint(), fp);
        assert_eq!(recovered.get("baskets").unwrap().len(), 3);
        assert_eq!(wal.counters().stats().recovered_records, 2);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_merges_under_set_semantics() {
        let mut db = Database::new();
        Wal::apply(
            &mut db,
            &WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a"), (2, "b")])],
            },
        )
        .unwrap();
        // Duplicate (1, a) must not double under set semantics.
        Wal::apply(
            &mut db,
            &WalRecord::Append {
                tsv: tsv("r", &[(1, "a"), (3, "c")]),
            },
        )
        .unwrap();
        assert_eq!(db.get("r").unwrap().len(), 3);
        // Appending to a missing relation creates it.
        Wal::apply(
            &mut db,
            &WalRecord::Append {
                tsv: tsv("s", &[(9, "z")]),
            },
        )
        .unwrap();
        assert_eq!(db.get("s").unwrap().len(), 1);
        // A schema mismatch is typed, and the catalog is untouched.
        let err = Wal::apply(
            &mut db,
            &WalRecord::Append {
                tsv: "r\tother\n1\n".to_string(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Malformed { .. }), "{err}");
        assert_eq!(db.get("r").unwrap().len(), 3);
    }

    #[test]
    fn retract_is_set_difference() {
        let mut db = Database::new();
        Wal::apply(
            &mut db,
            &WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a"), (2, "b"), (3, "c")])],
            },
        )
        .unwrap();
        // Tuples absent from the base ((9, z)) are silently skipped —
        // the set difference is exact either way.
        Wal::apply(
            &mut db,
            &WalRecord::Retract {
                tsv: tsv("r", &[(2, "b"), (9, "z")]),
            },
        )
        .unwrap();
        assert_eq!(db.get("r").unwrap().len(), 2);
        assert!(!db.get("r").unwrap().is_empty());
        // Retracting from a missing relation is a no-op.
        Wal::apply(
            &mut db,
            &WalRecord::Retract {
                tsv: tsv("missing", &[(1, "a")]),
            },
        )
        .unwrap();
        assert!(!db.contains("missing"));
        // A schema mismatch is typed, and the catalog is untouched.
        let err = Wal::apply(
            &mut db,
            &WalRecord::Retract {
                tsv: "r\tother\n1\n".to_string(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Malformed { .. }), "{err}");
        assert_eq!(db.get("r").unwrap().len(), 2);
        // Append then retract of the same delta round-trips the catalog.
        let fp = db.fingerprint();
        Wal::apply(
            &mut db,
            &WalRecord::Append {
                tsv: tsv("r", &[(7, "q")]),
            },
        )
        .unwrap();
        Wal::apply(
            &mut db,
            &WalRecord::Retract {
                tsv: tsv("r", &[(7, "q")]),
            },
        )
        .unwrap();
        assert_eq!(db.fingerprint(), fp);
    }

    #[test]
    fn append_equals_bulk_load() {
        let full = tsv("r", &[(1, "a"), (2, "b"), (3, "c"), (4, "d")]);
        let mut bulk = Database::new();
        Wal::apply(
            &mut bulk,
            &WalRecord::Put {
                relations: vec![full],
            },
        )
        .unwrap();
        let mut delta = Database::new();
        for chunk in [&[(1, "a"), (2, "b")][..], &[(3, "c")], &[(4, "d")]] {
            Wal::apply(
                &mut delta,
                &WalRecord::Append {
                    tsv: tsv("r", chunk),
                },
            )
            .unwrap();
        }
        assert_eq!(bulk.fingerprint(), delta.fingerprint());
    }

    #[test]
    fn record_roundtrip() {
        for record in [
            WalRecord::Put {
                relations: vec![tsv("a", &[(1, "x")]), tsv("b", &[])],
            },
            WalRecord::Append {
                tsv: tsv("a", &[(2, "y")]),
            },
            WalRecord::Retract {
                tsv: tsv("a", &[(1, "x")]),
            },
            WalRecord::Put { relations: vec![] },
        ] {
            let payload = encode_payload(&record);
            assert_eq!(decode_payload(&payload), Some(record));
        }
    }

    #[test]
    fn torn_tail_is_truncated_to_the_trusted_prefix() {
        let dir = tmp("torn");
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        let fp1 = commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a")])],
            },
        )
        .unwrap();
        let log = wal.log_path();
        drop(wal);
        // Simulate a crash mid-append: half a record's worth of junk.
        let mut bytes = std::fs::read(&log).unwrap();
        let trusted = bytes.len();
        bytes.extend_from_slice(&[0x17; 13]);
        std::fs::write(&log, &bytes).unwrap();
        let (wal, recovered) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.fingerprint(), fp1);
        // The torn tail was truncated away durably.
        assert_eq!(std::fs::read(&log).unwrap().len(), trusted);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_and_truncates() {
        let dir = tmp("compact");
        let opts = WalOptions {
            compact_threshold: 1,
        };
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, opts).unwrap();
        commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a"), (2, "b")])],
            },
        )
        .unwrap();
        assert!(wal.maybe_compact(&db).unwrap());
        let stats = wal.counters().stats();
        assert_eq!((stats.snapshots, stats.compactions), (1, 1));
        assert_eq!(stats.wal_bytes, 0);
        // Mutations after compaction land in the new generation's log.
        let fp = commit(
            &mut wal,
            &mut db,
            WalRecord::Append {
                tsv: tsv("r", &[(3, "c")]),
            },
        )
        .unwrap();
        drop(wal);
        let (wal, recovered) = Wal::open(real_fs(), &dir, opts).unwrap();
        assert_eq!(recovered.fingerprint(), fp);
        assert_eq!(recovered.get("r").unwrap().len(), 3);
        assert_eq!(wal.counters().stats().recovered_records, 1);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pid_lock_blocks_reclaims_and_reenters() {
        let dir = tmp("lock");
        std::fs::create_dir_all(&dir).unwrap();
        let fs = real_fs();
        let path = dir.join(LOCK_FILE);
        // Fresh acquire owns the lock.
        let owned = acquire_pid_lock(&*fs, &path).unwrap();
        assert_eq!(owned, Some(path.clone()));
        // Same process re-enters without owning.
        assert_eq!(acquire_pid_lock(&*fs, &path).unwrap(), None);
        // A live foreign holder is a hard error (PID 1 is always alive).
        std::fs::write(&path, "1").unwrap();
        let err = acquire_pid_lock(&*fs, &path).unwrap_err();
        assert!(
            err.to_string().contains("locked by running process"),
            "{err}"
        );
        // A dead holder is reclaimed.
        std::fs::write(&path, "999999999").unwrap();
        assert_eq!(acquire_pid_lock(&*fs, &path).unwrap(), Some(path.clone()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_while_locked_by_live_process_fails() {
        let dir = tmp("locked-open");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "1").unwrap();
        let err = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap_err();
        assert!(err.to_string().contains("locked"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_meta_with_snapshots_is_corruption() {
        let dir = tmp("lost-meta");
        let opts = WalOptions {
            compact_threshold: 1,
        };
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, opts).unwrap();
        commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a")])],
            },
        )
        .unwrap();
        wal.compact(&db).unwrap();
        drop(wal);
        std::fs::remove_file(dir.join(META_FILE)).unwrap();
        let err = Wal::open(real_fs(), &dir, opts).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_on_commit_fails_typed_and_preserves_state() {
        let dir = tmp("chaos-torn");
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a")])],
            },
        )
        .unwrap();
        drop(wal);
        // Write #1 under the chaos fs is the lock's PID stamp; #2 is
        // the record append — tear that one.
        let fs = Arc::new(ChaosFs::quiet().with_fault(OpClass::Write, 2, Fault::TornWrite));
        let (mut wal, db2) = Wal::open(fs, &dir, WalOptions::default()).unwrap();
        assert_eq!(db2.fingerprint(), db.fingerprint());
        let fp_before = db.fingerprint();
        // The torn write lies (reports success); read-back verification
        // must catch it before the mutation is acknowledged.
        let err = commit(
            &mut wal,
            &mut db,
            WalRecord::Append {
                tsv: tsv("r", &[(2, "b")]),
            },
        )
        .unwrap_err();
        assert!(err.is_corruption(), "{err}");
        drop(wal);
        // And the log was repaired to the trusted prefix: recovery sees
        // exactly the acknowledged state.
        let (_, recovered) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.fingerprint(), fp_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_matrix_commits_are_durable_or_typed() {
        // For a matrix of chaos seeds: drive a mutation sequence over a
        // faulty fs. Every commit must either succeed (and then be
        // recoverable) or fail typed; after a simulated crash the
        // recovered catalog must fingerprint-match the last
        // acknowledged mutation exactly.
        for seed in 0..24u64 {
            let dir = tmp(&format!("matrix-{seed}"));
            let fs: Arc<dyn Vfs> = Arc::new(ChaosFs::seeded(seed, 5));
            let opts = WalOptions {
                compact_threshold: 256,
            };
            let Ok((mut wal, mut db)) = Wal::open(Arc::clone(&fs), &dir, opts) else {
                // Open itself may fail typed under chaos; nothing was
                // acknowledged, so there is nothing to check.
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            };
            let mut acked_fp = db.fingerprint();
            // A commit whose rollback also failed (poisoned WAL) is
            // *indeterminate*: the record may or may not be durable,
            // like a write that timed out in flight. At most one can
            // exist — poisoning blocks all further commits.
            let mut indeterminate_fp = None;
            for step in 0..6 {
                let record = if step == 0 {
                    WalRecord::Put {
                        relations: vec![tsv("r", &[(1, "a"), (2, "b")])],
                    }
                } else {
                    WalRecord::Append {
                        tsv: tsv("r", &[(10 + step, "x")]),
                    }
                };
                let mut next = db.clone();
                Wal::apply(&mut next, &record).unwrap();
                let fp = next.fingerprint();
                let was_poisoned = wal.is_poisoned();
                match wal.commit(&record, fp) {
                    Ok(()) => {
                        db = next;
                        acked_fp = fp;
                        let _ = wal.maybe_compact(&db);
                    }
                    Err(e) => {
                        // Typed failure; catalog unchanged.
                        let _ = e.to_string();
                        if wal.is_poisoned() && !was_poisoned {
                            indeterminate_fp = Some(fp);
                        }
                    }
                }
            }
            // "Crash": drop without any orderly shutdown, reopen on a
            // clean fs. Remove the lock first — the dropped Wal removes
            // it, but a poisoned/error path may have lost ownership.
            drop(wal);
            let _ = std::fs::remove_file(dir.join(LOCK_FILE));
            let (_, recovered) = Wal::open(real_fs(), &dir, opts)
                .unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
            assert!(
                recovered.fingerprint() == acked_fp
                    || indeterminate_fp == Some(recovered.fingerprint()),
                "seed {seed}: recovered catalog matches neither the last acknowledged \
                 mutation nor the single indeterminate one"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn every_byte_flip_in_the_log_is_caught() {
        let dir = tmp("flip");
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, WalOptions::default()).unwrap();
        let mut acked = vec![db.fingerprint()];
        for record in [
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a"), (2, "b")])],
            },
            WalRecord::Append {
                tsv: tsv("r", &[(3, "c")]),
            },
        ] {
            let mut next = db.clone();
            Wal::apply(&mut next, &record).unwrap();
            let fp = next.fingerprint();
            wal.commit(&record, fp).unwrap();
            db = next;
            acked.push(fp);
        }
        let log = wal.log_path();
        drop(wal);
        let pristine = std::fs::read(&log).unwrap();
        for bit_byte in 0..pristine.len() {
            let mut corrupted = pristine.clone();
            corrupted[bit_byte] ^= 0x40;
            std::fs::write(&log, &corrupted).unwrap();
            // The strict verifier must refuse the whole log…
            let err = Wal::verify_log(&crate::vfs::RealFs, &dir, 0).unwrap_err();
            assert!(err.is_corruption(), "byte {bit_byte}: {err}");
            // …and tolerant recovery must land on an *acknowledged
            // prefix* — never wrong data.
            let (w, recovered) = Wal::open(real_fs(), &dir, WalOptions::default())
                .unwrap_or_else(|e| panic!("byte {bit_byte}: open failed: {e}"));
            assert!(
                acked.contains(&recovered.fingerprint()),
                "byte {bit_byte}: recovered a state that was never acknowledged"
            );
            drop(w);
            std::fs::write(&log, &pristine).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_flip_in_a_snapshot_is_caught() {
        let dir = tmp("snapflip");
        let opts = WalOptions {
            compact_threshold: 1,
        };
        let (mut wal, mut db) = Wal::open(real_fs(), &dir, opts).unwrap();
        commit(
            &mut wal,
            &mut db,
            WalRecord::Put {
                relations: vec![tsv("r", &[(1, "a"), (2, "b")])],
            },
        )
        .unwrap();
        wal.compact(&db).unwrap();
        drop(wal);
        let snap = dir.join("snap-1-0.qfr");
        let pristine = std::fs::read(&snap).unwrap();
        // Stride through the snapshot (it is a few hundred bytes; every
        // byte would be slow in debug builds for no extra coverage).
        for byte in (0..pristine.len()).step_by(3) {
            let mut corrupted = pristine.clone();
            corrupted[byte] ^= 0x01;
            std::fs::write(&snap, &corrupted).unwrap();
            let err = Wal::open(real_fs(), &dir, opts)
                .err()
                .unwrap_or_else(|| panic!("byte {byte}: corrupt snapshot accepted"));
            assert!(
                err.is_corruption() || matches!(err, StorageError::Malformed { .. }),
                "byte {byte}: {err}"
            );
            std::fs::write(&snap, &pristine).unwrap();
        }
        // Manifest flips: either rejected typed, or — when the flip
        // lands somewhere immaterial to content (e.g. a digit of the
        // `seq` line with no log to replay) — recovery still yields
        // exactly the acknowledged catalog. Never wrong data.
        let acked_fp = db.fingerprint();
        let manifest = dir.join("snap-1.manifest");
        let pristine_m = std::fs::read(&manifest).unwrap();
        for byte in 0..pristine_m.len() {
            let mut corrupted = pristine_m.clone();
            corrupted[byte] ^= 0x01;
            std::fs::write(&manifest, &corrupted).unwrap();
            match Wal::open(real_fs(), &dir, opts) {
                Err(_) => {}
                Ok((w, recovered)) => {
                    assert_eq!(
                        recovered.fingerprint(),
                        acked_fp,
                        "manifest byte {byte}: recovered an unacknowledged state"
                    );
                    drop(w);
                }
            }
            std::fs::write(&manifest, &pristine_m).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
