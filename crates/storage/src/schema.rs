//! Relation schemas: a name plus named columns.

use crate::error::{Result, StorageError};

/// The schema of a relation: relation name and ordered column names.
///
/// Column *types* are dynamic (any column may hold any [`Value`]); the
/// paper's data model never needs declared types, and mining queries are
/// generated programmatically against known data.
///
/// [`Value`]: crate::Value
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    name: String,
    columns: Vec<String>,
}

impl Schema {
    /// Schema with the given relation and column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Schema {
        Schema {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Schema from owned column names.
    pub fn from_columns(name: impl Into<String>, columns: Vec<String>) -> Schema {
        Schema {
            name: name.into(),
            columns,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ordered column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// A copy of this schema under a different relation name.
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            columns: self.columns.clone(),
        }
    }
}

impl std::fmt::Debug for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new("baskets", &["bid", "item"]);
        assert_eq!(s.column_index("item").unwrap(), 1);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn renamed_keeps_columns() {
        let s = Schema::new("a", &["x"]).renamed("b");
        assert_eq!(s.name(), "b");
        assert_eq!(s.columns(), &["x".to_string()]);
    }

    #[test]
    fn display() {
        assert_eq!(
            Schema::new("causes", &["disease", "symptom"]).to_string(),
            "causes(disease, symptom)"
        );
    }
}
