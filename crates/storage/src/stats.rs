//! Relation statistics for the cost-based optimizer.
//!
//! The paper's plan selection "cannot pick a strategy without knowing
//! something about sizes of the relations and numbers of patients,
//! diseases, etc." (Ex. 3.2) and explicitly invokes the general theory of
//! cost-based optimization \[G*79\]. These are the statistics that theory
//! needs: cardinalities, per-column distinct counts, and min/max bounds.

use crate::hash::FastSet;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Statistics for one column of a relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnStats {
    /// Number of distinct values in the column.
    pub distinct: usize,
    /// Smallest value, if the relation is non-empty.
    pub min: Option<Value>,
    /// Largest value, if the relation is non-empty.
    pub max: Option<Value>,
}

/// Statistics for a whole relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationStats {
    /// Number of tuples.
    pub cardinality: usize,
    columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// Compute statistics with one pass per column.
    pub fn compute(schema: &Schema, tuples: &[Tuple]) -> RelationStats {
        let mut columns = Vec::with_capacity(schema.arity());
        for col in 0..schema.arity() {
            let mut seen: FastSet<Value> = FastSet::default();
            let mut min = None;
            let mut max = None;
            for t in tuples {
                let v = t.get(col);
                seen.insert(v);
                min = Some(match min {
                    None => v,
                    Some(m) => std::cmp::min(m, v),
                });
                max = Some(match max {
                    None => v,
                    Some(m) => std::cmp::max(m, v),
                });
            }
            columns.push(ColumnStats {
                distinct: seen.len(),
                min,
                max,
            });
        }
        RelationStats {
            cardinality: tuples.len(),
            columns,
        }
    }

    /// Stats for column `i`.
    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }

    /// Number of columns described.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Average number of tuples per distinct value of column `i` — the
    /// quantity the paper's dynamic filtering decision (§4.4) compares
    /// against the support threshold ("whether the number of tuples per
    /// value-assignment for the parameters is low or high compared with
    /// the support threshold").
    pub fn tuples_per_value(&self, i: usize) -> f64 {
        let d = self.columns[i].distinct;
        if d == 0 {
            0.0
        } else {
            self.cardinality as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_column_stats() {
        let schema = Schema::new("r", &["a", "b"]);
        let tuples: Vec<Tuple> = vec![
            Tuple::from([Value::int(1), Value::int(5)]),
            Tuple::from([Value::int(1), Value::int(7)]),
            Tuple::from([Value::int(3), Value::int(5)]),
        ];
        let s = RelationStats::compute(&schema, &tuples);
        assert_eq!(s.cardinality, 3);
        assert_eq!(s.column(0).distinct, 2);
        assert_eq!(s.column(0).min, Some(Value::int(1)));
        assert_eq!(s.column(0).max, Some(Value::int(3)));
        assert_eq!(s.column(1).distinct, 2);
        assert!((s.tuples_per_value(0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_stats() {
        let schema = Schema::new("r", &["a"]);
        let s = RelationStats::compute(&schema, &[]);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.column(0).distinct, 0);
        assert_eq!(s.column(0).min, None);
        assert_eq!(s.tuples_per_value(0), 0.0);
    }
}
