//! Storage-layer errors.

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A named relation is not in the catalog.
    UnknownRelation {
        /// The missing relation's name.
        name: String,
    },
    /// A column name is not in a relation's schema.
    UnknownColumn {
        /// Relation whose schema was searched.
        relation: String,
        /// The missing column.
        column: String,
    },
    /// A row's arity does not match the schema it was inserted under.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Offending row arity.
        got: usize,
    },
    /// Malformed data file (TSV loader).
    Malformed {
        /// Human-readable description with line context.
        detail: String,
    },
    /// Underlying I/O failure (TSV loader), carried as text so the error
    /// type stays `Clone + Eq` for test assertions.
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownColumn { relation, column } => {
                write!(f, "relation `{relation}` has no column `{column}`")
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into `{relation}`: schema has {expected} columns, row has {got}"
            ),
            StorageError::Malformed { detail } => write!(f, "malformed data: {detail}"),
            StorageError::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io {
            detail: e.to_string(),
        }
    }
}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::UnknownRelation {
            name: "baskets".into(),
        };
        assert_eq!(e.to_string(), "unknown relation `baskets`");
        let e = StorageError::ArityMismatch {
            relation: "r".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("schema has 2"));
    }
}
