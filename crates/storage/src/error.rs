//! Storage-layer errors.

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A named relation is not in the catalog.
    UnknownRelation {
        /// The missing relation's name.
        name: String,
    },
    /// A column name is not in a relation's schema.
    UnknownColumn {
        /// Relation whose schema was searched.
        relation: String,
        /// The missing column.
        column: String,
    },
    /// A row's arity does not match the schema it was inserted under.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Offending row arity.
        got: usize,
    },
    /// Malformed data file (TSV loader).
    Malformed {
        /// Human-readable description with line context.
        detail: String,
    },
    /// Underlying I/O failure, carried as kind + text so the error type
    /// stays `Clone + Eq` for test assertions while recovery policies
    /// can still classify it (transient vs. disk-full vs. hard).
    Io {
        /// The original error's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// The rendered `std::io::Error`.
        detail: String,
    },
    /// End-to-end integrity violation: a spill run or snapshot frame
    /// failed its checksum (or structural) verification on read. The
    /// bytes on disk are not the bytes that were written — bit rot, a
    /// torn write, or foreign truncation — and must never be served as
    /// data.
    Corruption {
        /// The corrupt file.
        path: String,
        /// Zero-based index of the first frame that failed verification
        /// (frame 0 covers the file header).
        frame: u64,
        /// What the verifier observed.
        detail: String,
    },
}

impl StorageError {
    /// Is this a transient I/O error worth a bounded retry (interrupted
    /// syscall, timeout, would-block)? Policy: retried with backoff at
    /// whole-file granularity; see DESIGN.md §8.
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        matches!(
            self,
            StorageError::Io {
                kind: ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock,
                ..
            }
        )
    }

    /// Is this an out-of-disk-space error (`ENOSPC`)? Policy: the spill
    /// sink frees completed runs and degrades to memory-only.
    pub fn is_disk_full(&self) -> bool {
        matches!(
            self,
            StorageError::Io {
                kind: std::io::ErrorKind::StorageFull,
                ..
            }
        )
    }

    /// Is this a detected integrity violation? Policy: recompute the
    /// producing partition (spill runs) or truncate the replayable
    /// prefix (journal snapshots).
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::Corruption { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownColumn { relation, column } => {
                write!(f, "relation `{relation}` has no column `{column}`")
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into `{relation}`: schema has {expected} columns, row has {got}"
            ),
            StorageError::Malformed { detail } => write!(f, "malformed data: {detail}"),
            StorageError::Io { detail, .. } => write!(f, "i/o error: {detail}"),
            StorageError::Corruption {
                path,
                frame,
                detail,
            } => write!(f, "corruption detected in {path} at frame {frame}: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::UnknownRelation {
            name: "baskets".into(),
        };
        assert_eq!(e.to_string(), "unknown relation `baskets`");
        let e = StorageError::ArityMismatch {
            relation: "r".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("schema has 2"));
        let e = StorageError::Corruption {
            path: "/tmp/run-0.qfs".into(),
            frame: 3,
            detail: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("frame 3"), "{e}");
    }

    #[test]
    fn error_classification() {
        use std::io::ErrorKind;
        let transient = StorageError::from(std::io::Error::new(ErrorKind::TimedOut, "slow disk"));
        assert!(transient.is_transient());
        assert!(!transient.is_disk_full());
        let full = StorageError::from(std::io::Error::new(ErrorKind::StorageFull, "disk full"));
        assert!(full.is_disk_full());
        assert!(!full.is_transient());
        let corrupt = StorageError::Corruption {
            path: "x".into(),
            frame: 0,
            detail: "d".into(),
        };
        assert!(corrupt.is_corruption());
        assert!(!corrupt.is_transient());
        let hard = StorageError::from(std::io::Error::new(ErrorKind::PermissionDenied, "no"));
        assert!(!hard.is_transient() && !hard.is_disk_full() && !hard.is_corruption());
    }
}
