//! Virtual filesystem: the single seam between the storage layer and
//! the operating system's filesystem.
//!
//! Everything the spill path and the run journal do to disk goes
//! through a [`Vfs`] trait object — open/create/append, rename, remove,
//! fsync — with two backends:
//!
//! * [`RealFs`]: a thin delegation to `std::fs`. The default; zero
//!   behavioral change over direct calls.
//! * [`ChaosFs`]: a deterministic, seed-driven fault injector wrapping
//!   the real filesystem. It perturbs I/O at *scheduled injection
//!   points* — short writes, transient errors ([`Fault::Transient`]),
//!   `ENOSPC` ([`Fault::DiskFull`]), fsync failures, torn
//!   writes-on-crash ([`Fault::TornWrite`], which silently drops the
//!   tail of a stream the writer believes it wrote), and single-bit
//!   corruption ([`Fault::BitFlip`]) — so recovery policies can be
//!   exercised in-process, reproducibly, without root or `LD_PRELOAD`
//!   tricks.
//!
//! Determinism: every faultable operation draws a number from a global
//! atomic counter and hashes it (splitmix64) with the seed; the same
//! seed therefore yields the same fault sequence for a single-threaded
//! run. Tests can also pin exact faults with
//! [`ChaosFs::with_fault`] — "the 3rd fsync fails" — independent of the
//! random stream.
//!
//! Faults that *lie* (torn writes, bit flips) are precisely the ones
//! the frame checksums in [`crate::spill`] exist to catch: the chaos
//! matrix asserts that a lied-to writer is always caught by a verifying
//! reader, never served as wrong data.

use std::fmt::Debug;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open file handle behind a [`Vfs`].
pub trait VfsFile: Read + Write + Send {
    /// Flush file content (and metadata) to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

impl VfsFile for std::fs::File {
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
}

/// The filesystem operations the storage layer needs, as a trait so a
/// fault injector can sit between the engine and the disk.
pub trait Vfs: Debug + Send + Sync {
    /// Create (truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create a file that must not already exist (`O_EXCL`), for locks.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file for reading.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open (creating if missing) a file for appending.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Remove a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// List the entries of a directory.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;

    /// Read a whole file as UTF-8 text (routed through [`Vfs::open`] so
    /// fault injection covers it).
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut f = self.open(path)?;
        let mut s = String::new();
        f.read_to_string(&mut s)?;
        Ok(s)
    }
}

/// The real filesystem: direct delegation to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

/// A shared handle to the real filesystem.
pub fn real_fs() -> Arc<dyn Vfs> {
    Arc::new(RealFs)
}

impl Vfs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)?,
        ))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        ))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A fault class the chaos backend can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// A write accepts only a prefix of the buffer (honestly reported);
    /// correct callers loop, incorrect ones silently lose data.
    ShortWrite,
    /// A retryable failure (`ETIMEDOUT`-class). Policy: bounded retry
    /// with backoff.
    Transient,
    /// Out of disk space (`ENOSPC`). Policy: free completed spill runs,
    /// degrade to memory-only.
    DiskFull,
    /// `fsync` fails after data was accepted. Policy: the journal
    /// becomes advisory for the rest of the run.
    FsyncFail,
    /// The process "crashes" mid-write: a prefix reaches disk, the rest
    /// of this handle's stream is silently dropped while every call
    /// reports success. Detected later by frame checksums / the missing
    /// end-of-stream terminator.
    TornWrite,
    /// One bit of the written buffer is flipped on its way to disk.
    /// Detected later by frame checksums.
    BitFlip,
}

/// The operation classes faults are scheduled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `create` / `create_new`.
    Create,
    /// `open` (for read).
    Open,
    /// A `read` call on an open handle.
    Read,
    /// A `write` call on an open handle.
    Write,
    /// A `sync_all` call.
    Fsync,
    /// A `rename`.
    Rename,
    /// A `remove_file` / `remove_dir_all`.
    Remove,
}

impl OpClass {
    fn index(self) -> usize {
        match self {
            OpClass::Create => 0,
            OpClass::Open => 1,
            OpClass::Read => 2,
            OpClass::Write => 3,
            OpClass::Fsync => 4,
            OpClass::Rename => 5,
            OpClass::Remove => 6,
        }
    }

    /// Faults that make sense for this class, in the order the random
    /// stream indexes them.
    fn applicable(self) -> &'static [Fault] {
        match self {
            OpClass::Create => &[Fault::Transient, Fault::DiskFull],
            OpClass::Open | OpClass::Read | OpClass::Rename | OpClass::Remove => {
                &[Fault::Transient]
            }
            OpClass::Write => &[
                Fault::ShortWrite,
                Fault::Transient,
                Fault::DiskFull,
                Fault::TornWrite,
                Fault::BitFlip,
            ],
            OpClass::Fsync => &[Fault::FsyncFail, Fault::Transient],
        }
    }
}

const N_CLASSES: usize = 7;

/// Configuration for [`ChaosFs`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Average number of faultable operations between random faults;
    /// `0` disables the random stream (scheduled faults still fire).
    pub fault_every: u64,
}

/// One pinned injection point: the `nth` occurrence (1-based) of an
/// operation class suffers `fault`.
#[derive(Debug, Clone, Copy)]
struct ScheduledFault {
    class: OpClass,
    nth: u64,
    fault: Fault,
}

#[derive(Debug)]
struct ChaosState {
    cfg: ChaosConfig,
    /// Global faultable-operation counter: the random stream's clock.
    ops: AtomicU64,
    /// Per-class occurrence counters: the scheduled faults' clock.
    class_counts: [AtomicU64; N_CLASSES],
    schedule: Mutex<Vec<ScheduledFault>>,
    injected: AtomicU64,
    log: Mutex<Vec<(OpClass, Fault)>>,
}

impl ChaosState {
    /// Decide whether this operation faults; returns the fault plus the
    /// operation's hash (used to derive positions for partial faults).
    fn decide(&self, class: OpClass) -> Option<(Fault, u64)> {
        let occ = self.class_counts[class.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let h = splitmix64(self.cfg.seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let scheduled = {
            let sched = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
            sched
                .iter()
                .find(|s| s.class == class && s.nth == occ)
                .map(|s| s.fault)
        };
        let fault = scheduled.or_else(|| {
            let every = self.cfg.fault_every;
            if every == 0 || !h.is_multiple_of(every) {
                return None;
            }
            let menu = class.applicable();
            Some(menu[((h >> 32) % menu.len() as u64) as usize])
        })?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((class, fault));
        Some((fault, h))
    }
}

/// Deterministic seed-driven fault-injecting filesystem over [`RealFs`].
#[derive(Debug, Clone)]
pub struct ChaosFs {
    state: Arc<ChaosState>,
}

impl ChaosFs {
    /// A chaos filesystem with the given config.
    pub fn new(cfg: ChaosConfig) -> ChaosFs {
        ChaosFs {
            state: Arc::new(ChaosState {
                cfg,
                ops: AtomicU64::new(0),
                class_counts: Default::default(),
                schedule: Mutex::new(Vec::new()),
                injected: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Random faults driven by `seed`, roughly one per `fault_every`
    /// faultable operations.
    pub fn seeded(seed: u64, fault_every: u64) -> ChaosFs {
        ChaosFs::new(ChaosConfig { seed, fault_every })
    }

    /// No random faults; only faults pinned via [`ChaosFs::with_fault`].
    pub fn quiet() -> ChaosFs {
        ChaosFs::seeded(0, 0)
    }

    /// Pin a fault: the `nth` (1-based) occurrence of `class` suffers
    /// `fault`, regardless of the random stream.
    pub fn with_fault(self, class: OpClass, nth: u64, fault: Fault) -> ChaosFs {
        self.state
            .schedule
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ScheduledFault { class, nth, fault });
        self
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// The sequence of injected faults (class, fault), for assertions.
    pub fn injection_log(&self) -> Vec<(OpClass, Fault)> {
        self.state
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

fn transient() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "chaos: transient i/o failure")
}

fn disk_full() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "chaos: no space left on device")
}

/// Fail path-level (non-handle) operations that admit only hard faults.
fn path_op_fault(state: &ChaosState, class: OpClass) -> io::Result<()> {
    match state.decide(class) {
        Some((Fault::DiskFull, _)) => Err(disk_full()),
        Some((_, _)) => Err(transient()),
        None => Ok(()),
    }
}

impl Vfs for ChaosFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        path_op_fault(&self.state, OpClass::Create)?;
        Ok(Box::new(ChaosFile {
            inner: std::fs::File::create(path)?,
            state: Arc::clone(&self.state),
            dead: false,
        }))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        path_op_fault(&self.state, OpClass::Create)?;
        Ok(Box::new(ChaosFile {
            inner: std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)?,
            state: Arc::clone(&self.state),
            dead: false,
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        path_op_fault(&self.state, OpClass::Open)?;
        Ok(Box::new(ChaosFile {
            inner: std::fs::File::open(path)?,
            state: Arc::clone(&self.state),
            dead: false,
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        path_op_fault(&self.state, OpClass::Create)?;
        Ok(Box::new(ChaosFile {
            inner: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
            state: Arc::clone(&self.state),
            dead: false,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        path_op_fault(&self.state, OpClass::Rename)?;
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        path_op_fault(&self.state, OpClass::Remove)?;
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        path_op_fault(&self.state, OpClass::Create)?;
        std::fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        path_op_fault(&self.state, OpClass::Remove)?;
        std::fs::remove_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        path_op_fault(&self.state, OpClass::Open)?;
        RealFs.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A real file handle with fault injection on read/write/fsync.
struct ChaosFile {
    inner: std::fs::File,
    state: Arc<ChaosState>,
    /// A [`Fault::TornWrite`] fired: the rest of the stream is silently
    /// dropped while every call reports success, emulating data that
    /// never reached disk before a crash.
    dead: bool,
}

impl Read for ChaosFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.state.decide(OpClass::Read) {
            Some(_) => Err(transient()),
            None => self.inner.read(buf),
        }
    }
}

impl Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Ok(buf.len());
        }
        match self.state.decide(OpClass::Write) {
            None => self.inner.write(buf),
            Some((Fault::ShortWrite, _)) => {
                // Accept only the first half (at least one byte) and
                // report it honestly: `write_all` callers loop and lose
                // nothing; raw `write` callers that ignore the count
                // would corrupt — which the checksums then catch.
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write_all(&buf[..n])?;
                Ok(n)
            }
            Some((Fault::Transient, _)) => Err(transient()),
            Some((Fault::DiskFull, _)) => Err(disk_full()),
            Some((Fault::TornWrite, h)) => {
                let n = if buf.is_empty() {
                    0
                } else {
                    (h as usize) % buf.len()
                };
                self.inner.write_all(&buf[..n])?;
                self.dead = true;
                Ok(buf.len())
            }
            Some((Fault::BitFlip, h)) => {
                if buf.is_empty() {
                    return Ok(0);
                }
                let mut flipped = buf.to_vec();
                let bit = (h as usize) % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_all(&flipped)?;
                Ok(buf.len())
            }
            Some((Fault::FsyncFail, _)) => {
                // Fsync faults are not scheduled on writes; treat as
                // transient if the random menu ever changes.
                Err(transient())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}

impl VfsFile for ChaosFile {
    fn sync_all(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        match self.state.decide(OpClass::Fsync) {
            Some((Fault::FsyncFail, _)) => Err(io::Error::other("chaos: fsync failed")),
            Some(_) => Err(transient()),
            None => std::fs::File::sync_all(&self.inner),
        }
    }
}

/// splitmix64: a tiny, high-quality deterministic mixer — the whole
/// fault stream derives from it, so no `rand` dependency is needed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qf-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_fs_roundtrip() {
        let dir = tmp("real");
        let fs = RealFs;
        let path = dir.join("a.txt");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(fs.read_to_string(&path).unwrap(), "hello");
        let renamed = dir.join("b.txt");
        fs.rename(&path, &renamed).unwrap();
        assert!(fs.exists(&renamed) && !fs.exists(&path));
        assert_eq!(fs.read_dir(&dir).unwrap(), vec![renamed.clone()]);
        fs.remove_file(&renamed).unwrap();
        fs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheduled_faults_fire_at_exact_points() {
        let dir = tmp("sched");
        let fs = ChaosFs::quiet()
            .with_fault(OpClass::Write, 2, Fault::Transient)
            .with_fault(OpClass::Fsync, 1, Fault::FsyncFail);
        let mut f = fs.create(&dir.join("x")).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The failed write consumed occurrence 2; this one succeeds.
        f.write_all(b"third").unwrap();
        assert!(f.sync_all().is_err());
        assert_eq!(fs.injected(), 2);
        assert_eq!(
            fs.injection_log(),
            vec![
                (OpClass::Write, Fault::Transient),
                (OpClass::Fsync, Fault::FsyncFail)
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_silently_drops_the_tail() {
        let dir = tmp("torn");
        let fs = ChaosFs::quiet().with_fault(OpClass::Write, 2, Fault::TornWrite);
        let path = dir.join("x");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"kept:").unwrap();
        f.write_all(b"partially-torn").unwrap(); // lies: reports success
        f.write_all(b"fully-dropped").unwrap();
        f.sync_all().unwrap(); // also lies
        drop(f);
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.starts_with(b"kept:"));
        assert!(on_disk.len() < b"kept:partially-tornfully-dropped".len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let dir = tmp("flip");
        let fs = ChaosFs::quiet().with_fault(OpClass::Write, 1, Fault::BitFlip);
        let path = dir.join("x");
        let payload = vec![0u8; 64];
        let mut f = fs.create(&path).unwrap();
        f.write_all(&payload).unwrap();
        drop(f);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 64);
        let flipped_bits: u32 = on_disk.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped_bits, 1, "{on_disk:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_reports_partial_count() {
        let dir = tmp("short");
        let fs = ChaosFs::quiet().with_fault(OpClass::Write, 1, Fault::ShortWrite);
        let path = dir.join("x");
        let mut f = fs.create(&path).unwrap();
        // write_all loops over the short write, so nothing is lost.
        f.write_all(b"0123456789").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        assert_eq!(fs.injected(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_stream_is_deterministic() {
        let dir = tmp("seeded");
        let run = |seed: u64| {
            let fs = ChaosFs::seeded(seed, 3);
            let path = dir.join(format!("s{seed}"));
            let mut outcomes = Vec::new();
            for i in 0..50 {
                match fs.create(&path) {
                    Ok(mut f) => outcomes.push(f.write_all(format!("{i}").as_bytes()).is_ok()),
                    Err(_) => outcomes.push(false),
                }
            }
            (outcomes, fs.injection_log())
        };
        let (a1, log1) = run(42);
        let (a2, log2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(log1, log2);
        assert!(!log1.is_empty(), "fault_every=3 over 100 ops must fire");
        let (b, _) = run(43);
        assert_ne!(a1, b, "different seeds should differ (w.h.p.)");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_full_surfaces_storage_full_kind() {
        let dir = tmp("full");
        let fs = ChaosFs::quiet().with_fault(OpClass::Create, 1, Fault::DiskFull);
        let err = match fs.create(&dir.join("x")) {
            Ok(_) => panic!("scheduled DiskFull did not fire"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
