//! # qf-storage — relational storage substrate
//!
//! The in-memory relational layer beneath the query-flocks system: values
//! with cheap interned symbols, tuples, set-semantics relations, schemas,
//! hash indexes, per-column statistics, and a named-relation catalog.
//!
//! The SIGMOD '98 query-flocks paper assumes "the data is stored in a
//! conventional relational system" (§1.4). This crate is that system,
//! pared down to what mining workloads need:
//!
//! * **Set semantics.** Extended conjunctive queries in the paper follow
//!   set semantics ("Some of our claims would not hold for bag
//!   semantics", §2.3), so [`Relation`] stores sorted, deduplicated
//!   tuples and every construction path deduplicates.
//! * **Column statistics.** The paper's plan search (§4) is driven by
//!   relation sizes and numbers of distinct parameter values;
//!   [`Relation::stats`] exposes cardinality and per-column distinct
//!   counts so the optimizer in `qf-engine`/`qf-core` can make the same
//!   decisions.
//! * **Cheap values.** Mining joins touch every tuple many times, so
//!   [`Value`] is a two-word `Copy` type; strings are interned once into
//!   [`Symbol`]s and compared as integers thereafter.
//!
//! ```
//! use qf_storage::{Database, Relation, Schema, Value};
//!
//! let mut db = Database::new();
//! let baskets = Relation::from_rows(
//!     Schema::new("baskets", &["bid", "item"]),
//!     vec![
//!         vec![Value::int(1), Value::str("beer")],
//!         vec![Value::int(1), Value::str("diapers")],
//!         vec![Value::int(2), Value::str("beer")],
//!     ],
//! );
//! db.insert(baskets);
//! assert_eq!(db.get("baskets").unwrap().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod cmp;
pub mod error;
pub mod hash;
pub mod index;
pub mod relation;
pub mod schema;
pub mod spill;
pub mod stats;
pub mod symbol;
pub mod tsv;
pub mod tuple;
pub mod value;
pub mod vfs;
pub mod wal;

pub use catalog::Database;
pub use cmp::CmpOp;
pub use error::{Result, StorageError};
pub use hash::{FastHasher, FastMap, FastSet};
pub use index::HashIndex;
pub use relation::{Relation, RelationBuilder};
pub use schema::Schema;
pub use spill::{Fnv1a, SpillDir, SpillFile, SpillReader, SpillWriter};
pub use stats::ColumnStats;
pub use symbol::Symbol;
pub use tuple::Tuple;
pub use value::Value;
pub use vfs::{real_fs, ChaosConfig, ChaosFs, Fault, OpClass, RealFs, Vfs, VfsFile};
pub use wal::{acquire_pid_lock, process_alive, Wal, WalCounters, WalOptions, WalRecord, WalStats};
