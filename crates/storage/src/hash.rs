//! Fast, non-cryptographic hashing for hot join/aggregation paths.
//!
//! The engine hashes small integer-like keys (interned [`Symbol`]s and
//! `i64`s) billions of times during joins; SipHash's HashDoS resistance
//! is wasted there. This is the FxHash multiply-rotate scheme used by
//! rustc, implemented locally because `rustc-hash` is outside this
//! project's dependency allowance.
//!
//! [`Symbol`]: crate::Symbol

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, as in rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: fast word-at-a-time multiply-rotate.
///
/// Not HashDoS resistant — only for internal maps keyed by values the
/// process itself produced (tuples, symbols, row ids).
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Byte-level shifts must not collide trivially.
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[0u8, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn uneven_tail_bytes_hash_differently() {
        // chunks_exact remainder path: 9 bytes vs 10 bytes sharing a prefix.
        let a = [7u8; 9];
        let b = [7u8; 10];
        assert_ne!(hash_of(&a.as_slice()), hash_of(&b.as_slice()));
    }
}
