//! Out-of-core spill files: temp-file management and a compact on-disk
//! tuple encoding.
//!
//! Operators that would otherwise trip their memory budget partition
//! state to disk (Grace-hash style) and continue instead of aborting;
//! the `FILTER`-step journal snapshots parameter relations with the same
//! encoding so a crashed run can resume. Both live on this format:
//!
//! * **Spill run** (`QFS1`): a header (magic, arity) followed by a
//!   sequence of encoded tuples. Runs written by the engine are sorted
//!   and deduplicated, so a k-way merge over runs reconstructs the
//!   canonical set order.
//! * **Relation snapshot** (`QFR1`): a spill run prefixed with the
//!   relation's schema (name, column names) and row count, used by the
//!   journal. [`write_relation`] fsyncs before returning so a
//!   `kill -9` immediately after cannot tear the snapshot.
//!
//! Values are encoded as a tag byte plus a varint: integers as
//! zigzag-encoded LEB128, symbols as references into a **per-file string
//! dictionary** whose entries are emitted inline on first use. Interned
//! [`Symbol`] ids are *not* stable across processes, so readers re-intern
//! every dictionary string; a snapshot written by a killed run loads
//! correctly in the resuming process.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, StorageError};
use crate::hash::FastMap;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::Value;

/// Magic bytes opening a spill run.
const RUN_MAGIC: &[u8; 4] = b"QFS1";
/// Magic bytes opening a relation snapshot.
const REL_MAGIC: &[u8; 4] = b"QFR1";

/// Value tag: zigzag-varint integer.
const TAG_INT: u8 = 0;
/// Value tag: varint reference to an already-defined dictionary string.
const TAG_SYM_REF: u8 = 1;
/// Value tag: inline dictionary definition (varint length + UTF-8
/// bytes); the string is assigned the next dictionary id.
const TAG_SYM_DEF: u8 = 2;

/// Distinguishes sibling [`SpillDir`]s created in the same parent.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A managed directory for spill files.
///
/// Allocates uniquely named file paths for concurrent writers and
/// removes the whole directory (best effort) on drop. One `SpillDir` is
/// shared by every operator of a governed execution via the context.
#[derive(Debug)]
pub struct SpillDir {
    root: PathBuf,
    counter: AtomicU64,
}

impl SpillDir {
    /// Create a fresh spill directory inside `parent` (the parent is
    /// created if missing).
    pub fn create(parent: &Path) -> Result<SpillDir> {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = parent.join(format!("qf-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&root)?;
        Ok(SpillDir {
            root,
            counter: AtomicU64::new(0),
        })
    }

    /// Create a fresh spill directory under the system temp directory.
    pub fn create_temp() -> Result<SpillDir> {
        SpillDir::create(&std::env::temp_dir())
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Allocate a unique file path for a new spill file. Thread-safe.
    pub fn alloc(&self, tag: &str) -> PathBuf {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        self.root.join(format!("{tag}-{n}.qfs"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Handle to one finished spill file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillFile {
    /// Path of the file.
    pub path: PathBuf,
    /// Tuples written.
    pub rows: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Sequential writer for a spill run.
pub struct SpillWriter {
    w: BufWriter<File>,
    path: PathBuf,
    arity: usize,
    dict: FastMap<Symbol, u64>,
    rows: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Create a spill run at `path` for tuples of `arity` columns.
    pub fn create(path: PathBuf, arity: usize) -> Result<SpillWriter> {
        let file = File::create(&path)?;
        let mut w = SpillWriter {
            w: BufWriter::new(file),
            path,
            arity,
            dict: FastMap::default(),
            rows: 0,
            bytes: 0,
        };
        w.put(RUN_MAGIC)?;
        w.put_varint(arity as u64)?;
        Ok(w)
    }

    /// Append one tuple.
    ///
    /// # Panics
    /// Debug-asserts the tuple's arity matches the file's.
    pub fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        debug_assert_eq!(t.arity(), self.arity, "spill arity mismatch");
        for &v in t.values() {
            match v {
                Value::Int(i) => {
                    self.put(&[TAG_INT])?;
                    self.put_varint(zigzag(i))?;
                }
                Value::Sym(s) => match self.dict.get(&s) {
                    Some(&id) => {
                        self.put(&[TAG_SYM_REF])?;
                        self.put_varint(id)?;
                    }
                    None => {
                        let id = self.dict.len() as u64;
                        self.dict.insert(s, id);
                        let bytes = s.as_str().as_bytes();
                        self.put(&[TAG_SYM_DEF])?;
                        self.put_varint(bytes.len() as u64)?;
                        self.put(bytes)?;
                    }
                },
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Flush and close, returning the file handle.
    pub fn finish(self) -> Result<SpillFile> {
        self.finish_inner(false)
    }

    /// Flush, `fsync`, and close — for snapshots that must survive a
    /// process kill.
    pub fn finish_synced(self) -> Result<SpillFile> {
        self.finish_inner(true)
    }

    fn finish_inner(mut self, sync: bool) -> Result<SpillFile> {
        self.w.flush()?;
        if sync {
            self.w.get_ref().sync_all()?;
        }
        Ok(SpillFile {
            path: self.path,
            rows: self.rows,
            bytes: self.bytes,
        })
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.w.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn put_varint(&mut self, v: u64) -> Result<()> {
        let mut buf = [0u8; 10];
        let n = encode_varint(v, &mut buf);
        self.put(&buf[..n])
    }
}

/// Sequential reader over a spill run.
pub struct SpillReader {
    r: BufReader<File>,
    arity: usize,
    dict: Vec<Symbol>,
}

impl SpillReader {
    /// Open a spill run, validating the header.
    pub fn open(path: &Path) -> Result<SpillReader> {
        let mut r = BufReader::new(File::open(path)?);
        expect_magic(&mut r, RUN_MAGIC, path)?;
        let arity = read_varint(&mut r)? as usize;
        Ok(SpillReader {
            r,
            arity,
            dict: Vec::new(),
        })
    }

    /// Column count of the run's tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Read the next tuple, or `None` at end of file.
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        let mut tag = [0u8; 1];
        match self.r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let mut values = Vec::with_capacity(self.arity);
        values.push(read_value(&mut self.r, tag[0], &mut self.dict)?);
        for _ in 1..self.arity {
            self.r.read_exact(&mut tag)?;
            values.push(read_value(&mut self.r, tag[0], &mut self.dict)?);
        }
        Ok(Some(Tuple::from(values)))
    }
}

/// Write `rel` as a crash-safe snapshot at `path` (schema + tuples,
/// fsynced). Returns the encoded size.
pub fn write_relation(path: &Path, rel: &Relation) -> Result<u64> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(REL_MAGIC)?;
    write_str(&mut w, rel.name())?;
    write_varint(&mut w, rel.schema().arity() as u64)?;
    for col in rel.schema().columns() {
        write_str(&mut w, col)?;
    }
    write_varint(&mut w, rel.len() as u64)?;
    w.flush()?;
    drop(w);
    // Reuse the run writer for the tuple stream by appending.
    let file = std::fs::OpenOptions::new().append(true).open(path)?;
    let mut w = BufWriter::new(file);
    let mut dict: FastMap<Symbol, u64> = FastMap::default();
    for t in rel.iter() {
        for &v in t.values() {
            match v {
                Value::Int(i) => {
                    w.write_all(&[TAG_INT])?;
                    write_varint(&mut w, zigzag(i))?;
                }
                Value::Sym(s) => match dict.get(&s) {
                    Some(&id) => {
                        w.write_all(&[TAG_SYM_REF])?;
                        write_varint(&mut w, id)?;
                    }
                    None => {
                        let id = dict.len() as u64;
                        dict.insert(s, id);
                        w.write_all(&[TAG_SYM_DEF])?;
                        write_str(&mut w, s.as_str())?;
                    }
                },
            }
        }
    }
    w.flush()?;
    w.get_ref().sync_all()?;
    Ok(std::fs::metadata(path)?.len())
}

/// Load a relation snapshot written by [`write_relation`], re-interning
/// every dictionary string into this process's interner.
pub fn read_relation(path: &Path) -> Result<Relation> {
    let mut r = BufReader::new(File::open(path)?);
    expect_magic(&mut r, REL_MAGIC, path)?;
    let name = read_str(&mut r)?;
    let arity = read_varint(&mut r)? as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(read_str(&mut r)?);
    }
    let rows = read_varint(&mut r)? as usize;
    let mut dict: Vec<Symbol> = Vec::new();
    let mut tuples = Vec::with_capacity(rows);
    let mut tag = [0u8; 1];
    for _ in 0..rows {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            r.read_exact(&mut tag).map_err(|_| truncated(path))?;
            values.push(read_value(&mut r, tag[0], &mut dict)?);
        }
        tuples.push(Tuple::from(values));
    }
    Ok(Relation::from_tuples(
        Schema::from_columns(name, columns),
        tuples,
    ))
}

/// Incremental FNV-1a hasher. Unlike [`crate::FastHasher`], its output
/// is specified byte-for-byte, so fingerprints written to a journal in
/// one process validate in another.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb one value, stably across processes (symbols hash by their
    /// string content, never their intern id).
    pub fn write_value(&mut self, v: Value) {
        match v {
            Value::Int(i) => {
                self.write(&[TAG_INT]);
                self.write(&i.to_le_bytes());
            }
            Value::Sym(s) => {
                let bytes = s.as_str().as_bytes();
                self.write(&[TAG_SYM_DEF]);
                self.write(&(bytes.len() as u64).to_le_bytes());
                self.write(bytes);
            }
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Process-stable fingerprint of a relation's schema and full content.
/// Two relations hash equal iff their column names, arity, and tuple
/// sets are equal (the relation *name* is excluded so renames don't
/// invalidate journals).
pub fn content_hash(rel: &Relation) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&(rel.schema().arity() as u64).to_le_bytes());
    for col in rel.schema().columns() {
        h.write(col.as_bytes());
        h.write(&[0xff]);
    }
    h.write(&(rel.len() as u64).to_le_bytes());
    for t in rel.iter() {
        for &v in t.values() {
            h.write_value(v);
        }
    }
    h.finish()
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_varint(mut v: u64, buf: &mut [u8; 10]) -> usize {
    let mut i = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[i] = byte;
            return i + 1;
        }
        buf[i] = byte | 0x80;
        i += 1;
    }
}

fn read_varint(r: &mut impl Read) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut byte = [0u8; 1];
    loop {
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(StorageError::Malformed {
                detail: "varint overflows 64 bits".to_string(),
            });
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_value(r: &mut impl Read, tag: u8, dict: &mut Vec<Symbol>) -> Result<Value> {
    match tag {
        TAG_INT => Ok(Value::Int(unzigzag(read_varint(r)?))),
        TAG_SYM_REF => {
            let id = read_varint(r)? as usize;
            dict.get(id)
                .copied()
                .map(Value::Sym)
                .ok_or_else(|| StorageError::Malformed {
                    detail: format!("spill file references undefined dictionary id {id}"),
                })
        }
        TAG_SYM_DEF => {
            let s = read_str(r)?;
            let sym = Symbol::intern(&s);
            dict.push(sym);
            Ok(Value::Sym(sym))
        }
        other => Err(StorageError::Malformed {
            detail: format!("unknown spill value tag {other}"),
        }),
    }
}

fn write_varint(w: &mut impl Write, v: u64) -> Result<()> {
    let mut buf = [0u8; 10];
    let n = encode_varint(v, &mut buf);
    w.write_all(&buf[..n])?;
    Ok(())
}

fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_str(r: &mut impl Read) -> Result<String> {
    let len = read_varint(r)? as usize;
    // A corrupt length should error, not attempt a huge allocation.
    if len > 1 << 30 {
        return Err(StorageError::Malformed {
            detail: format!("string length {len} exceeds sanity bound"),
        });
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| StorageError::Malformed {
        detail: "spill string is not valid UTF-8".to_string(),
    })
}

fn expect_magic(r: &mut impl Read, magic: &[u8; 4], path: &Path) -> Result<()> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got).map_err(|_| truncated(path))?;
    if &got != magic {
        return Err(StorageError::Malformed {
            detail: format!("{} is not a spill file (bad magic)", path.display()),
        });
    }
    Ok(())
}

fn truncated(path: &Path) -> StorageError {
    StorageError::Malformed {
        detail: format!("{} is truncated", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_tuples(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::from(vec![
                    Value::int(i - 5),
                    Value::str(&format!("item{}", i % 7)),
                    Value::int(i * 1_000_003),
                ])
            })
            .collect()
    }

    #[test]
    fn run_roundtrip_with_dictionary() {
        let dir = SpillDir::create_temp().unwrap();
        let tuples = mixed_tuples(100);
        let mut w = SpillWriter::create(dir.alloc("run"), 3).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        assert_eq!(file.rows, 100);
        // 7 distinct strings: the dictionary keeps the file far smaller
        // than 100 copies of the string data.
        assert!(file.bytes < 100 * 10 + 7 * 10 + 64, "{}", file.bytes);

        let mut r = SpillReader::open(&file.path).unwrap();
        assert_eq!(r.arity(), 3);
        let mut back = Vec::new();
        while let Some(t) = r.next_tuple().unwrap() {
            back.push(t);
        }
        assert_eq!(back, tuples);
    }

    #[test]
    fn empty_run_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let file = SpillWriter::create(dir.alloc("run"), 2)
            .unwrap()
            .finish()
            .unwrap();
        let mut r = SpillReader::open(&file.path).unwrap();
        assert!(r.next_tuple().unwrap().is_none());
    }

    #[test]
    fn extreme_integers_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let tuples = vec![
            Tuple::from([Value::int(i64::MIN)]),
            Tuple::from([Value::int(-1)]),
            Tuple::from([Value::int(0)]),
            Tuple::from([Value::int(i64::MAX)]),
        ];
        let mut w = SpillWriter::create(dir.alloc("run"), 1).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        let mut r = SpillReader::open(&file.path).unwrap();
        for t in &tuples {
            assert_eq!(r.next_tuple().unwrap().as_ref(), Some(t));
        }
    }

    #[test]
    fn relation_snapshot_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::from_tuples(
            Schema::new("ok_s", &["s", "support"]),
            (0..50)
                .map(|i| Tuple::from(vec![Value::str(&format!("sym{i}")), Value::int(i)]))
                .collect(),
        );
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        let back = read_relation(&path).unwrap();
        assert_eq!(back, rel);
        assert_eq!(back.name(), "ok_s");
        assert_eq!(content_hash(&back), content_hash(&rel));
    }

    #[test]
    fn empty_relation_snapshot_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::empty(Schema::new("nothing", &["x"]));
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        assert_eq!(read_relation(&path).unwrap(), rel);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = SpillDir::create_temp().unwrap();
        let path = dir.alloc("junk");
        std::fs::write(&path, b"not a spill file").unwrap();
        assert!(matches!(
            SpillReader::open(&path),
            Err(StorageError::Malformed { .. })
        ));
        assert!(matches!(
            read_relation(&path),
            Err(StorageError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::from_tuples(
            Schema::new("r", &["a"]),
            (0..20).map(|i| Tuple::from([Value::int(i)])).collect(),
        );
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_relation(&path).is_err());
    }

    #[test]
    fn content_hash_is_content_sensitive() {
        let rel = |rows: &[(i64, &str)]| {
            Relation::from_tuples(
                Schema::new("r", &["n", "s"]),
                rows.iter()
                    .map(|&(n, s)| Tuple::from(vec![Value::int(n), Value::str(s)]))
                    .collect(),
            )
        };
        let a = rel(&[(1, "x"), (2, "y")]);
        let b = rel(&[(1, "x"), (2, "z")]);
        let c = rel(&[(1, "x")]);
        assert_ne!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&a), content_hash(&c));
        // Renaming the relation does not change the hash; renaming a
        // column does.
        assert_eq!(content_hash(&a.renamed("other")), content_hash(&a));
        let d = Relation::from_tuples(Schema::new("r", &["m", "s"]), a.tuples().to_vec());
        assert_ne!(content_hash(&a), content_hash(&d));
    }

    #[test]
    fn spill_dir_cleans_up_on_drop() {
        let dir = SpillDir::create_temp().unwrap();
        let root = dir.path().to_path_buf();
        let mut w = SpillWriter::create(dir.alloc("run"), 1).unwrap();
        w.write_tuple(&Tuple::from([Value::int(1)])).unwrap();
        w.finish().unwrap();
        assert!(root.exists());
        drop(dir);
        assert!(!root.exists());
    }

    #[test]
    fn alloc_paths_are_unique() {
        let dir = SpillDir::create_temp().unwrap();
        let a = dir.alloc("x");
        let b = dir.alloc("x");
        assert_ne!(a, b);
    }
}
