//! Out-of-core spill files: temp-file management and a compact,
//! integrity-checked on-disk tuple encoding.
//!
//! Operators that would otherwise trip their memory budget partition
//! state to disk (Grace-hash style) and continue instead of aborting;
//! the `FILTER`-step journal snapshots parameter relations with the same
//! encoding so a crashed run can resume. Both live on this format:
//!
//! * **Spill run** (`QFS2`): a header (magic, arity) followed by a
//!   sequence of encoded tuples. Runs written by the engine are sorted
//!   and deduplicated, so a k-way merge over runs reconstructs the
//!   canonical set order.
//! * **Relation snapshot** (`QFR2`): a spill run prefixed with the
//!   relation's schema (name, column names) and row count, used by the
//!   journal. [`write_relation`] fsyncs before returning so a
//!   `kill -9` immediately after cannot tear the snapshot.
//!
//! **End-to-end integrity.** Everything after the 4-byte magic flows
//! through checksummed *frames*: `varint(payload_len) · payload ·
//! FNV-1a(frame_index ‖ payload)`, at most [`FRAME_CAP`] payload bytes
//! each, closed by a zero-length terminator frame. Readers verify every
//! frame before serving a byte of it and fail with
//! [`StorageError::Corruption`] on any mismatch; a stream that ends
//! without its terminator (a torn write) is likewise corruption, never
//! a silently shorter relation. Flipping any single byte of a file is
//! detected. All file I/O goes through a [`Vfs`], so the chaos backend
//! ([`crate::vfs::ChaosFs`]) can prove those claims under injected
//! faults.
//!
//! Values are encoded as a tag byte plus a varint: integers as
//! zigzag-encoded LEB128, symbols as references into a **per-file string
//! dictionary** whose entries are emitted inline on first use. Interned
//! [`Symbol`] ids are *not* stable across processes, so readers re-intern
//! every dictionary string; a snapshot written by a killed run loads
//! correctly in the resuming process.

use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::hash::FastMap;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::vfs::{real_fs, RealFs, Vfs, VfsFile};

/// Magic bytes opening a spill run.
const RUN_MAGIC: &[u8; 4] = b"QFS2";
/// Magic bytes opening a relation snapshot.
const REL_MAGIC: &[u8; 4] = b"QFR2";

/// Maximum payload bytes per integrity frame. Also the reader's sanity
/// bound: a frame header claiming more is corruption by definition.
pub const FRAME_CAP: usize = 32 << 10;

/// Value tag: zigzag-varint integer.
const TAG_INT: u8 = 0;
/// Value tag: varint reference to an already-defined dictionary string.
const TAG_SYM_REF: u8 = 1;
/// Value tag: inline dictionary definition (varint length + UTF-8
/// bytes); the string is assigned the next dictionary id.
const TAG_SYM_DEF: u8 = 2;

/// Distinguishes sibling [`SpillDir`]s created in the same parent.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A managed directory for spill files.
///
/// Allocates uniquely named file paths for concurrent writers and
/// removes the whole directory (best effort) on drop. One `SpillDir` is
/// shared by every operator of a governed execution via the context.
/// All file I/O under the directory goes through its [`Vfs`].
#[derive(Debug)]
pub struct SpillDir {
    root: PathBuf,
    counter: AtomicU64,
    vfs: Arc<dyn Vfs>,
}

impl SpillDir {
    /// Create a fresh spill directory inside `parent` (the parent is
    /// created if missing), on the real filesystem.
    pub fn create(parent: &Path) -> Result<SpillDir> {
        SpillDir::create_on(real_fs(), parent)
    }

    /// [`SpillDir::create`] on an explicit [`Vfs`] backend.
    pub fn create_on(vfs: Arc<dyn Vfs>, parent: &Path) -> Result<SpillDir> {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = parent.join(format!("qf-spill-{}-{seq}", std::process::id()));
        vfs.create_dir_all(&root)?;
        Ok(SpillDir {
            root,
            counter: AtomicU64::new(0),
            vfs,
        })
    }

    /// Create a fresh spill directory under the system temp directory.
    pub fn create_temp() -> Result<SpillDir> {
        SpillDir::create(&std::env::temp_dir())
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// The filesystem backend files in this directory are accessed
    /// through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Allocate a unique file path for a new spill file. Thread-safe.
    pub fn alloc(&self, tag: &str) -> PathBuf {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        self.root.join(format!("{tag}-{n}.qfs"))
    }

    /// Open a writer on a freshly allocated path (through the vfs).
    pub fn writer(&self, tag: &str, arity: usize) -> Result<SpillWriter> {
        SpillWriter::create_on(&*self.vfs, self.alloc(tag), arity)
    }

    /// Open a reader on a file in this directory (through the vfs).
    pub fn reader(&self, path: &Path) -> Result<SpillReader> {
        SpillReader::open_on(&*self.vfs, path)
    }

    /// Remove a consumed (or partial) spill file. NotFound is not an
    /// error: retry paths discard files that may never have been born.
    pub fn remove(&self, path: &Path) -> Result<()> {
        match self.vfs.remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Number of files currently in the directory — the leak detector
    /// behind `ExecStats::spill_files_live`. Counted off the real
    /// filesystem (best effort, 0 on error) so it cannot itself fault.
    pub fn live_files(&self) -> u64 {
        std::fs::read_dir(&self.root)
            .map(|it| it.count() as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Handle to one finished spill file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillFile {
    /// Path of the file.
    pub path: PathBuf,
    /// Tuples written.
    pub rows: u64,
    /// Encoded size in bytes (including framing overhead).
    pub bytes: u64,
}

/// Buffered, framed, checksummed byte sink over a [`VfsFile`].
struct FrameWriter {
    file: Box<dyn VfsFile>,
    buf: Vec<u8>,
    frame: u64,
    bytes: u64,
}

impl FrameWriter {
    fn create(vfs: &dyn Vfs, path: &Path, magic: &[u8; 4]) -> Result<FrameWriter> {
        let mut file = vfs.create(path)?;
        file.write_all(magic)?;
        Ok(FrameWriter {
            file,
            buf: Vec::with_capacity(FRAME_CAP.min(4 << 10)),
            frame: 0,
            bytes: magic.len() as u64,
        })
    }

    fn put(&mut self, mut bytes: &[u8]) -> Result<()> {
        while !bytes.is_empty() {
            let room = FRAME_CAP - self.buf.len();
            let n = room.min(bytes.len());
            self.buf.extend_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
            if self.buf.len() == FRAME_CAP {
                self.emit_frame()?;
            }
        }
        Ok(())
    }

    fn put_varint(&mut self, v: u64) -> Result<()> {
        let mut buf = [0u8; 10];
        let n = encode_varint(v, &mut buf);
        self.put(&buf[..n])
    }

    fn put_str(&mut self, s: &str) -> Result<()> {
        self.put_varint(s.len() as u64)?;
        self.put(s.as_bytes())
    }

    /// Write the buffered payload as one checksummed frame. The
    /// checksum covers the frame *index* too, so a frame cannot be
    /// replayed at a different position undetected.
    fn emit_frame(&mut self) -> Result<()> {
        let mut head = [0u8; 10];
        let n = encode_varint(self.buf.len() as u64, &mut head);
        let mut h = Fnv1a::new();
        h.write(&self.frame.to_le_bytes());
        h.write(&self.buf);
        self.file.write_all(&head[..n])?;
        self.file.write_all(&self.buf)?;
        self.file.write_all(&h.finish().to_le_bytes())?;
        self.bytes += n as u64 + self.buf.len() as u64 + 8;
        self.frame += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flush the tail frame, write the zero-length terminator (whose
    /// absence lets readers detect torn files), and close. Returns the
    /// total bytes written.
    fn finish(mut self, sync: bool) -> Result<u64> {
        if !self.buf.is_empty() {
            self.emit_frame()?;
        }
        let mut h = Fnv1a::new();
        h.write(&self.frame.to_le_bytes());
        self.file.write_all(&[0])?;
        self.file.write_all(&h.finish().to_le_bytes())?;
        self.bytes += 9;
        self.file.flush()?;
        if sync {
            self.file.sync_all()?;
        }
        Ok(self.bytes)
    }
}

/// Verifying reader over a framed file: every frame's checksum is
/// checked before any of its bytes are served.
struct FrameReader {
    file: BufReader<Box<dyn VfsFile>>,
    path: PathBuf,
    buf: Vec<u8>,
    pos: usize,
    frame: u64,
    done: bool,
}

impl FrameReader {
    fn open(vfs: &dyn Vfs, path: &Path, magic: &[u8; 4]) -> Result<FrameReader> {
        let file = vfs.open(path)?;
        let mut r = FrameReader {
            file: BufReader::new(file),
            path: path.to_path_buf(),
            buf: Vec::new(),
            pos: 0,
            frame: 0,
            done: false,
        };
        let mut got = [0u8; 4];
        r.file
            .read_exact(&mut got)
            .map_err(|e| r.read_err(e, "magic"))?;
        if &got != magic {
            return Err(r.corrupt(format!("bad magic {got:02x?} (expected {:02x?})", magic)));
        }
        Ok(r)
    }

    fn corrupt(&self, detail: impl Into<String>) -> StorageError {
        StorageError::Corruption {
            path: self.path.display().to_string(),
            frame: self.frame,
            detail: detail.into(),
        }
    }

    /// Raw-read failure: unexpected EOF means a truncated/torn file
    /// (corruption); anything else is a plain I/O error.
    fn read_err(&self, e: std::io::Error, what: &str) -> StorageError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            self.corrupt(format!("file ends mid-{what} (torn or truncated)"))
        } else {
            e.into()
        }
    }

    fn raw_exact(&mut self, out: &mut [u8], what: &str) -> Result<()> {
        self.file
            .read_exact(out)
            .map_err(|e| self.read_err(e, what))
    }

    fn raw_varint(&mut self, what: &str) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        let mut byte = [0u8; 1];
        loop {
            self.raw_exact(&mut byte, what)?;
            if shift >= 64 {
                return Err(self.corrupt(format!("{what} varint overflows 64 bits")));
            }
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Load and verify the next frame. `false` at a clean end of stream
    /// (terminator frame seen); a stream that just stops is corruption.
    fn refill(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        let len = self.raw_varint("frame header")? as usize;
        if len > FRAME_CAP {
            return Err(self.corrupt(format!("frame length {len} exceeds cap {FRAME_CAP}")));
        }
        let mut h = Fnv1a::new();
        h.write(&self.frame.to_le_bytes());
        let mut sum = [0u8; 8];
        if len == 0 {
            self.raw_exact(&mut sum, "terminator checksum")?;
            if u64::from_le_bytes(sum) != h.finish() {
                return Err(self.corrupt("terminator checksum mismatch"));
            }
            self.done = true;
            return Ok(false);
        }
        self.buf.resize(len, 0);
        self.pos = 0;
        let mut payload = std::mem::take(&mut self.buf);
        let res = self.raw_exact(&mut payload, "frame payload");
        self.buf = payload;
        res?;
        h.write(&self.buf);
        self.raw_exact(&mut sum, "frame checksum")?;
        if u64::from_le_bytes(sum) != h.finish() {
            return Err(self.corrupt("frame checksum mismatch"));
        }
        self.frame += 1;
        Ok(true)
    }

    /// Next payload byte, or `None` at the clean end of the stream.
    fn try_u8(&mut self) -> Result<Option<u8>> {
        while self.pos == self.buf.len() {
            if !self.refill()? {
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    fn u8(&mut self) -> Result<u8> {
        self.try_u8()?
            .ok_or_else(|| self.corrupt("stream ends inside a value"))
    }

    fn exact(&mut self, out: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos == self.buf.len() && !self.refill()? {
                return Err(self.corrupt("stream ends inside a value"));
            }
            let n = (out.len() - filled).min(self.buf.len() - self.pos);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
        Ok(())
    }
}

/// Sequential writer for a spill run.
pub struct SpillWriter {
    w: FrameWriter,
    path: PathBuf,
    arity: usize,
    dict: FastMap<Symbol, u64>,
    rows: u64,
}

impl SpillWriter {
    /// Create a spill run at `path` (real filesystem) for tuples of
    /// `arity` columns.
    pub fn create(path: PathBuf, arity: usize) -> Result<SpillWriter> {
        SpillWriter::create_on(&RealFs, path, arity)
    }

    /// [`SpillWriter::create`] on an explicit [`Vfs`] backend.
    pub fn create_on(vfs: &dyn Vfs, path: PathBuf, arity: usize) -> Result<SpillWriter> {
        let mut w = FrameWriter::create(vfs, &path, RUN_MAGIC)?;
        w.put_varint(arity as u64)?;
        Ok(SpillWriter {
            w,
            path,
            arity,
            dict: FastMap::default(),
            rows: 0,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one tuple.
    ///
    /// # Panics
    /// Debug-asserts the tuple's arity matches the file's.
    pub fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        debug_assert_eq!(t.arity(), self.arity, "spill arity mismatch");
        for &v in t.values() {
            encode_value(&mut self.w, &mut self.dict, v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Flush and close, returning the file handle.
    pub fn finish(self) -> Result<SpillFile> {
        self.finish_inner(false)
    }

    /// Flush, `fsync`, and close — for snapshots that must survive a
    /// process kill.
    pub fn finish_synced(self) -> Result<SpillFile> {
        self.finish_inner(true)
    }

    fn finish_inner(self, sync: bool) -> Result<SpillFile> {
        let bytes = self.w.finish(sync)?;
        Ok(SpillFile {
            path: self.path,
            rows: self.rows,
            bytes,
        })
    }
}

/// Encode one value with the per-file dictionary.
fn encode_value(w: &mut FrameWriter, dict: &mut FastMap<Symbol, u64>, v: Value) -> Result<()> {
    match v {
        Value::Int(i) => {
            w.put(&[TAG_INT])?;
            w.put_varint(zigzag(i))
        }
        Value::Sym(s) => match dict.get(&s) {
            Some(&id) => {
                w.put(&[TAG_SYM_REF])?;
                w.put_varint(id)
            }
            None => {
                let id = dict.len() as u64;
                dict.insert(s, id);
                w.put(&[TAG_SYM_DEF])?;
                w.put_str(s.as_str())
            }
        },
    }
}

/// Sequential reader over a spill run. Frames are verified as they are
/// crossed; a checksum mismatch or torn tail surfaces as
/// [`StorageError::Corruption`] from whichever read touches it.
pub struct SpillReader {
    r: FrameReader,
    arity: usize,
    dict: Vec<Symbol>,
}

impl SpillReader {
    /// Open a spill run (real filesystem), validating the header.
    pub fn open(path: &Path) -> Result<SpillReader> {
        SpillReader::open_on(&RealFs, path)
    }

    /// [`SpillReader::open`] on an explicit [`Vfs`] backend.
    pub fn open_on(vfs: &dyn Vfs, path: &Path) -> Result<SpillReader> {
        let mut r = FrameReader::open(vfs, path, RUN_MAGIC)?;
        let arity = read_varint(&mut r)? as usize;
        Ok(SpillReader {
            r,
            arity,
            dict: Vec::new(),
        })
    }

    /// Column count of the run's tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Read the next tuple, or `None` at end of file.
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        let Some(tag) = self.r.try_u8()? else {
            return Ok(None);
        };
        let mut values = Vec::with_capacity(self.arity);
        values.push(read_value(&mut self.r, tag, &mut self.dict)?);
        for _ in 1..self.arity {
            let tag = self.r.u8()?;
            values.push(read_value(&mut self.r, tag, &mut self.dict)?);
        }
        Ok(Some(Tuple::from(values)))
    }
}

/// Write `rel` as a crash-safe snapshot at `path` (schema + tuples,
/// framed + checksummed, fsynced). Returns the encoded size.
pub fn write_relation(path: &Path, rel: &Relation) -> Result<u64> {
    write_relation_on(&RealFs, path, rel)
}

/// [`write_relation`] on an explicit [`Vfs`] backend.
pub fn write_relation_on(vfs: &dyn Vfs, path: &Path, rel: &Relation) -> Result<u64> {
    let mut w = FrameWriter::create(vfs, path, REL_MAGIC)?;
    w.put_str(rel.name())?;
    w.put_varint(rel.schema().arity() as u64)?;
    for col in rel.schema().columns() {
        w.put_str(col)?;
    }
    w.put_varint(rel.len() as u64)?;
    let mut dict: FastMap<Symbol, u64> = FastMap::default();
    for t in rel.iter() {
        for &v in t.values() {
            encode_value(&mut w, &mut dict, v)?;
        }
    }
    w.finish(true)
}

/// Load a relation snapshot written by [`write_relation`], re-interning
/// every dictionary string into this process's interner.
pub fn read_relation(path: &Path) -> Result<Relation> {
    read_relation_on(&RealFs, path)
}

/// [`read_relation`] on an explicit [`Vfs`] backend.
pub fn read_relation_on(vfs: &dyn Vfs, path: &Path) -> Result<Relation> {
    let mut r = FrameReader::open(vfs, path, REL_MAGIC)?;
    let name = read_str(&mut r)?;
    let arity = read_varint(&mut r)? as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(read_str(&mut r)?);
    }
    let rows = read_varint(&mut r)? as usize;
    let mut dict: Vec<Symbol> = Vec::new();
    let mut tuples = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = r.u8()?;
            values.push(read_value(&mut r, tag, &mut dict)?);
        }
        tuples.push(Tuple::from(values));
    }
    // Drain to the terminator: a snapshot that keeps going after its
    // declared rows, or ends without its terminator, is corrupt.
    if r.try_u8()?.is_some() {
        return Err(r.corrupt("trailing data after final tuple"));
    }
    Ok(Relation::from_tuples(
        Schema::from_columns(name, columns),
        tuples,
    ))
}

/// Incremental FNV-1a hasher. Unlike [`crate::FastHasher`], its output
/// is specified byte-for-byte, so fingerprints written to a journal in
/// one process validate in another. It is also the frame checksum:
/// multiplication by an odd prime is a bijection mod 2^64, so any
/// single-byte change alters the digest — a flipped bit can never slip
/// through unnoticed.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb one value, stably across processes (symbols hash by their
    /// string content, never their intern id).
    pub fn write_value(&mut self, v: Value) {
        match v {
            Value::Int(i) => {
                self.write(&[TAG_INT]);
                self.write(&i.to_le_bytes());
            }
            Value::Sym(s) => {
                let bytes = s.as_str().as_bytes();
                self.write(&[TAG_SYM_DEF]);
                self.write(&(bytes.len() as u64).to_le_bytes());
                self.write(bytes);
            }
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Process-stable fingerprint of a relation's schema and full content.
/// Two relations hash equal iff their column names, arity, and tuple
/// sets are equal (the relation *name* is excluded so renames don't
/// invalidate journals).
pub fn content_hash(rel: &Relation) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&(rel.schema().arity() as u64).to_le_bytes());
    for col in rel.schema().columns() {
        h.write(col.as_bytes());
        h.write(&[0xff]);
    }
    h.write(&(rel.len() as u64).to_le_bytes());
    for t in rel.iter() {
        for &v in t.values() {
            h.write_value(v);
        }
    }
    h.finish()
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_varint(mut v: u64, buf: &mut [u8; 10]) -> usize {
    let mut i = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[i] = byte;
            return i + 1;
        }
        buf[i] = byte | 0x80;
        i += 1;
    }
}

fn read_varint(r: &mut FrameReader) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = r.u8()?;
        if shift >= 64 {
            return Err(StorageError::Malformed {
                detail: "varint overflows 64 bits".to_string(),
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_value(r: &mut FrameReader, tag: u8, dict: &mut Vec<Symbol>) -> Result<Value> {
    match tag {
        TAG_INT => Ok(Value::Int(unzigzag(read_varint(r)?))),
        TAG_SYM_REF => {
            let id = read_varint(r)? as usize;
            dict.get(id)
                .copied()
                .map(Value::Sym)
                .ok_or_else(|| StorageError::Malformed {
                    detail: format!("spill file references undefined dictionary id {id}"),
                })
        }
        TAG_SYM_DEF => {
            let s = read_str(r)?;
            let sym = Symbol::intern(&s);
            dict.push(sym);
            Ok(Value::Sym(sym))
        }
        other => Err(StorageError::Malformed {
            detail: format!("unknown spill value tag {other}"),
        }),
    }
}

fn read_str(r: &mut FrameReader) -> Result<String> {
    let len = read_varint(r)? as usize;
    // A corrupt length should error, not attempt a huge allocation.
    if len > 1 << 30 {
        return Err(StorageError::Malformed {
            detail: format!("string length {len} exceeds sanity bound"),
        });
    }
    let mut buf = vec![0u8; len];
    r.exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| StorageError::Malformed {
        detail: "spill string is not valid UTF-8".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_tuples(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::from(vec![
                    Value::int(i - 5),
                    Value::str(&format!("item{}", i % 7)),
                    Value::int(i * 1_000_003),
                ])
            })
            .collect()
    }

    #[test]
    fn run_roundtrip_with_dictionary() {
        let dir = SpillDir::create_temp().unwrap();
        let tuples = mixed_tuples(100);
        let mut w = SpillWriter::create(dir.alloc("run"), 3).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        assert_eq!(file.rows, 100);
        // 7 distinct strings: the dictionary keeps the file far smaller
        // than 100 copies of the string data.
        assert!(file.bytes < 100 * 10 + 7 * 10 + 64, "{}", file.bytes);

        let mut r = SpillReader::open(&file.path).unwrap();
        assert_eq!(r.arity(), 3);
        let mut back = Vec::new();
        while let Some(t) = r.next_tuple().unwrap() {
            back.push(t);
        }
        assert_eq!(back, tuples);
    }

    #[test]
    fn empty_run_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let file = SpillWriter::create(dir.alloc("run"), 2)
            .unwrap()
            .finish()
            .unwrap();
        let mut r = SpillReader::open(&file.path).unwrap();
        assert!(r.next_tuple().unwrap().is_none());
    }

    #[test]
    fn extreme_integers_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let tuples = vec![
            Tuple::from([Value::int(i64::MIN)]),
            Tuple::from([Value::int(-1)]),
            Tuple::from([Value::int(0)]),
            Tuple::from([Value::int(i64::MAX)]),
        ];
        let mut w = SpillWriter::create(dir.alloc("run"), 1).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        let mut r = SpillReader::open(&file.path).unwrap();
        for t in &tuples {
            assert_eq!(r.next_tuple().unwrap().as_ref(), Some(t));
        }
    }

    #[test]
    fn multi_frame_run_roundtrip() {
        // Enough data to cross several FRAME_CAP boundaries.
        let dir = SpillDir::create_temp().unwrap();
        let tuples: Vec<Tuple> = (0..30_000i64)
            .map(|i| Tuple::from(vec![Value::int(i), Value::int(i * 7)]))
            .collect();
        let mut w = SpillWriter::create(dir.alloc("run"), 2).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        assert!(file.bytes as usize > 2 * FRAME_CAP, "{}", file.bytes);
        let mut r = SpillReader::open(&file.path).unwrap();
        let mut n = 0usize;
        while let Some(t) = r.next_tuple().unwrap() {
            assert_eq!(t, tuples[n]);
            n += 1;
        }
        assert_eq!(n, tuples.len());
    }

    #[test]
    fn relation_snapshot_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::from_tuples(
            Schema::new("ok_s", &["s", "support"]),
            (0..50)
                .map(|i| Tuple::from(vec![Value::str(&format!("sym{i}")), Value::int(i)]))
                .collect(),
        );
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        let back = read_relation(&path).unwrap();
        assert_eq!(back, rel);
        assert_eq!(back.name(), "ok_s");
        assert_eq!(content_hash(&back), content_hash(&rel));
    }

    #[test]
    fn empty_relation_snapshot_roundtrip() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::empty(Schema::new("nothing", &["x"]));
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        assert_eq!(read_relation(&path).unwrap(), rel);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = SpillDir::create_temp().unwrap();
        let path = dir.alloc("junk");
        std::fs::write(&path, b"not a spill file").unwrap();
        assert!(matches!(
            SpillReader::open(&path),
            Err(StorageError::Corruption { .. })
        ));
        assert!(matches!(
            read_relation(&path),
            Err(StorageError::Corruption { .. })
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::from_tuples(
            Schema::new("r", &["a"]),
            (0..20).map(|i| Tuple::from([Value::int(i)])).collect(),
        );
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_relation(&path),
            Err(StorageError::Corruption { .. })
        ));
    }

    /// A file truncated exactly at a frame boundary loses its
    /// terminator and MUST be detected — a silently shorter relation
    /// would be a wrong answer.
    #[test]
    fn truncation_at_frame_boundary_rejected() {
        let dir = SpillDir::create_temp().unwrap();
        let mut w = SpillWriter::create(dir.alloc("run"), 1).unwrap();
        for i in 0..100 {
            w.write_tuple(&Tuple::from([Value::int(i)])).unwrap();
        }
        let file = w.finish().unwrap();
        let bytes = std::fs::read(&file.path).unwrap();
        // Drop exactly the 9-byte terminator: the remaining file is a
        // perfectly valid sequence of verified frames, just unfinished.
        std::fs::write(&file.path, &bytes[..bytes.len() - 9]).unwrap();
        let mut r = SpillReader::open(&file.path).unwrap();
        let err = loop {
            match r.next_tuple() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("torn run served as complete"),
                Err(e) => break e,
            }
        };
        assert!(err.is_corruption(), "{err}");
    }

    /// Acceptance criterion: flipping ANY single byte of a spill run is
    /// detected as `Corruption` — no silent wrong answers.
    #[test]
    fn every_single_byte_flip_in_a_run_is_detected() {
        let dir = SpillDir::create_temp().unwrap();
        let tuples = mixed_tuples(40);
        let mut w = SpillWriter::create(dir.alloc("run"), 3).unwrap();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let file = w.finish().unwrap();
        let pristine = std::fs::read(&file.path).unwrap();
        let victim = dir.alloc("flipped");
        for i in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= 0x40;
            std::fs::write(&victim, &corrupt).unwrap();
            let outcome = SpillReader::open(&victim).and_then(|mut r| {
                while r.next_tuple()?.is_some() {}
                Ok(())
            });
            match outcome {
                Err(e) if e.is_corruption() => {}
                other => panic!("flip at byte {i}/{} escaped: {other:?}", pristine.len()),
            }
        }
    }

    /// Same property for relation snapshots (journal payloads).
    #[test]
    fn every_single_byte_flip_in_a_snapshot_is_detected() {
        let dir = SpillDir::create_temp().unwrap();
        let rel = Relation::from_tuples(
            Schema::new("snap", &["s", "n"]),
            (0..30)
                .map(|i| Tuple::from(vec![Value::str(&format!("v{}", i % 5)), Value::int(i)]))
                .collect(),
        );
        let path = dir.alloc("snap");
        write_relation(&path, &rel).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let victim = dir.alloc("flipped");
        for i in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= 0x01;
            std::fs::write(&victim, &corrupt).unwrap();
            match read_relation(&victim) {
                Err(e) if e.is_corruption() => {}
                other => panic!("flip at byte {i}/{} escaped: {other:?}", pristine.len()),
            }
        }
    }

    #[test]
    fn content_hash_is_content_sensitive() {
        let rel = |rows: &[(i64, &str)]| {
            Relation::from_tuples(
                Schema::new("r", &["n", "s"]),
                rows.iter()
                    .map(|&(n, s)| Tuple::from(vec![Value::int(n), Value::str(s)]))
                    .collect(),
            )
        };
        let a = rel(&[(1, "x"), (2, "y")]);
        let b = rel(&[(1, "x"), (2, "z")]);
        let c = rel(&[(1, "x")]);
        assert_ne!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&a), content_hash(&c));
        // Renaming the relation does not change the hash; renaming a
        // column does.
        assert_eq!(content_hash(&a.renamed("other")), content_hash(&a));
        let d = Relation::from_tuples(Schema::new("r", &["m", "s"]), a.tuples().to_vec());
        assert_ne!(content_hash(&a), content_hash(&d));
    }

    #[test]
    fn spill_dir_cleans_up_on_drop() {
        let dir = SpillDir::create_temp().unwrap();
        let root = dir.path().to_path_buf();
        let mut w = SpillWriter::create(dir.alloc("run"), 1).unwrap();
        w.write_tuple(&Tuple::from([Value::int(1)])).unwrap();
        w.finish().unwrap();
        assert!(root.exists());
        drop(dir);
        assert!(!root.exists());
    }

    #[test]
    fn alloc_paths_are_unique() {
        let dir = SpillDir::create_temp().unwrap();
        let a = dir.alloc("x");
        let b = dir.alloc("x");
        assert_ne!(a, b);
    }

    #[test]
    fn dir_writer_reader_and_remove_track_live_files() {
        let dir = SpillDir::create_temp().unwrap();
        assert_eq!(dir.live_files(), 0);
        let mut w = dir.writer("run", 1).unwrap();
        w.write_tuple(&Tuple::from([Value::int(7)])).unwrap();
        let file = w.finish().unwrap();
        assert_eq!(dir.live_files(), 1);
        let mut r = dir.reader(&file.path).unwrap();
        assert_eq!(r.next_tuple().unwrap(), Some(Tuple::from([Value::int(7)])));
        drop(r);
        dir.remove(&file.path).unwrap();
        assert_eq!(dir.live_files(), 0);
        // Removing a never-born path is not an error (retry discards).
        dir.remove(&dir.alloc("ghost")).unwrap();
    }

    #[test]
    fn chaos_bit_flip_on_write_is_caught_on_read() {
        use crate::vfs::{ChaosFs, Fault, OpClass};
        let chaos = Arc::new(ChaosFs::quiet().with_fault(OpClass::Write, 2, Fault::BitFlip));
        let dir = SpillDir::create_on(chaos.clone(), &std::env::temp_dir()).unwrap();
        let mut w = dir.writer("run", 1).unwrap();
        for i in 0..50 {
            w.write_tuple(&Tuple::from([Value::int(i)])).unwrap();
        }
        let file = w.finish().unwrap(); // writer believes it succeeded
        assert!(chaos.injected() >= 1);
        // The flip may surface at open (header frame) or mid-read.
        let err = match dir.reader(&file.path) {
            Err(e) => e,
            Ok(mut r) => loop {
                match r.next_tuple() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("flipped bit served as valid data"),
                    Err(e) => break e,
                }
            },
        };
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn chaos_torn_write_is_caught_on_read() {
        use crate::vfs::{ChaosFs, Fault, OpClass};
        let chaos = Arc::new(ChaosFs::quiet().with_fault(OpClass::Write, 3, Fault::TornWrite));
        let dir = SpillDir::create_on(chaos.clone(), &std::env::temp_dir()).unwrap();
        let rel = Relation::from_tuples(
            Schema::new("r", &["x"]),
            (0..200).map(|i| Tuple::from([Value::int(i)])).collect(),
        );
        let path = dir.alloc("snap");
        // The torn write lies all the way through fsync.
        write_relation_on(&**dir.vfs(), &path, &rel).unwrap();
        let err = read_relation(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }
}
