//! Global string interning.
//!
//! Item names, words, symptom and medicine identifiers appear in millions
//! of tuples but draw from small vocabularies. Interning maps each
//! distinct string to a 32-bit [`Symbol`] once; equality, hashing, and
//! copying of values then never touch string data.
//!
//! The interner is process-global so that symbols from generators, parsed
//! queries, and loaded data files all live in one namespace — a tuple
//! produced by `qf-datagen` joins directly against a constant written in
//! a Datalog query string.
//!
//! Interned strings are leaked (they live for the process lifetime).
//! Mining vocabularies are bounded, so this is the usual arena trade-off
//! rather than a practical leak.

use parking_lot::RwLock;

use crate::hash::FastMap;

/// A handle to an interned string. Two symbols are equal iff the strings
/// they intern are equal.
///
/// `Ord` on `Symbol` is **lexicographic on the underlying strings**, not
/// on intern ids: the paper's flocks use arithmetic subgoals like
/// `$1 < $2` to order word pairs lexicographically (§2.3), so symbol
/// comparison must agree with string comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FastMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: RwLock<Option<Interner>> = RwLock::new(None);

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        if let Some(interner) = INTERNER.read().as_ref() {
            if let Some(&id) = interner.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = INTERNER.write();
        let interner = guard.get_or_insert_with(|| Interner {
            map: FastMap::default(),
            strings: Vec::new(),
        });
        if let Some(&id) = interner.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(interner.strings.len()).expect("interner overflow");
        interner.strings.push(leaked);
        interner.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        INTERNER
            .read()
            .as_ref()
            .and_then(|i| i.strings.get(self.0 as usize).copied())
            .expect("symbol from a foreign interner")
    }

    /// Raw intern id; stable within a process run. Useful as a dense key.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("beer");
        let b = Symbol::intern("beer");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "beer");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("beer"), Symbol::intern("diapers"));
    }

    #[test]
    fn order_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order so id order disagrees.
        let z = Symbol::intern("zzz-order-test");
        let a = Symbol::intern("aaa-order-test");
        assert!(a < z, "symbol order must follow string order");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared-key").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
