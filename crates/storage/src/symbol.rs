//! Global string interning.
//!
//! Item names, words, symptom and medicine identifiers appear in millions
//! of tuples but draw from small vocabularies. Interning maps each
//! distinct string to a 32-bit [`Symbol`] once; equality, hashing, and
//! copying of values then never touch string data.
//!
//! The interner is process-global so that symbols from generators, parsed
//! queries, and loaded data files all live in one namespace — a tuple
//! produced by `qf-datagen` joins directly against a constant written in
//! a Datalog query string.
//!
//! Interned strings are leaked (they live for the process lifetime).
//! Mining vocabularies are bounded, so this is the usual arena trade-off
//! rather than a practical leak.

use std::sync::RwLock;

use crate::hash::FastMap;

/// A handle to an interned string. Two symbols are equal iff the strings
/// they intern are equal.
///
/// `Ord` on `Symbol` is **lexicographic on the underlying strings**, not
/// on intern ids: the paper's flocks use arithmetic subgoals like
/// `$1 < $2` to order word pairs lexicographically (§2.3), so symbol
/// comparison must agree with string comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FastMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: RwLock<Option<Interner>> = RwLock::new(None);

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        // Lock poisoning is recovered everywhere: the interner's
        // invariants hold after every individual write, so a panic in
        // an unrelated thread never invalidates the map.
        // Fast path: read lock only.
        if let Some(interner) = INTERNER.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            if let Some(&id) = interner.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = INTERNER.write().unwrap_or_else(|e| e.into_inner());
        let interner = guard.get_or_insert_with(|| Interner {
            map: FastMap::default(),
            strings: Vec::new(),
        });
        if let Some(&id) = interner.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        // > 4 billion distinct strings would have OOMed long before
        // this cast could truncate; an abort is the only sane response.
        assert!(
            interner.strings.len() < u32::MAX as usize,
            "interner overflow"
        );
        let id = interner.strings.len() as u32;
        interner.strings.push(leaked);
        interner.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    ///
    /// # Panics
    /// If `self` was produced by a different process (symbols are not
    /// serializable across runs). Unreachable for symbols obtained from
    /// [`Symbol::intern`] in this process.
    pub fn as_str(self) -> &'static str {
        let found = INTERNER
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .and_then(|i| i.strings.get(self.0 as usize).copied());
        match found {
            Some(s) => s,
            None => panic!("symbol id {} is not in this process's interner", self.0),
        }
    }

    /// Raw intern id; stable within a process run. Useful as a dense key.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("beer");
        let b = Symbol::intern("beer");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "beer");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("beer"), Symbol::intern("diapers"));
    }

    #[test]
    fn order_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order so id order disagrees.
        let z = Symbol::intern("zzz-order-test");
        let a = Symbol::intern("aaa-order-test");
        assert!(a < z, "symbol order must follow string order");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared-key").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
