//! The scalar value type stored in tuples.

use crate::symbol::Symbol;

/// A scalar database value: a 64-bit integer or an interned string.
///
/// Two-word `Copy` type so tuples copy with `memcpy` and hash joins never
/// chase pointers. The paper's data model needs exactly these: basket
/// and document ids, counts and weights are integers; items, words,
/// symptoms, medicines, diseases are strings.
///
/// Ordering is total: all integers sort before all symbols, integers
/// numerically, symbols lexicographically (see [`Symbol`]'s `Ord`).
/// Cross-type comparisons in arithmetic subgoals are therefore
/// well-defined, though flocks in practice compare like with like.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Interned string.
    Sym(Symbol),
}

impl Value {
    /// Integer value.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Interned string value.
    pub fn str(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Sym(_) => None,
        }
    }

    /// The symbol inside, if this is a `Sym`.
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Render the value the way it appears in query text: integers bare,
    /// strings unquoted (Datalog constants in this system are lowercase
    /// identifiers or quoted strings; display uses the raw string).
    pub fn render(self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => f.write_str(s.as_str()),
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_sym(), None);
        assert_eq!(Value::str("x").as_sym(), Some(Symbol::intern("x")));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("apple") < Value::str("banana"));
    }

    #[test]
    fn ints_sort_before_symbols() {
        assert!(Value::int(i64::MAX) < Value::str("a"));
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::str("beer").to_string(), "beer");
    }

    #[test]
    fn value_is_two_words() {
        assert!(std::mem::size_of::<Value>() <= 2 * std::mem::size_of::<usize>());
    }
}
