//! Set-semantics relations.

use std::sync::{Arc, OnceLock};

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::stats::RelationStats;
use crate::tuple::Tuple;
use crate::value::Value;

/// An immutable, set-semantics relation: a schema plus sorted,
/// deduplicated tuples.
///
/// The paper's extended conjunctive queries "follow the conventional set
/// semantics rather than bag semantics" (§2.3) — the a-priori upper-bound
/// argument is unsound under bags — so every relation in this system is a
/// set by construction. Sorted storage gives `O(log n)` membership,
/// cheap ordered iteration for merge joins, and canonical equality for
/// tests.
///
/// Statistics ([`Relation::stats`]) are computed once on first use and
/// cached; the optimizer consults them freely.
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Arc<[Tuple]>,
    stats: Arc<OnceLock<RelationStats>>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            tuples: Arc::from(Vec::new()),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// Build from rows, sorting and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch — use [`RelationBuilder`] (or
    /// [`Relation::try_from_rows`]) for fallible construction.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Relation {
        match Relation::try_from_rows(schema, rows) {
            Ok(rel) => rel,
            Err(e) => panic!("Relation::from_rows: {e}"),
        }
    }

    /// Fallible form of [`Relation::from_rows`]: an arity-mismatched
    /// row is an error instead of a panic.
    pub fn try_from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> crate::error::Result<Relation> {
        let mut b = RelationBuilder::new(schema);
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b.finish())
    }

    /// Build from tuples already known to match the schema's arity;
    /// sorts and deduplicates.
    pub fn from_tuples(schema: Schema, mut tuples: Vec<Tuple>) -> Relation {
        debug_assert!(tuples.iter().all(|t| t.arity() == schema.arity()));
        tuples.sort_unstable();
        tuples.dedup();
        Relation {
            schema,
            tuples: Arc::from(tuples),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// Build from tuples the caller guarantees are already sorted and
    /// deduplicated (debug-checked). Used by merge-based operators to
    /// skip a redundant sort.
    pub fn from_sorted_dedup(schema: Schema, tuples: Vec<Tuple>) -> Relation {
        debug_assert!(
            tuples.windows(2).all(|w| w[0] < w[1]),
            "tuples must be strictly sorted"
        );
        debug_assert!(tuples.iter().all(|t| t.arity() == schema.arity()));
        Relation {
            schema,
            tuples: Arc::from(tuples),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Sorted tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Set membership via binary search.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Cached statistics (cardinality, per-column distinct counts).
    pub fn stats(&self) -> &RelationStats {
        self.stats
            .get_or_init(|| RelationStats::compute(&self.schema, &self.tuples))
    }

    /// Distinct count for one column (from cached stats).
    pub fn distinct(&self, col: usize) -> usize {
        self.stats().column(col).distinct
    }

    /// A copy renamed to `name`. Tuples (and cached stats) are shared —
    /// `Relation` clones are reference-count bumps, which is what lets
    /// `FILTER`-step outputs be inserted into the working database
    /// without copying data.
    pub fn renamed(&self, name: &str) -> Relation {
        Relation {
            schema: self.schema.renamed(name),
            tuples: Arc::clone(&self.tuples),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.tuples.len())?;
        const SHOW: usize = 20;
        for t in self.tuples.iter().take(SHOW) {
            writeln!(f, "  {t}")?;
        }
        if self.tuples.len() > SHOW {
            writeln!(f, "  … {} more", self.tuples.len() - SHOW)?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// Incremental relation constructor enforcing arity; sorts and
/// deduplicates once at [`finish`](RelationBuilder::finish).
pub struct RelationBuilder {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl RelationBuilder {
    /// Start building a relation with `schema`.
    pub fn new(schema: Schema) -> RelationBuilder {
        RelationBuilder {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Reserve capacity for `n` additional tuples.
    pub fn reserve(&mut self, n: usize) {
        self.tuples.reserve(n);
    }

    /// Append a row, checking arity against the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.tuples.push(Tuple::from(row));
        Ok(())
    }

    /// Append an already-built tuple, checking arity.
    pub fn push(&mut self, t: Tuple) -> Result<()> {
        if t.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        self.tuples.push(t);
        Ok(())
    }

    /// Number of rows staged so far (before dedup).
    pub fn staged(&self) -> usize {
        self.tuples.len()
    }

    /// Sort, deduplicate, and produce the relation.
    pub fn finish(self) -> Relation {
        Relation::from_tuples(self.schema, self.tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[(i64, i64)]) -> Relation {
        Relation::from_rows(
            Schema::new("r", &["a", "b"]),
            rows.iter()
                .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
                .collect(),
        )
    }

    #[test]
    fn dedup_and_sort() {
        let r = rel(&[(2, 1), (1, 1), (2, 1), (1, 1)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0], Tuple::from([Value::int(1), Value::int(1)]));
    }

    #[test]
    fn contains_uses_set_membership() {
        let r = rel(&[(1, 2), (3, 4)]);
        assert!(r.contains(&Tuple::from([Value::int(3), Value::int(4)])));
        assert!(!r.contains(&Tuple::from([Value::int(3), Value::int(5)])));
    }

    #[test]
    fn builder_rejects_bad_arity() {
        let mut b = RelationBuilder::new(Schema::new("r", &["a", "b"]));
        let err = b.push_row(vec![Value::int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { got: 1, .. }));
    }

    #[test]
    fn stats_cached_and_correct() {
        let r = rel(&[(1, 10), (1, 20), (2, 10)]);
        assert_eq!(r.stats().cardinality, 3);
        assert_eq!(r.distinct(0), 2);
        assert_eq!(r.distinct(1), 2);
    }

    #[test]
    fn renamed_shares_tuples() {
        let r = rel(&[(1, 2)]);
        let s = r.renamed("s");
        assert_eq!(s.name(), "s");
        assert_eq!(s.tuples(), r.tuples());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::new("e", &["x"]));
        assert!(r.is_empty());
        assert_eq!(r.stats().cardinality, 0);
    }
}
