//! Tab-separated load/store for relations.
//!
//! The examples ship data as plain TSV so users can point the system at
//! their own exports. Format: first line `name<TAB>col1<TAB>col2…` is
//! the schema header (`name` is the relation name), each following line
//! is one tuple. A field that parses as `i64` loads as an integer;
//! anything else is interned as a string.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::relation::{Relation, RelationBuilder};
use crate::schema::Schema;
use crate::value::Value;

/// Parse a field: integer if it looks like one, else interned string.
fn parse_field(s: &str) -> Value {
    match s.parse::<i64>() {
        Ok(v) => Value::int(v),
        Err(_) => Value::str(s),
    }
}

/// Read a relation from TSV text.
pub fn read_tsv(reader: impl BufRead) -> Result<Relation> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| StorageError::Malformed {
            detail: "empty file: missing schema header".to_string(),
        })?;
    let mut parts = header.split('\t');
    let name = parts.next().unwrap_or("").to_string();
    if name.is_empty() {
        return Err(StorageError::Malformed {
            detail: "header must start with a relation name".to_string(),
        });
    }
    let columns: Vec<String> = parts.map(str::to_string).collect();
    if columns.is_empty() {
        return Err(StorageError::Malformed {
            detail: format!("relation `{name}` has no columns in header"),
        });
    }
    let mut builder = RelationBuilder::new(Schema::from_columns(name, columns));
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let row: Vec<Value> = line.split('\t').map(parse_field).collect();
        builder.push_row(row).map_err(|e| StorageError::Malformed {
            detail: format!("line {}: {e}", lineno + 2),
        })?;
    }
    Ok(builder.finish())
}

/// Load a relation from a TSV file.
pub fn load_tsv(path: impl AsRef<Path>) -> Result<Relation> {
    let file = std::fs::File::open(path)?;
    read_tsv(std::io::BufReader::new(file))
}

/// Write a relation as TSV text.
pub fn write_tsv(relation: &Relation, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "{}", relation.name())?;
    for c in relation.schema().columns() {
        write!(w, "\t{c}")?;
    }
    writeln!(w)?;
    for t in relation.iter() {
        for (i, v) in t.values().iter().enumerate() {
            if i > 0 {
                write!(w, "\t")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Save a relation to a TSV file.
pub fn save_tsv(relation: &Relation, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_tsv(relation, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::str("beer")],
                vec![Value::int(2), Value::str("chips")],
            ],
        );
        let mut buf = Vec::new();
        write_tsv(&r, &mut buf).unwrap();
        let back = read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn integers_parse_strings_intern() {
        let text = "r\ta\tb\n42\thello\n-7\tworld\n";
        let r = read_tsv(std::io::Cursor::new(text)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(0), Value::int(-7));
        assert_eq!(r.tuples()[0].get(1), Value::str("world"));
    }

    #[test]
    fn rejects_empty_and_bad_arity() {
        assert!(read_tsv(std::io::Cursor::new("")).is_err());
        assert!(read_tsv(std::io::Cursor::new("r\n1\n")).is_err());
        let err = read_tsv(std::io::Cursor::new("r\ta\tb\n1\n")).unwrap_err();
        assert!(matches!(err, StorageError::Malformed { .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let r = read_tsv(std::io::Cursor::new("r\ta\n1\n\n2\n")).unwrap();
        assert_eq!(r.len(), 2);
    }
}
