//! Tab-separated load/store for relations.
//!
//! The examples ship data as plain TSV so users can point the system at
//! their own exports. Format: first line `name<TAB>col1<TAB>col2…` is
//! the schema header (`name` is the relation name), each following line
//! is one tuple. A field that parses as `i64` loads as an integer;
//! anything else is interned as a string.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::relation::{Relation, RelationBuilder};
use crate::schema::Schema;
use crate::value::Value;

/// Parse a field: integer if it looks like one, else interned string.
fn parse_field(s: &str) -> Value {
    match s.parse::<i64>() {
        Ok(v) => Value::int(v),
        Err(_) => Value::str(s),
    }
}

/// Source label used in error messages when no file name is known.
const ANON_SOURCE: &str = "<tsv>";

/// Outcome of a lossy TSV read: the relation built from the good rows,
/// plus how many malformed data lines were skipped.
#[derive(Clone, Debug, PartialEq)]
pub struct LossyTsv {
    /// The relation built from the rows that parsed cleanly.
    pub relation: Relation,
    /// Number of malformed data lines skipped (bad arity).
    pub skipped: usize,
}

/// Read a relation from TSV text. Malformed rows report the 1-based
/// line number (and the file name, when read via [`load_tsv`]).
pub fn read_tsv(reader: impl BufRead) -> Result<Relation> {
    read_tsv_from(reader, ANON_SOURCE)
}

/// [`read_tsv`] with an explicit source label (file name) for error
/// messages: malformed input reports `source:line`.
pub fn read_tsv_from(reader: impl BufRead, source: &str) -> Result<Relation> {
    read_rows(reader, source, &mut |source, lineno, e| {
        Err(StorageError::Malformed {
            detail: format!("{source}:{lineno}: {e}"),
        })
    })
    .map(|lossy| lossy.relation)
}

/// Read a relation from TSV text, *skipping* malformed data lines
/// instead of failing, and counting them. Header problems (missing or
/// empty schema line) are still hard errors — without a schema there is
/// nothing to build.
pub fn read_tsv_lossy(reader: impl BufRead) -> Result<LossyTsv> {
    read_tsv_lossy_from(reader, ANON_SOURCE)
}

/// [`read_tsv_lossy`] with an explicit source label for error messages.
pub fn read_tsv_lossy_from(reader: impl BufRead, source: &str) -> Result<LossyTsv> {
    read_rows(reader, source, &mut |_, _, _| Ok(()))
}

/// Shared TSV scanner. `on_bad_row` decides the policy for a malformed
/// data line: return an error to abort (strict) or `Ok(())` to skip it
/// (lossy; the skip is counted).
fn read_rows(
    reader: impl BufRead,
    source: &str,
    on_bad_row: &mut dyn FnMut(&str, usize, &StorageError) -> Result<()>,
) -> Result<LossyTsv> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|e| annotate_io(source, &e))?
        .ok_or_else(|| StorageError::Malformed {
            detail: format!("{source}: empty file: missing schema header"),
        })?;
    let mut parts = header.split('\t');
    let name = parts.next().unwrap_or("").to_string();
    if name.is_empty() {
        return Err(StorageError::Malformed {
            detail: format!("{source}:1: header must start with a relation name"),
        });
    }
    let columns: Vec<String> = parts.map(str::to_string).collect();
    if columns.is_empty() {
        return Err(StorageError::Malformed {
            detail: format!("{source}:1: relation `{name}` has no columns in header"),
        });
    }
    let mut builder = RelationBuilder::new(Schema::from_columns(name, columns));
    let mut skipped = 0usize;
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2; // 1-based, after the header.
        let line = line.map_err(|e| annotate_io(source, &e))?;
        if line.is_empty() {
            continue;
        }
        let row: Vec<Value> = line.split('\t').map(parse_field).collect();
        if let Err(e) = builder.push_row(row) {
            on_bad_row(source, lineno, &e)?;
            skipped += 1;
        }
    }
    Ok(LossyTsv {
        relation: builder.finish(),
        skipped,
    })
}

fn annotate_io(source: &str, e: &std::io::Error) -> StorageError {
    StorageError::Io {
        kind: e.kind(),
        detail: format!("{source}: {e}"),
    }
}

/// Load a relation from a TSV file. Errors name the file and line.
pub fn load_tsv(path: impl AsRef<Path>) -> Result<Relation> {
    let path = path.as_ref();
    let source = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| annotate_io(&source, &e))?;
    read_tsv_from(std::io::BufReader::new(file), &source)
}

/// Load a relation from a TSV file, skipping malformed rows (see
/// [`read_tsv_lossy`]).
pub fn load_tsv_lossy(path: impl AsRef<Path>) -> Result<LossyTsv> {
    let path = path.as_ref();
    let source = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| annotate_io(&source, &e))?;
    read_tsv_lossy_from(std::io::BufReader::new(file), &source)
}

/// Write a relation as TSV text.
pub fn write_tsv(relation: &Relation, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "{}", relation.name())?;
    for c in relation.schema().columns() {
        write!(w, "\t{c}")?;
    }
    writeln!(w)?;
    for t in relation.iter() {
        for (i, v) in t.values().iter().enumerate() {
            if i > 0 {
                write!(w, "\t")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Save a relation to a TSV file.
pub fn save_tsv(relation: &Relation, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_tsv(relation, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::str("beer")],
                vec![Value::int(2), Value::str("chips")],
            ],
        );
        let mut buf = Vec::new();
        write_tsv(&r, &mut buf).unwrap();
        let back = read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn integers_parse_strings_intern() {
        let text = "r\ta\tb\n42\thello\n-7\tworld\n";
        let r = read_tsv(std::io::Cursor::new(text)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(0), Value::int(-7));
        assert_eq!(r.tuples()[0].get(1), Value::str("world"));
    }

    #[test]
    fn rejects_empty_and_bad_arity() {
        assert!(read_tsv(std::io::Cursor::new("")).is_err());
        assert!(read_tsv(std::io::Cursor::new("r\n1\n")).is_err());
        let err = read_tsv(std::io::Cursor::new("r\ta\tb\n1\n")).unwrap_err();
        assert!(matches!(err, StorageError::Malformed { .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let r = read_tsv(std::io::Cursor::new("r\ta\n1\n\n2\n")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn errors_carry_source_and_line() {
        let err =
            read_tsv_from(std::io::Cursor::new("r\ta\tb\n1\t2\n3\n"), "data.tsv").unwrap_err();
        assert!(err.to_string().contains("data.tsv:3"), "{err}");
        let err = read_tsv_from(std::io::Cursor::new(""), "data.tsv").unwrap_err();
        assert!(err.to_string().contains("data.tsv"), "{err}");
    }

    #[test]
    fn load_errors_name_the_file() {
        let err = load_tsv("/no/such/file.tsv").unwrap_err();
        assert!(err.to_string().contains("/no/such/file.tsv"), "{err}");
    }

    #[test]
    fn lossy_skips_and_counts_bad_rows() {
        let text = "r\ta\tb\n1\t2\nbad\n3\t4\nalso\tbad\textra\n";
        let lossy = read_tsv_lossy(std::io::Cursor::new(text)).unwrap();
        assert_eq!(lossy.relation.len(), 2);
        assert_eq!(lossy.skipped, 2);
        // The strict reader rejects the same input.
        assert!(read_tsv(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn lossy_still_rejects_missing_header() {
        assert!(read_tsv_lossy(std::io::Cursor::new("")).is_err());
        assert!(read_tsv_lossy(std::io::Cursor::new("\t\n")).is_err());
    }
}
