//! Fixed-arity tuples of [`Value`]s.

use crate::value::Value;

/// An immutable row: a boxed slice of values.
///
/// Mining relations are narrow (arity 2–5 throughout the paper's
/// examples), so a tuple is two words on the stack plus one small heap
/// allocation shared on clone-by-copy of the box contents.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Tuple {
        Tuple(values.into())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field at `i`; panics if out of range (callers index by schema).
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// All fields.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// A new tuple keeping only the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i]).collect())
    }

    /// Concatenation of `self` and `other` (join output construction).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }
}

impl std::fmt::Debug for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple(Box::new(v))
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::int(v)).collect::<Vec<_>>())
    }

    #[test]
    fn arity_and_access() {
        let tup = t(&[1, 2, 3]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(1), Value::int(2));
        assert_eq!(tup[2], Value::int(3));
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let tup = t(&[10, 20, 30]);
        assert_eq!(tup.project(&[2, 0, 0]), t(&[30, 10, 10]));
        assert_eq!(tup.project(&[]), t(&[]));
    }

    #[test]
    fn concat_appends() {
        assert_eq!(t(&[1]).concat(&t(&[2, 3])), t(&[1, 2, 3]));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(t(&[1, 9]) < t(&[2, 0]));
        assert!(t(&[1]) < t(&[1, 0]));
    }

    #[test]
    fn display_format() {
        assert_eq!(t(&[1, 2]).to_string(), "(1, 2)");
    }
}
