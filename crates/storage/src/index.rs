//! Hash indexes over relations.

use crate::hash::FastMap;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// A hash index mapping a key (projection of a tuple onto chosen
/// columns) to the row ids of matching tuples.
///
/// Built on demand by join operators; the build side of every hash join
/// is a `HashIndex`. Row ids index into the indexed relation's sorted
/// tuple array, so probes return tuples in deterministic order.
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: FastMap<Tuple, Vec<u32>>,
}

impl HashIndex {
    /// Build an index on `relation` keyed by `key_cols`.
    ///
    /// Panics if any key column is out of range for the schema (indexes
    /// are built by the engine from resolved plans, so this is a logic
    /// error, not input error).
    pub fn build(relation: &Relation, key_cols: &[usize]) -> HashIndex {
        assert!(
            key_cols.iter().all(|&c| c < relation.schema().arity()),
            "index key column out of range"
        );
        let mut map: FastMap<Tuple, Vec<u32>> = FastMap::default();
        for (i, t) in relation.iter().enumerate() {
            map.entry(t.project(key_cols)).or_default().push(i as u32);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    /// The columns this index is keyed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose key equals `key` (empty if none).
    pub fn probe(&self, key: &Tuple) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probe with a key built by projecting `t` onto `cols`.
    pub fn probe_tuple(&self, t: &Tuple, cols: &[usize]) -> &[u32] {
        self.probe(&t.project(cols))
    }

    /// True if any tuple has this key (semi/antijoin probes).
    pub fn contains_key(&self, key: &Tuple) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(key, row-ids)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &[u32])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn sample() -> Relation {
        Relation::from_rows(
            Schema::new("r", &["a", "b"]),
            vec![
                vec![Value::int(1), Value::str("x")],
                vec![Value::int(1), Value::str("y")],
                vec![Value::int(2), Value::str("x")],
            ],
        )
    }

    #[test]
    fn probe_finds_all_matches() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0]);
        let rows = idx.probe(&Tuple::from([Value::int(1)]));
        assert_eq!(rows.len(), 2);
        for &row in rows {
            assert_eq!(r.tuples()[row as usize].get(0), Value::int(1));
        }
        assert!(idx.probe(&Tuple::from([Value::int(9)])).is_empty());
    }

    #[test]
    fn composite_key() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(idx.contains_key(&Tuple::from([Value::int(2), Value::str("x")])));
        assert!(!idx.contains_key(&Tuple::from([Value::int(2), Value::str("y")])));
    }

    #[test]
    fn empty_key_groups_everything() {
        let r = sample();
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.distinct_keys(), 1);
        assert_eq!(idx.probe(&Tuple::from([])).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        HashIndex::build(&sample(), &[5]);
    }
}
