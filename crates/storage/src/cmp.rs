//! Comparison operators over [`Value`]s.
//!
//! Shared between the Datalog frontend (arithmetic subgoals, `$1 < $2`)
//! and the engine (selection predicates), so it lives in the common
//! storage crate.
//!
//! [`Value`]: crate::Value

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Apply the operator to an ordering.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Ge => ord != Less,
            CmpOp::Gt => ord == Greater,
        }
    }

    /// The operator with operand sides exchanged (`a op b` ⇔ `b op' a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
        }
    }

    /// Logical negation (`!(a op b)` ⇔ `a op' b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
        }
    }

    /// SQL/Datalog spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matrix() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less) && !CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal) && !CmpOp::Le.eval(Greater));
        assert!(CmpOp::Eq.eval(Equal) && !CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater) && !CmpOp::Ne.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater) && CmpOp::Ge.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater) && !CmpOp::Gt.eval(Equal));
    }

    #[test]
    fn symbols() {
        assert_eq!(CmpOp::Le.symbol(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}
