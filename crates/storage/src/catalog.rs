//! The database catalog: named relations.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::error::{Result, StorageError};
use crate::relation::Relation;

/// A database: a set of named relations.
///
/// Query flocks name their base data by predicate (`baskets`,
/// `exhibits`, …); evaluation resolves each predicate here. Derived
/// relations produced by `FILTER` steps (`okS`, `okM`, `temp1`, …) are
/// inserted alongside base relations during plan execution, exactly as
/// the paper's plans treat them ("Each step can use in subgoals any of
/// the relations that hold the data of the problem and any of the
/// relations about the parameters that were created by previous steps",
/// §4.1).
///
/// A `BTreeMap` keeps iteration order deterministic for tests and dumps.
///
/// The catalog [fingerprint](Database::fingerprint) — a content hash
/// over every relation — is computed lazily and **memoized**: repeated
/// reads (journal validation, cache keys) between mutations reuse the
/// cached value, and any [`Database::insert`]/[`Database::remove`]
/// invalidates it.
#[derive(Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    /// Memoized content fingerprint; reset on every mutation. Cloning
    /// carries the cached value along (relations are shared, so the
    /// clone hashes identically).
    fingerprint: OnceLock<u64>,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        let fingerprint = OnceLock::new();
        if let Some(&fp) = self.fingerprint.get() {
            let _ = fingerprint.set(fp);
        }
        Database {
            relations: self.relations.clone(),
            fingerprint,
        }
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert (or replace) a relation under its schema name.
    pub fn insert(&mut self, relation: Relation) {
        self.fingerprint = OnceLock::new();
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// True if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.fingerprint = OnceLock::new();
        self.relations.remove(name)
    }

    /// Content fingerprint of the whole catalog: every relation's name,
    /// column names, and tuple content, folded in sorted-name order so
    /// iteration order cannot perturb it. Memoized until the next
    /// mutation — journal validation and result-cache keys may read it
    /// per request without re-hashing the data.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = crate::spill::Fnv1a::new();
            for (name, rel) in &self.relations {
                h.write(name.as_bytes());
                h.write(&[0xff]);
                for c in rel.schema().columns() {
                    h.write(c.as_bytes());
                    h.write(&[0xfe]);
                }
                h.write(&crate::spill::content_hash(rel).to_le_bytes());
            }
            h.finish()
        })
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// All relations, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Database [{} relations]", self.relations.len())?;
        for r in self.relations.values() {
            writeln!(f, "  {} [{} tuples]", r.schema(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["x"]),
            (0..n).map(|i| vec![Value::int(i)]).collect(),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut db = Database::new();
        db.insert(rel("a", 3));
        db.insert(rel("b", 2));
        assert_eq!(db.get("a").unwrap().len(), 3);
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_tuples(), 5);
        assert!(db.remove("a").is_some());
        assert!(db.get("a").is_err());
    }

    #[test]
    fn replace_overwrites() {
        let mut db = Database::new();
        db.insert(rel("a", 3));
        db.insert(rel("a", 5));
        assert_eq!(db.get("a").unwrap().len(), 5);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn fingerprint_is_memoized_and_invalidated() {
        let mut db = Database::new();
        db.insert(rel("a", 3));
        let fp1 = db.fingerprint();
        assert_eq!(db.fingerprint(), fp1, "stable between mutations");
        // A clone carries the cached value and hashes identically.
        let clone = db.clone();
        assert_eq!(clone.fingerprint(), fp1);
        // Any mutation changes the fingerprint…
        db.insert(rel("b", 2));
        let fp2 = db.fingerprint();
        assert_ne!(fp1, fp2);
        db.remove("b");
        // …and removing what was added restores the original value
        // (content-determined, not history-determined).
        assert_eq!(db.fingerprint(), fp1);
        // Replacing a relation with different content changes it too.
        db.insert(rel("a", 5));
        assert_ne!(db.fingerprint(), fp1);
    }

    #[test]
    fn names_sorted() {
        let mut db = Database::new();
        db.insert(rel("zeta", 1));
        db.insert(rel("alpha", 1));
        let names: Vec<&str> = db.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
