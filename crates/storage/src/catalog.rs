//! The database catalog: named relations.

use std::collections::BTreeMap;

use crate::error::{Result, StorageError};
use crate::relation::Relation;

/// A database: a set of named relations.
///
/// Query flocks name their base data by predicate (`baskets`,
/// `exhibits`, …); evaluation resolves each predicate here. Derived
/// relations produced by `FILTER` steps (`okS`, `okM`, `temp1`, …) are
/// inserted alongside base relations during plan execution, exactly as
/// the paper's plans treat them ("Each step can use in subgoals any of
/// the relations that hold the data of the problem and any of the
/// relations about the parameters that were created by previous steps",
/// §4.1).
///
/// A `BTreeMap` keeps iteration order deterministic for tests and dumps.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert (or replace) a relation under its schema name.
    pub fn insert(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// True if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// All relations, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Database [{} relations]", self.relations.len())?;
        for r in self.relations.values() {
            writeln!(f, "  {} [{} tuples]", r.schema(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["x"]),
            (0..n).map(|i| vec![Value::int(i)]).collect(),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut db = Database::new();
        db.insert(rel("a", 3));
        db.insert(rel("b", 2));
        assert_eq!(db.get("a").unwrap().len(), 3);
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_tuples(), 5);
        assert!(db.remove("a").is_some());
        assert!(db.get("a").is_err());
    }

    #[test]
    fn replace_overwrites() {
        let mut db = Database::new();
        db.insert(rel("a", 3));
        db.insert(rel("a", 5));
        assert_eq!(db.get("a").unwrap().len(), 5);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut db = Database::new();
        db.insert(rel("zeta", 1));
        db.insert(rel("alpha", 1));
        let names: Vec<&str> = db.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
