//! Property tests for the storage layer's core invariants: set
//! semantics, ordering, statistics, index completeness, TSV round-trips.

use proptest::prelude::*;

use qf_storage::{tsv, HashIndex, Relation, RelationBuilder, Schema, Tuple, Value};

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-20i64..20, -20i64..20), 0..120)
}

fn relation_of(rows: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::new("r", &["a", "b"]),
        rows.iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect(),
    )
}

proptest! {
    /// Relations are strictly sorted, deduplicated sets.
    #[test]
    fn relation_is_canonical(rows in rows_strategy()) {
        let r = relation_of(&rows);
        prop_assert!(r.tuples().windows(2).all(|w| w[0] < w[1]));
        // Cardinality equals the number of distinct input rows.
        let mut distinct: Vec<(i64, i64)> = rows.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(r.len(), distinct.len());
    }

    /// Construction is insertion-order independent (canonical form).
    #[test]
    fn construction_order_irrelevant(rows in rows_strategy(), seed in 0u64..1000) {
        let a = relation_of(&rows);
        let mut shuffled = rows.clone();
        // Cheap deterministic shuffle.
        let n = shuffled.len();
        if n > 1 {
            for i in 0..n {
                let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
                shuffled.swap(i, j);
            }
        }
        let b = relation_of(&shuffled);
        prop_assert_eq!(a, b);
    }

    /// `contains` agrees with linear search.
    #[test]
    fn contains_is_membership(rows in rows_strategy(), probe in (-25i64..25, -25i64..25)) {
        let r = relation_of(&rows);
        let t = Tuple::from([Value::int(probe.0), Value::int(probe.1)]);
        prop_assert_eq!(r.contains(&t), rows.contains(&probe));
    }

    /// Column stats are exact.
    #[test]
    fn stats_are_exact(rows in rows_strategy()) {
        let r = relation_of(&rows);
        let s = r.stats();
        let mut col0: Vec<i64> = rows.iter().map(|&(a, _)| a).collect();
        col0.sort_unstable();
        col0.dedup();
        prop_assert_eq!(s.column(0).distinct, col0.len());
        if let (Some(&min), Some(&max)) = (col0.first(), col0.last()) {
            prop_assert_eq!(s.column(0).min, Some(Value::int(min)));
            prop_assert_eq!(s.column(0).max, Some(Value::int(max)));
        } else {
            prop_assert_eq!(s.column(0).min, None);
        }
    }

    /// Every tuple is reachable through an index on any key subset.
    #[test]
    fn index_is_complete(rows in rows_strategy(), key_on_b in any::<bool>()) {
        let r = relation_of(&rows);
        let cols = if key_on_b { vec![1] } else { vec![0] };
        let idx = HashIndex::build(&r, &cols);
        let mut reached = 0usize;
        for (key, rows_for_key) in idx.iter() {
            for &row in rows_for_key {
                prop_assert_eq!(&r.tuples()[row as usize].project(&cols), key);
                reached += 1;
            }
        }
        prop_assert_eq!(reached, r.len());
    }

    /// TSV round-trips exactly (integers and strings).
    #[test]
    fn tsv_roundtrip(rows in rows_strategy()) {
        let r = Relation::from_rows(
            Schema::new("r", &["a", "b"]),
            rows.iter()
                .map(|&(a, b)| vec![Value::int(a), Value::str(&format!("s{b}"))])
                .collect(),
        );
        let mut buf = Vec::new();
        tsv::write_tsv(&r, &mut buf).unwrap();
        let back = tsv::read_tsv(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, r);
    }

    /// Builder with arity enforcement accepts exactly matching rows.
    #[test]
    fn builder_enforces_arity(rows in rows_strategy()) {
        let mut b = RelationBuilder::new(Schema::new("r", &["a", "b"]));
        for &(x, y) in &rows {
            b.push_row(vec![Value::int(x), Value::int(y)]).unwrap();
        }
        prop_assert!(b.push_row(vec![Value::int(0)]).is_err());
        let r = b.finish();
        prop_assert!(r.len() <= rows.len());
    }

    /// Tuple projection then concat laws: project(concat(a,b), left-ids)
    /// recovers a.
    #[test]
    fn tuple_concat_project_laws(a in -9i64..9, b in -9i64..9, c in -9i64..9) {
        let left = Tuple::from([Value::int(a), Value::int(b)]);
        let right = Tuple::from([Value::int(c)]);
        let joined = left.concat(&right);
        prop_assert_eq!(joined.arity(), 3);
        prop_assert_eq!(joined.project(&[0, 1]), left);
        prop_assert_eq!(joined.project(&[2]), right);
    }
}
