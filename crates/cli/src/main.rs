//! `qfsh` — the query-flocks shell. See [`qf_cli`] for the command set.

use std::io::{BufRead, Write};

use qf_cli::Session;

fn main() {
    let mut session = Session::new();

    // Leading flags set resource limits and run modes for every
    // evaluation:
    //   qfsh --timeout 5s --max-rows 1m --mem-budget 256m --threads 4 \
    //        --spill-dir /tmp/qf --resume run1 --report json \
    //        --io-faults seed=7 [command…]
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Server modes are top-level subcommands, dispatched before the
    // local-run flag parsing (their flags mean different things).
    match args.first().map(String::as_str) {
        Some("serve") => {
            match qf_cli::serve_main(&args[1..]) {
                Ok(out) => println!("{out}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("shard") => {
            match qf_cli::shard_main(&args[1..]) {
                Ok(out) => println!("{out}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("client") => {
            match qf_cli::client_main(&args[1..]) {
                Ok(out) => println!("{out}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        _ => {}
    }

    match apply_limit_flags(&mut session, &mut args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    // Non-interactive: execute arguments joined as one command, then exit
    // (`qfsh gen baskets` etc. for scripting).
    if !args.is_empty() {
        match session.execute_line(&args.join(" ")) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("qfsh — query flocks shell (type `help`)");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("qf> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.execute_line(&line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Which session command a leading `--flag` maps to: limit flags batch
/// into one `limits` command; mode flags each map to their own command.
fn flag_route(key: &str) -> Option<&'static str> {
    match key {
        "timeout" | "max-rows" | "mem-budget" | "threads" => Some("limits"),
        "spill-dir" => Some("spill"),
        "resume" => Some("resume"),
        "report" => Some("report"),
        "io-faults" => Some("faults"),
        _ => None,
    }
}

/// Strip `--timeout`/`--max-rows`/`--mem-budget`/`--threads` and the
/// run-mode flags `--spill-dir`/`--resume`/`--report` (with
/// `--flag value` or `--flag=value` spelling) off the front of `args`,
/// applying them to the session via the matching shell commands.
fn apply_limit_flags(session: &mut Session, args: &mut Vec<String>) -> Result<(), String> {
    let mut limit_parts: Vec<String> = Vec::new();
    while let Some(first) = args.first().cloned() {
        let Some(flag) = first.strip_prefix("--") else {
            break;
        };
        let (key, value) = match flag.split_once('=') {
            Some((k, v)) => {
                if flag_route(k).is_none() {
                    return Err(format!("unknown flag `--{k}`"));
                }
                args.remove(0);
                (k.to_string(), v.to_string())
            }
            None => {
                if flag_route(flag).is_none() {
                    return Err(format!("unknown flag `--{flag}`"));
                }
                if args.len() < 2 {
                    return Err(format!("flag `--{flag}` needs a value"));
                }
                args.remove(0);
                (flag.to_string(), args.remove(0))
            }
        };
        match flag_route(&key) {
            Some("limits") => limit_parts.push(format!("{key}={value}")),
            Some(command) => {
                session
                    .execute_line(&format!("{command} {value}"))
                    .map(|_| ())?;
            }
            None => unreachable!("route checked above"),
        }
    }
    if !limit_parts.is_empty() {
        session
            .execute_line(&format!("limits {}", limit_parts.join(" ")))
            .map(|_| ())?;
    }
    Ok(())
}
