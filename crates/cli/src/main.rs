//! `qfsh` — the query-flocks shell. See [`qf_cli`] for the command set.

use std::io::{BufRead, Write};

use qf_cli::Session;

fn main() {
    let mut session = Session::new();

    // Non-interactive: execute arguments joined as one command, then exit
    // (`qfsh gen baskets` etc. for scripting).
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        match session.execute_line(&args.join(" ")) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("qfsh — query flocks shell (type `help`)");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("qf> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.execute_line(&line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
