//! # qf-cli — the `qfsh` interactive shell
//!
//! A small line-oriented shell over the query-flocks system: load TSV
//! relations (or generate demo workloads), define a flock in the
//! paper's notation, and run it under any evaluation strategy.
//!
//! ```text
//! qf> gen baskets
//! generated baskets: 1000 baskets
//! qf> flock QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 FILTER: COUNT(answer.B) >= 20
//! flock set (2 parameters)
//! qf> run auto
//! strategy: dynamic (2 voluntary filters)
//! 12 result(s) …
//! ```
//!
//! The interpreter lives in [`Session`] so it is unit-testable; the
//! `qfsh` binary is a thin stdin loop around it.

#![warn(missing_docs)]

use std::fmt::Write as _;

use qf_core::{
    best_plan, evaluate_dynamic, to_sql, DynamicConfig, ExecContext, FlockProgram,
    JoinOrderStrategy, Optimizer, QueryFlock, Strategy,
};
use qf_storage::{tsv, Database, Relation};

/// Resource limits applied to every governed evaluation (`run`).
/// Settable from the command line (`--timeout`, `--max-rows`,
/// `--mem-budget`, `--threads`) or the `limits` shell command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Limits {
    /// Cap on tuples materialized per evaluation.
    pub max_rows: Option<u64>,
    /// Cap on estimated materialized bytes per evaluation.
    pub mem_budget: Option<u64>,
    /// Wall-clock deadline per evaluation, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Worker threads per evaluation (default: available parallelism,
    /// or the `QF_THREADS` environment variable).
    pub threads: Option<usize>,
}

impl Limits {
    /// Build a fresh execution context enforcing these limits. Each
    /// evaluation gets its own context so the deadline restarts.
    pub fn context(&self) -> ExecContext {
        let mut ctx = ExecContext::unbounded();
        if let Some(rows) = self.max_rows {
            ctx = ctx.with_max_rows(rows);
        }
        if let Some(bytes) = self.mem_budget {
            ctx = ctx.with_mem_budget(bytes);
        }
        if let Some(ms) = self.timeout_ms {
            ctx = ctx.with_timeout(std::time::Duration::from_millis(ms));
        }
        if let Some(n) = self.threads {
            ctx = ctx.with_threads(n);
        }
        ctx
    }

    /// True when no limit is set.
    pub fn is_unbounded(&self) -> bool {
        *self == Limits::default()
    }
}

impl std::fmt::Display for Limits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unbounded() {
            return f.write_str("no limits");
        }
        let mut parts = Vec::new();
        if let Some(r) = self.max_rows {
            parts.push(format!("max-rows={r}"));
        }
        if let Some(b) = self.mem_budget {
            parts.push(format!("mem-budget={b}"));
        }
        if let Some(t) = self.timeout_ms {
            parts.push(format!("timeout={t}ms"));
        }
        if let Some(n) = self.threads {
            parts.push(format!("threads={n}"));
        }
        f.write_str(&parts.join(" "))
    }
}

/// Interactive session state: the working database and current program
/// (views + flock; a plain flock is a program with no views).
#[derive(Default)]
pub struct Session {
    /// Loaded/generated relations.
    pub db: Database,
    /// The current flock program, if one was defined.
    pub program: Option<FlockProgram>,
    /// Resource limits applied to `run`.
    pub limits: Limits,
    /// Spill directory for out-of-core execution: when set, a governed
    /// `run` that would trip its memory budget spills intermediate
    /// state to disk and continues instead of aborting.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Run directory for crash-safe resume: when set, completed
    /// `FILTER` steps are journaled there and a re-run resumes from
    /// the last completed step.
    pub journal_dir: Option<std::path::PathBuf>,
    /// Emit `run` results as a single JSON object instead of text.
    pub report_json: bool,
    /// Deterministic I/O fault injection for spill and journal files:
    /// `(seed, rate)` — roughly one fault per `rate` faultable
    /// operations, driven by `seed` (`--io-faults seed=N [rate=M]`).
    pub io_faults: Option<(u64, u64)>,
    /// Malformed TSV data lines skipped by lossy loads this session.
    pub tsv_skipped: u64,
}

impl Session {
    /// Fresh session with an empty database.
    pub fn new() -> Session {
        Session::default()
    }

    /// Execute one command line, returning the text to print.
    pub fn execute_line(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "" => Ok(String::new()),
            "help" | "?" => Ok(HELP.to_string()),
            "load" => self.load(rest),
            "save" => self.save(rest),
            "rels" => Ok(self.rels()),
            "show" => self.show(rest),
            "gen" => self.generate(rest),
            "flock" => self.set_flock(rest),
            "limits" => self.set_limits(rest),
            "spill" => self.set_spill(rest),
            "resume" => self.set_resume(rest),
            "faults" => self.set_faults(rest),
            "report" => self.set_report(rest),
            "run" => self.run(rest),
            "plan" => self.plan(),
            "sql" => self.sql(),
            "explain" => self.explain(),
            "quit" | "exit" => Err("quit".to_string()),
            other => Err(format!("unknown command `{other}` (try `help`)")),
        }
    }

    fn load(&mut self, path: &str) -> Result<String, String> {
        if path.is_empty() {
            return Err("usage: load <file.tsv>".to_string());
        }
        let lossy = tsv::load_tsv_lossy(path).map_err(|e| e.to_string())?;
        let rel = lossy.relation;
        let mut msg = format!("loaded {} [{} tuples]", rel.schema(), rel.len());
        if lossy.skipped > 0 {
            self.tsv_skipped += lossy.skipped as u64;
            let _ = write!(msg, " (skipped {} malformed line(s))", lossy.skipped);
        }
        self.db.insert(rel);
        Ok(msg)
    }

    fn save(&mut self, rest: &str) -> Result<String, String> {
        let (name, path) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: save <relation> <file.tsv>")?;
        let rel = self.db.get(name.trim()).map_err(|e| e.to_string())?;
        tsv::save_tsv(rel, path.trim()).map_err(|e| e.to_string())?;
        Ok(format!("saved {} tuples to {}", rel.len(), path.trim()))
    }

    fn rels(&self) -> String {
        if self.db.is_empty() {
            return "no relations loaded (try `gen baskets` or `load <file>`)".to_string();
        }
        let mut out = String::new();
        for r in self.db.iter() {
            let _ = writeln!(out, "{} [{} tuples]", r.schema(), r.len());
        }
        out.trim_end().to_string()
    }

    fn show(&self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or("usage: show <relation> [n]")?;
        let n: usize = parts
            .next()
            .map(|s| s.parse().map_err(|_| "bad row count".to_string()))
            .transpose()?
            .unwrap_or(10);
        let rel = self.db.get(name).map_err(|e| e.to_string())?;
        let mut out = format!("{} [{} tuples]\n", rel.schema(), rel.len());
        for t in rel.iter().take(n) {
            let _ = writeln!(out, "  {t}");
        }
        if rel.len() > n {
            let _ = writeln!(out, "  … {} more", rel.len() - n);
        }
        Ok(out.trim_end().to_string())
    }

    fn generate(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let what = parts.next().unwrap_or("");
        let seed: u64 = parts
            .next()
            .map(|s| s.parse().map_err(|_| "bad seed".to_string()))
            .transpose()?
            .unwrap_or(1);
        match what {
            "baskets" => {
                let config = qf_datagen::BasketConfig {
                    seed,
                    ..Default::default()
                };
                let data = qf_datagen::baskets::generate(&config);
                let n = data.baskets.distinct(0);
                self.db.insert(data.baskets);
                self.db.insert(qf_datagen::baskets::importance(&config, 50));
                Ok(format!(
                    "generated baskets ({n} baskets) and importance weights"
                ))
            }
            "words" => {
                let rel = qf_datagen::words::generate(&qf_datagen::WordsConfig {
                    seed,
                    ..Default::default()
                });
                let msg = format!("generated baskets (word occurrences, {} tuples)", rel.len());
                self.db.insert(rel);
                Ok(msg)
            }
            "medical" => {
                let data = qf_datagen::medical::generate(&qf_datagen::MedicalConfig {
                    seed,
                    ..Default::default()
                });
                for rel in data.db.iter() {
                    self.db.insert(rel.clone());
                }
                Ok(format!(
                    "generated medical db (planted side-effects: {:?})",
                    data.planted
                ))
            }
            "web" => {
                let data = qf_datagen::web::generate(&qf_datagen::WebConfig {
                    seed,
                    ..Default::default()
                });
                for rel in data.db.iter() {
                    self.db.insert(rel.clone());
                }
                Ok(format!(
                    "generated web corpus (planted pairs: {:?})",
                    data.planted
                ))
            }
            "graph" => {
                let rel = qf_datagen::graph::generate(&qf_datagen::GraphConfig {
                    seed,
                    ..Default::default()
                });
                let msg = format!("generated arc ({} arcs)", rel.len());
                self.db.insert(rel);
                Ok(msg)
            }
            _ => Err("usage: gen <baskets|words|medical|web|graph> [seed]".to_string()),
        }
    }

    fn set_flock(&mut self, text: &str) -> Result<String, String> {
        if text.is_empty() {
            return match &self.program {
                Some(p) => Ok(p.flock().render()),
                None => Err("no flock set; usage: flock [views…] QUERY: … FILTER: …".to_string()),
            };
        }
        // `flock fingerprint`: canonical form + fingerprint of the
        // current program — the identity the server's caches key on.
        if text == "fingerprint" {
            let program = self.current_program()?;
            return Ok(format!(
                "fingerprint: {:016x}\n{}",
                program.fingerprint(),
                program.canonical_text()
            ));
        }
        let program = FlockProgram::parse(text).map_err(|e| e.to_string())?;
        let n = program.flock().params().len();
        let v = program.views().len();
        self.program = Some(program);
        if v > 0 {
            Ok(format!("flock set ({n} parameters, {v} view rule(s))"))
        } else {
            Ok(format!("flock set ({n} parameters)"))
        }
    }

    fn set_limits(&mut self, rest: &str) -> Result<String, String> {
        if rest.is_empty() {
            return Ok(self.limits.to_string());
        }
        if rest == "none" {
            self.limits = Limits::default();
            return Ok("limits cleared".to_string());
        }
        let mut limits = self.limits;
        for part in rest.split_whitespace() {
            let (key, value) = part
                .split_once('=')
                .ok_or("usage: limits [none | max-rows=N mem-budget=BYTES timeout=MS threads=N]")?;
            match key {
                "max-rows" => limits.max_rows = Some(parse_count(value)?),
                "mem-budget" => limits.mem_budget = Some(parse_count(value)?),
                "timeout" => limits.timeout_ms = Some(parse_millis(value)?),
                "threads" => {
                    let n = parse_count(value)?;
                    if n == 0 {
                        return Err("threads must be at least 1".to_string());
                    }
                    limits.threads = Some(n as usize);
                }
                other => return Err(format!("unknown limit `{other}`")),
            }
        }
        self.limits = limits;
        Ok(self.limits.to_string())
    }

    fn set_spill(&mut self, rest: &str) -> Result<String, String> {
        match rest {
            "" => Ok(match &self.spill_dir {
                Some(d) => format!("spill directory: {}", d.display()),
                None => "spilling disabled".to_string(),
            }),
            "none" => {
                self.spill_dir = None;
                Ok("spilling disabled".to_string())
            }
            dir => {
                self.spill_dir = Some(dir.into());
                Ok(format!("spill directory: {dir}"))
            }
        }
    }

    fn set_resume(&mut self, rest: &str) -> Result<String, String> {
        match rest {
            "" => Ok(match &self.journal_dir {
                Some(d) => format!("run journal: {}", d.display()),
                None => "journaling disabled".to_string(),
            }),
            "none" => {
                self.journal_dir = None;
                Ok("journaling disabled".to_string())
            }
            dir => {
                self.journal_dir = Some(dir.into());
                Ok(format!("run journal: {dir}"))
            }
        }
    }

    fn set_faults(&mut self, rest: &str) -> Result<String, String> {
        match rest {
            "" => Ok(match self.io_faults {
                Some((seed, rate)) => format!("fault injection: seed={seed} rate={rate}"),
                None => "fault injection disabled".to_string(),
            }),
            "none" => {
                self.io_faults = None;
                Ok("fault injection disabled".to_string())
            }
            args => {
                let mut seed = None;
                let mut rate = 200u64; // ~one fault per 200 faultable ops
                for part in args.split_whitespace() {
                    let (key, value) = part
                        .split_once('=')
                        .ok_or("usage: faults [none | seed=N [rate=M]]")?;
                    match key {
                        "seed" => seed = Some(parse_count(value)?),
                        "rate" => {
                            rate = parse_count(value)?;
                            if rate == 0 {
                                return Err("rate must be at least 1".to_string());
                            }
                        }
                        other => return Err(format!("unknown faults key `{other}`")),
                    }
                }
                let seed = seed.ok_or("faults needs seed=N")?;
                self.io_faults = Some((seed, rate));
                Ok(format!("fault injection: seed={seed} rate={rate}"))
            }
        }
    }

    /// The filesystem backend spill and journal I/O should use: a
    /// seeded chaos injector when `faults` is set, the real filesystem
    /// otherwise.
    fn io_vfs(&self) -> std::sync::Arc<dyn qf_storage::Vfs> {
        match self.io_faults {
            Some((seed, rate)) => std::sync::Arc::new(qf_storage::ChaosFs::seeded(seed, rate)),
            None => qf_storage::real_fs(),
        }
    }

    fn set_report(&mut self, rest: &str) -> Result<String, String> {
        match rest {
            "json" => {
                self.report_json = true;
                Ok("reporting: json".to_string())
            }
            "" => Ok(format!(
                "reporting: {}",
                if self.report_json { "json" } else { "text" }
            )),
            "text" => {
                self.report_json = false;
                Ok("reporting: text".to_string())
            }
            other => Err(format!("unknown report format `{other}` (text|json)")),
        }
    }

    /// Build the execution context for a `run`: the configured limits,
    /// the `QF_MEM_BUDGET` environment fallback for the memory budget,
    /// and the spill directory when one is set.
    fn run_context(&self) -> Result<ExecContext, String> {
        let mut ctx = self.limits.context();
        if self.limits.mem_budget.is_none() {
            if let Some(b) = qf_core::env_mem_budget() {
                ctx = ctx.with_mem_budget(b);
            }
        }
        if let Some(dir) = &self.spill_dir {
            let sd =
                qf_storage::SpillDir::create_on(self.io_vfs(), dir).map_err(|e| e.to_string())?;
            ctx = ctx.with_spill(std::sync::Arc::new(sd));
        }
        Ok(ctx)
    }

    fn current_program(&self) -> Result<&FlockProgram, String> {
        self.program
            .as_ref()
            .ok_or_else(|| "no flock set (use `flock QUERY: … FILTER: …`)".to_string())
    }

    fn current_flock(&self) -> Result<&QueryFlock, String> {
        Ok(self.current_program()?.flock())
    }

    fn run(&mut self, rest: &str) -> Result<String, String> {
        let strategy = match rest {
            "" | "auto" => Strategy::Auto,
            "direct" => Strategy::Direct,
            "static" => Strategy::BestStatic,
            "dynamic" => Strategy::Dynamic,
            other => return Err(format!("unknown strategy `{other}`")),
        };
        let program = self.current_program()?.clone();
        let ctx = self.run_context()?;
        let mut optimizer = Optimizer::with_strategy(strategy);
        optimizer.config.journal_dir = self.journal_dir.clone();
        if self.io_faults.is_some() {
            optimizer.config.journal_vfs = Some(self.io_vfs());
        }
        let start = std::time::Instant::now();
        let evaluation = program
            .evaluate_governed(&self.db, &optimizer, &ctx)
            .map_err(|e| e.to_string())?;
        let elapsed = start.elapsed();
        if self.report_json {
            return Ok(json_report(&evaluation, elapsed, self.tsv_skipped));
        }
        let mut out = format!(
            "strategy: {} ({elapsed:?})\n{} result(s)",
            evaluation.strategy_used,
            evaluation.result.len()
        );
        if !self.limits.is_unbounded() {
            let _ = write!(
                out,
                "\ngoverned: {} rows, ~{} bytes materialized, {} worker(s) ({})",
                evaluation.stats.rows,
                evaluation.stats.bytes,
                evaluation.stats.workers,
                self.limits
            );
        }
        if evaluation.stats.spilled_bytes > 0 {
            let _ = write!(
                out,
                "\nspilled: {} bytes across {} file(s)",
                evaluation.stats.spilled_bytes, evaluation.stats.spills
            );
        }
        if evaluation.resumed_steps > 0 {
            let _ = write!(
                out,
                "\nresumed: {} step(s) replayed from the journal",
                evaluation.resumed_steps
            );
        }
        if evaluation.stats.io_retries > 0 || evaluation.stats.corruption_recoveries > 0 {
            let _ = write!(
                out,
                "\nrecovered: {} transient retry(ies), {} corruption recompute(s)",
                evaluation.stats.io_retries, evaluation.stats.corruption_recoveries
            );
        }
        for d in &evaluation.stats.degradations {
            let _ = write!(out, "\ndegraded [{}]: {}", d.stage, d.detail);
        }
        for t in evaluation.result.iter().take(20) {
            let _ = write!(out, "\n  {t}");
        }
        if evaluation.result.len() > 20 {
            let _ = write!(out, "\n  … {} more", evaluation.result.len() - 20);
        }
        Ok(out)
    }

    fn plan(&self) -> Result<String, String> {
        let program = self.current_program()?;
        let working = program
            .materialize_views(&self.db, JoinOrderStrategy::Greedy)
            .map_err(|e| e.to_string())?;
        let flock = program.flock();
        let (plan, cost) = best_plan(flock, &working).map_err(|e| e.to_string())?;
        let report = qf_core::estimate_plan_report(&plan, &working, JoinOrderStrategy::Greedy)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "-- estimated cost: {cost:.0} tuples\n{plan}\n\n{}",
            report.render()
        ))
    }

    fn sql(&self) -> Result<String, String> {
        let flock = self.current_flock()?;
        to_sql(flock).map_err(|e| e.to_string())
    }

    fn explain(&self) -> Result<String, String> {
        let program = self.current_program()?;
        let working = program
            .materialize_views(&self.db, JoinOrderStrategy::Greedy)
            .map_err(|e| e.to_string())?;
        let flock = program.flock();
        let compiled = qf_core::compile_answer(flock.query(), &working, JoinOrderStrategy::Greedy)
            .map_err(|e| e.to_string())?;
        let mut out = compiled.plan.explain();
        if let Ok(est) = qf_engine::estimate(&compiled.plan, &working) {
            let _ = write!(out, "-- estimated answer tuples: {:.0}", est.rows);
        }
        // For single-rule COUNT flocks, also show the dynamic trace.
        if flock.query().is_single() {
            if let Ok(report) = evaluate_dynamic(flock, &working, &DynamicConfig::default()) {
                let _ = write!(out, "\n-- dynamic decisions:");
                for d in &report.decisions {
                    let _ = write!(
                        out,
                        "\n--   after {}: {}",
                        d.after_subgoal,
                        if d.filtered { "FILTER" } else { "skip" }
                    );
                }
            }
        }
        Ok(out)
    }

    /// Reference to a loaded relation (test helper).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.db.get(name).ok()
    }
}

/// Render an evaluation as one JSON object. Delegates to the server's
/// shared report builder so local runs and server responses emit the
/// same shape; local runs have no cache in play, so the cache keys are
/// all zero/false.
fn json_report(
    evaluation: &qf_core::Evaluation,
    elapsed: std::time::Duration,
    tsv_skipped: u64,
) -> String {
    qf_server::json_report(
        &evaluation.strategy_used,
        evaluation.result.len(),
        elapsed.as_millis(),
        &evaluation.stats,
        evaluation.resumed_steps,
        tsv_skipped,
        &qf_server::CacheReport::default(),
    )
}

/// `qfsh serve --addr host:port [--data-dir DIR --threads N
/// --queue-cap N --cache-entries K --max-rows N --mem-budget BYTES
/// --timeout MS --max-conns N --idle-timeout MS --io-timeout MS
/// --retry-after MS]`: run the resident flock server. Blocks until a
/// client sends `shutdown` (the server drains in-flight work first).
///
/// With `--data-dir` the catalog is durable: every mutation
/// (`load`/`gen`/`append`/`retract`) is committed to a write-ahead log in DIR
/// before it is acknowledged, and a restart on the same DIR recovers
/// exactly the acknowledged catalog (snapshot + log replay,
/// checksum-verified, torn tail truncated).
pub fn serve_main(args: &[String]) -> Result<String, String> {
    let mut config = qf_server::ServerConfig::default();
    let mut addr = "127.0.0.1:7447".to_string();
    let mut data_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let (key, value) = flag_value(args, &mut i)?;
        match key.as_str() {
            "addr" => addr = value,
            "data-dir" => data_dir = Some(value),
            "threads" => config.threads = parse_count(&value)? as usize,
            "queue-cap" => config.queue_cap = parse_count(&value)? as usize,
            "cache-entries" => config.cache_entries = parse_count(&value)? as usize,
            "max-rows" => config.max_rows = Some(parse_count(&value)?),
            "mem-budget" => config.mem_budget = Some(parse_count(&value)?),
            "timeout" => config.timeout_ms = Some(parse_millis(&value)?),
            "max-conns" => config.max_conns = parse_count(&value)? as usize,
            "idle-timeout" => config.idle_timeout_ms = parse_millis(&value)?,
            "io-timeout" => config.io_timeout_ms = parse_millis(&value)?,
            "retry-after" => config.retry_after_ms = parse_millis(&value)?,
            other => return Err(format!("unknown serve flag `--{other}`")),
        }
    }
    let server = match &data_dir {
        Some(dir) => {
            let service = std::sync::Arc::new(open_durable_service(config, dir)?);
            qf_server::Server::serve_handler(
                std::sync::Arc::new(qf_server::LocalHandler::new(service)),
                &addr,
            )
        }
        None => qf_server::Server::serve(config, Database::new(), &addr),
    }
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("qf-server listening on {}", server.addr());
    server.join();
    Ok("qf-server drained and shut down".to_string())
}

/// Open the write-ahead log in `dir` and build a durable service over
/// the catalog it recovers. Shared by `serve` and `shard`.
fn open_durable_service(
    config: qf_server::ServerConfig,
    dir: &str,
) -> Result<qf_server::FlockService, String> {
    let (wal, db) = qf_storage::Wal::open(
        qf_storage::real_fs(),
        std::path::Path::new(dir),
        qf_storage::WalOptions::default(),
    )
    .map_err(|e| format!("data dir {dir}: {e}"))?;
    println!(
        "qf-server data dir {dir}: recovered {} relation(s) at wal seq {}",
        db.len(),
        wal.last_seq()
    );
    Ok(qf_server::FlockService::with_wal(config, db, wal))
}

/// `qfsh shard --addr host:port --shards host:port,host:port,…
/// [--replicas R --fail-threshold K --probe-interval MS
/// --hedge-after-ms MS --replicate rel1,rel2,… --shard-retries K
/// --shard-io-timeout MS and every `serve` flag]`: run the
/// scatter-gather coordinator over a fleet of already-running
/// `qfsh serve` workers. The coordinator speaks the same protocol as a
/// standalone server — `qfsh client` points at it unchanged — and
/// holds the master catalog: `load`/`gen` mutations partition and
/// re-push every fragment to its `--replicas` hosts (`append`/`retract`
/// ship only the delta tuples to the fragments they touch), shardable
/// flocks
/// scatter per `FILTER` step (failing over across replicas, hedging
/// slow primaries after `--hedge-after-ms`) and merge algebraically,
/// and everything else runs locally against the master. Workers that
/// fail `--fail-threshold` RPCs in a row are circuit-broken until the
/// background probe (every `--probe-interval` ms) re-syncs and
/// readmits them. With `--data-dir DIR` the master catalog is durable:
/// mutations commit to a write-ahead log before acknowledging, and a
/// coordinator restart recovers, re-partitions, and re-pushes the
/// acknowledged catalog to the fleet.
pub fn shard_main(args: &[String]) -> Result<String, String> {
    let mut config = qf_server::ServerConfig::default();
    let mut shard = qf_server::ShardConfig::default();
    let mut addr = "127.0.0.1:7448".to_string();
    let mut data_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let (key, value) = flag_value(args, &mut i)?;
        match key.as_str() {
            "addr" => addr = value,
            "data-dir" => data_dir = Some(value),
            "shards" => {
                shard.addrs = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "replicate" => {
                shard.replicated = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "replicas" => shard.replicas = parse_count(&value)? as usize,
            "fail-threshold" => shard.fail_threshold = parse_count(&value)? as u32,
            "probe-interval" => shard.probe_interval_ms = parse_millis(&value)?,
            "hedge-after-ms" => shard.hedge_after_ms = Some(parse_millis(&value)?),
            "shard-retries" => shard.client.retries = parse_count(&value)? as u32,
            "shard-io-timeout" => {
                shard.client.io_timeout =
                    Some(std::time::Duration::from_millis(parse_millis(&value)?))
            }
            "threads" => config.threads = parse_count(&value)? as usize,
            "queue-cap" => config.queue_cap = parse_count(&value)? as usize,
            "cache-entries" => config.cache_entries = parse_count(&value)? as usize,
            "max-rows" => config.max_rows = Some(parse_count(&value)?),
            "mem-budget" => config.mem_budget = Some(parse_count(&value)?),
            "timeout" => config.timeout_ms = Some(parse_millis(&value)?),
            "max-conns" => config.max_conns = parse_count(&value)? as usize,
            "idle-timeout" => config.idle_timeout_ms = parse_millis(&value)?,
            "io-timeout" => config.io_timeout_ms = parse_millis(&value)?,
            "retry-after" => config.retry_after_ms = parse_millis(&value)?,
            other => return Err(format!("unknown shard flag `--{other}`")),
        }
    }
    if shard.addrs.is_empty() {
        return Err("shard needs --shards host:port[,host:port…] (the worker fleet)".to_string());
    }
    let shards = shard.addrs.len();
    let replicas = shard.replicas.clamp(1, shards.max(1));
    // With --data-dir the *master* catalog is WAL-backed: a restarted
    // coordinator recovers the acknowledged catalog, re-partitions it,
    // and re-syncs every fragment to the workers.
    let coordinator = match &data_dir {
        Some(dir) => {
            let service = std::sync::Arc::new(open_durable_service(config, dir)?);
            let c = qf_server::Coordinator::with_service(service, shard);
            if let Err(e) = c.push_catalog() {
                eprintln!("qf-shard: initial catalog push incomplete ({e}); probe will re-sync");
            }
            c
        }
        None => qf_server::Coordinator::new(config, shard, Database::new()),
    };
    let server = qf_server::Server::serve_handler(std::sync::Arc::new(coordinator), &addr)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "qf-shard coordinator on {} ({shards} shard(s), {replicas} replica(s))",
        server.addr()
    );
    server.join();
    Ok("qf-shard coordinator drained and shut down".to_string())
}

/// `qfsh client --addr host:port [--support N --max-rows N
/// --mem-budget BYTES --timeout MS --threads N --retries K
/// --connect-timeout MS --io-timeout MS] <command…>`: one request
/// against a running server. Commands: `ping`, `stats`, `shutdown`,
/// `gen <kind> [seed]`, `load <file.tsv>`,
/// `append <relation> <file.tsv>`, `retract <relation> <file.tsv>`,
/// `fingerprint <program>`, `flock <program>`. A flock response prints
/// the same one-line JSON report as a local `--report json` run,
/// followed by the result TSV.
///
/// `--timeout` doubles as the server-side request deadline (min'd with
/// the server cap, counted from admission) and `--retries` bounds
/// transparent retries: typed `overloaded`/`timeout`/`proto`/
/// `shutting-down` responses retry for any command; ambiguous
/// transport failures retry only for idempotent commands (everything
/// except `load`/`gen`/`append`/`retract`).
pub fn client_main(args: &[String]) -> Result<String, String> {
    let mut addr: Option<String> = None;
    let mut support: Option<i64> = None;
    let mut limits = qf_server::RequestLimits::default();
    let mut client_config = qf_server::ClientConfig::default();
    let mut i = 0;
    while i < args.len() && args[i].starts_with("--") {
        let (key, value) = flag_value(args, &mut i)?;
        match key.as_str() {
            "addr" => addr = Some(value),
            "support" => {
                support = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad support `{value}`"))?,
                )
            }
            "max-rows" => limits.max_rows = Some(parse_count(&value)?),
            "mem-budget" => limits.mem_budget = Some(parse_count(&value)?),
            "timeout" => limits.timeout_ms = Some(parse_millis(&value)?),
            "threads" => limits.threads = Some(parse_count(&value)? as usize),
            "retries" => client_config.retries = parse_count(&value)? as u32,
            "connect-timeout" => {
                client_config.connect_timeout =
                    std::time::Duration::from_millis(parse_millis(&value)?)
            }
            "io-timeout" => {
                client_config.io_timeout =
                    Some(std::time::Duration::from_millis(parse_millis(&value)?))
            }
            other => return Err(format!("unknown client flag `--{other}`")),
        }
    }
    let addr = addr.ok_or("client needs --addr host:port")?;
    let cmd = args.get(i).map(String::as_str).unwrap_or("ping");
    let rest = args[i + 1..].join(" ");
    let mut client =
        qf_server::Client::connect_with(&addr, client_config).map_err(|e| e.to_string())?;
    let response = match cmd {
        "ping" => client.ping(),
        "stats" => client.stats(),
        "shutdown" => client.shutdown(),
        "fingerprint" => client.fingerprint(&rest),
        "flock" => client.flock(&rest, support, limits),
        "gen" => {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().ok_or("usage: gen <kind> [seed]")?;
            let seed = parts
                .next()
                .map(|s| s.parse().map_err(|_| "bad seed".to_string()))
                .transpose()?
                .unwrap_or(1);
            client.gen(kind, seed)
        }
        "load" => {
            let path = rest.trim();
            if path.is_empty() {
                return Err("usage: load <file.tsv>".to_string());
            }
            let tsv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            client.load(&tsv)
        }
        "append" => {
            let mut parts = rest.split_whitespace();
            let usage = "usage: append <relation> <file.tsv>";
            let rel = parts.next().ok_or(usage)?;
            let path = parts.next().ok_or(usage)?;
            let tsv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            client.append(rel, &tsv)
        }
        "retract" => {
            let mut parts = rest.split_whitespace();
            let usage = "usage: retract <relation> <file.tsv>";
            let rel = parts.next().ok_or(usage)?;
            let path = parts.next().ok_or(usage)?;
            let tsv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            client.retract(rel, &tsv)
        }
        other => return Err(format!("unknown client command `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    match response {
        qf_server::Response::Ok { meta, body } => {
            // Fold this session's retry count into the report: the
            // server fills `"retries":0` (it cannot know about client
            // attempts), so the client owns that field.
            let retries = client.session_stats().retries;
            let meta = if retries > 0 {
                meta.replacen("\"retries\":0", &format!("\"retries\":{retries}"), 1)
            } else {
                meta
            };
            let body = body.trim_end();
            if body.is_empty() || meta == "{}" {
                Ok(if body.is_empty() {
                    meta
                } else {
                    body.to_string()
                })
            } else {
                Ok(format!("{meta}\n{body}"))
            }
        }
        qf_server::Response::Err { kind, detail } => Err(format!("{kind}: {detail}")),
    }
}

/// Parse `--key value` or `--key=value` at `args[*i]`, advancing `i`.
fn flag_value(args: &[String], i: &mut usize) -> Result<(String, String), String> {
    let arg = &args[*i];
    let flag = arg
        .strip_prefix("--")
        .ok_or_else(|| format!("expected --flag, got `{arg}`"))?;
    match flag.split_once('=') {
        Some((k, v)) => {
            *i += 1;
            Ok((k.to_string(), v.to_string()))
        }
        None => {
            if *i + 1 >= args.len() {
                return Err(format!("flag `--{flag}` needs a value"));
            }
            let v = args[*i + 1].clone();
            *i += 2;
            Ok((flag.to_string(), v))
        }
    }
}

/// Parse a non-negative count, accepting decimal `k`/`m`/`g` suffixes
/// (`64k` = 64 000).
fn parse_count(value: &str) -> Result<u64, String> {
    let (digits, mult) = match value.to_ascii_lowercase() {
        v if v.ends_with('k') => (v.len() - 1, 1_000u64),
        v if v.ends_with('m') => (v.len() - 1, 1_000_000),
        v if v.ends_with('g') => (v.len() - 1, 1_000_000_000),
        v => (v.len(), 1),
    };
    value[..digits]
        .parse::<u64>()
        .map_err(|_| format!("bad number `{value}`"))?
        .checked_mul(mult)
        .ok_or_else(|| format!("number `{value}` too large"))
}

/// Parse a duration in milliseconds, accepting `ms` or `s` suffixes.
fn parse_millis(value: &str) -> Result<u64, String> {
    let lower = value.to_ascii_lowercase();
    if let Some(v) = lower.strip_suffix("ms") {
        v.parse().map_err(|_| format!("bad duration `{value}`"))
    } else if let Some(v) = lower.strip_suffix('s') {
        v.parse::<u64>()
            .map_err(|_| format!("bad duration `{value}`"))?
            .checked_mul(1000)
            .ok_or_else(|| format!("duration `{value}` too large"))
    } else {
        lower.parse().map_err(|_| format!("bad duration `{value}`"))
    }
}

/// Help text for the shell.
pub const HELP: &str = "\
commands:
  gen <baskets|words|medical|web|graph> [seed]   generate a demo workload
  load <file.tsv>                                load a relation (header: name<TAB>cols…)
  save <relation> <file.tsv>                     write a relation
  rels                                           list relations
  show <relation> [n]                            preview tuples
  flock [view rules…] QUERY: … FILTER: …         define the current flock (views optional)
  flock fingerprint                              canonical form + cache identity of the flock
  limits [none | max-rows=N mem-budget=BYTES timeout=MS threads=N]   budget every run
  spill [<dir>|none]                             spill to disk under memory pressure
  resume [<dir>|none]                            journal steps; re-run resumes from <dir>
  faults [none | seed=N [rate=M]]                inject deterministic I/O faults (spill+journal)
  report [text|json]                             run output format
  run [auto|direct|static|dynamic]               evaluate the flock
  plan                                           show the cost-based best plan
  sql                                            render the flock as SQL
  explain                                        physical plan + dynamic trace
  quit

server mode (top-level subcommands, not shell commands):
  qfsh serve --addr host:port [--threads N --queue-cap N --cache-entries K
             --max-rows N --mem-budget BYTES --timeout MS --max-conns N
             --idle-timeout MS --io-timeout MS --retry-after MS]
  qfsh shard --addr host:port --shards host:port,host:port,…
             [--replicas R --fail-threshold K --probe-interval MS
             --hedge-after-ms MS --replicate rel1,rel2,…
             --shard-retries K --shard-io-timeout MS + every serve flag]
  qfsh client --addr host:port [--support N --max-rows N --mem-budget BYTES
              --timeout MS --threads N --retries K --connect-timeout MS
              --io-timeout MS] <ping|stats|shutdown|gen|load|fingerprint|flock> …";

#[cfg(test)]
mod tests {
    use super::*;

    fn flock_cmd() -> &'static str {
        "flock QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 \
         FILTER: COUNT(answer.B) >= 20"
    }

    #[test]
    fn gen_flock_run_pipeline() {
        let mut s = Session::new();
        let msg = s.execute_line("gen baskets").unwrap();
        assert!(msg.contains("generated baskets"));
        assert!(s.relation("baskets").is_some());

        let msg = s.execute_line(flock_cmd()).unwrap();
        assert_eq!(msg, "flock set (2 parameters)");

        for strat in ["run", "run direct", "run static", "run dynamic"] {
            let out = s.execute_line(strat).unwrap();
            assert!(out.contains("result(s)"), "{strat}: {out}");
        }
    }

    #[test]
    fn plan_sql_explain_require_flock() {
        let mut s = Session::new();
        for cmd in ["run", "plan", "sql", "explain"] {
            assert!(s.execute_line(cmd).is_err(), "{cmd} without flock");
        }
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        assert!(s.execute_line("plan").unwrap().contains("FILTER"));
        assert!(s.execute_line("sql").unwrap().contains("GROUP BY"));
        assert!(s.execute_line("explain").unwrap().contains("Scan baskets"));
    }

    #[test]
    fn rels_and_show() {
        let mut s = Session::new();
        assert!(s.execute_line("rels").unwrap().contains("no relations"));
        s.execute_line("gen graph 7").unwrap();
        assert!(s.execute_line("rels").unwrap().contains("arc"));
        let out = s.execute_line("show arc 3").unwrap();
        assert!(out.contains("more"), "{out}");
        assert!(s.execute_line("show nope").is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        let dir = std::env::temp_dir().join(format!("qfsh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.tsv");
        let path_str = path.to_str().unwrap();
        s.execute_line(&format!("save baskets {path_str}")).unwrap();
        let mut s2 = Session::new();
        s2.execute_line(&format!("load {path_str}")).unwrap();
        assert_eq!(
            s.relation("baskets").unwrap().tuples(),
            s2.relation("baskets").unwrap().tuples()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported() {
        let mut s = Session::new();
        assert!(s.execute_line("load /no/such/file.tsv").is_err());
        assert!(s.execute_line("gen nothing").is_err());
        assert!(s.execute_line("bogus").is_err());
        assert!(s.execute_line("flock QUERY: broken").is_err());
        // quit signals the loop to stop.
        assert_eq!(s.execute_line("quit").unwrap_err(), "quit");
    }

    #[test]
    fn limits_command_sets_and_clears() {
        let mut s = Session::new();
        assert_eq!(s.execute_line("limits").unwrap(), "no limits");
        let out = s.execute_line("limits max-rows=64k timeout=2s").unwrap();
        assert_eq!(out, "max-rows=64000 timeout=2000ms");
        assert_eq!(s.limits.max_rows, Some(64_000));
        assert_eq!(s.limits.timeout_ms, Some(2_000));
        assert!(s.execute_line("limits rows=5").is_err());
        assert!(s.execute_line("limits max-rows=abc").is_err());
        assert_eq!(s.execute_line("limits none").unwrap(), "limits cleared");
        assert!(s.limits.is_unbounded());
    }

    #[test]
    fn threads_limit_sets_context_and_reports_workers() {
        let mut s = Session::new();
        let out = s.execute_line("limits threads=4").unwrap();
        assert_eq!(out, "threads=4");
        assert_eq!(s.limits.threads, Some(4));
        assert_eq!(s.limits.context().threads(), 4);
        assert!(s.execute_line("limits threads=0").is_err());

        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        let out = s.execute_line("run direct").unwrap();
        assert!(out.contains("worker(s) (threads=4)"), "{out}");

        // Thread count does not change results (skip the strategy,
        // count, and governed-stats lines — timings and worker counts
        // legitimately differ).
        let four: Vec<String> = out.lines().skip(3).map(String::from).collect();
        s.execute_line("limits threads=1").unwrap();
        let out = s.execute_line("run direct").unwrap();
        let one: Vec<String> = out.lines().skip(3).map(String::from).collect();
        assert_eq!(one, four);
    }

    #[test]
    fn tiny_row_budget_fails_run_cleanly() {
        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        s.execute_line("limits max-rows=10").unwrap();
        let err = s.execute_line("run direct").unwrap_err();
        assert!(err.contains("resource budget exceeded"), "{err}");
        // The session survives: clear limits and the run succeeds.
        s.execute_line("limits none").unwrap();
        assert!(s.execute_line("run direct").is_ok());
    }

    #[test]
    fn governed_run_reports_stats() {
        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        s.execute_line("limits max-rows=10m").unwrap();
        let out = s.execute_line("run direct").unwrap();
        assert!(out.contains("governed:"), "{out}");
        assert!(out.contains("rows"), "{out}");
    }

    #[test]
    fn help_lists_commands() {
        let mut s = Session::new();
        let help = s.execute_line("help").unwrap();
        for cmd in [
            "gen", "load", "flock", "run", "plan", "sql", "explain", "spill", "resume", "report",
        ] {
            assert!(help.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn spill_resume_report_commands_set_and_clear() {
        let mut s = Session::new();
        assert_eq!(s.execute_line("spill").unwrap(), "spilling disabled");
        assert_eq!(
            s.execute_line("spill /tmp/qf-spill").unwrap(),
            "spill directory: /tmp/qf-spill"
        );
        assert_eq!(
            s.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/qf-spill"))
        );
        assert_eq!(s.execute_line("spill none").unwrap(), "spilling disabled");
        assert!(s.spill_dir.is_none());

        assert_eq!(s.execute_line("resume").unwrap(), "journaling disabled");
        assert_eq!(
            s.execute_line("resume /tmp/qf-run").unwrap(),
            "run journal: /tmp/qf-run"
        );
        assert_eq!(
            s.journal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/qf-run"))
        );
        assert_eq!(
            s.execute_line("resume none").unwrap(),
            "journaling disabled"
        );
        assert!(s.journal_dir.is_none());

        assert_eq!(s.execute_line("report json").unwrap(), "reporting: json");
        assert!(s.report_json);
        assert_eq!(s.execute_line("report text").unwrap(), "reporting: text");
        assert!(!s.report_json);
        assert!(s.execute_line("report xml").is_err());
    }

    #[test]
    fn json_report_emits_one_object_with_run_stats() {
        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        s.execute_line("report json").unwrap();
        let out = s.execute_line("run direct").unwrap();
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(!out.contains('\n'), "one line: {out}");
        for key in [
            "\"strategy\":",
            "\"results\":",
            "\"elapsed_ms\":",
            "\"rows\":",
            "\"bytes\":",
            "\"workers\":",
            "\"spilled_bytes\":",
            "\"spills\":",
            "\"resumed_steps\":",
            "\"io_retries\":",
            "\"corruption_recoveries\":",
            "\"spill_files_live\":",
            "\"tsv_skipped_lines\":",
            "\"cache_hit\":false",
            "\"plan_cached\":false",
            "\"cache_hits\":0",
            "\"cache_misses\":0",
            "\"rejected\":0",
            "\"queue_depth_max\":0",
            "\"degradations\":[",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn flock_fingerprint_is_syntax_insensitive() {
        let mut s = Session::new();
        assert!(
            s.execute_line("flock fingerprint").is_err(),
            "no flock set yet"
        );
        s.execute_line(flock_cmd()).unwrap();
        let a = s.execute_line("flock fingerprint").unwrap();
        assert!(a.starts_with("fingerprint: "), "{a}");
        // The same flock spelled with different variable names and
        // subgoal order must canonicalize to the same identity.
        s.execute_line(
            "flock QUERY: answer(X) :- baskets(X,$2) AND baskets(X,$1) AND $1 < $2 \
             FILTER: COUNT(answer.X) >= 20",
        )
        .unwrap();
        let b = s.execute_line("flock fingerprint").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn faults_command_sets_and_clears() {
        let mut s = Session::new();
        assert_eq!(
            s.execute_line("faults").unwrap(),
            "fault injection disabled"
        );
        assert_eq!(
            s.execute_line("faults seed=7").unwrap(),
            "fault injection: seed=7 rate=200"
        );
        assert_eq!(s.io_faults, Some((7, 200)));
        assert_eq!(
            s.execute_line("faults seed=7 rate=50").unwrap(),
            "fault injection: seed=7 rate=50"
        );
        assert!(s.execute_line("faults rate=50").is_err()); // needs seed
        assert!(s.execute_line("faults seed=7 rate=0").is_err());
        assert!(s.execute_line("faults bogus=1").is_err());
        assert_eq!(
            s.execute_line("faults none").unwrap(),
            "fault injection disabled"
        );
        assert!(s.io_faults.is_none());
    }

    #[test]
    fn lossy_load_reports_and_accumulates_skipped_lines() {
        let dir = std::env::temp_dir().join(format!("qfsh-lossy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.tsv");
        std::fs::write(&path, "r\ta\tb\n1\t2\n3\t4\t5\n6\t7\n").unwrap();
        let mut s = Session::new();
        let msg = s.execute_line(&format!("load {}", path.display())).unwrap();
        assert!(msg.contains("skipped 1 malformed line(s)"), "{msg}");
        assert_eq!(s.tsv_skipped, 1);
        assert_eq!(s.relation("r").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_faults_either_succeeds_identically_or_fails_typed() {
        let base = std::env::temp_dir().join(format!("qfsh-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(base.join("spill")).unwrap();

        let mut clean = Session::new();
        clean.execute_line("gen baskets").unwrap();
        clean.execute_line(flock_cmd()).unwrap();
        let expected = clean.execute_line("run static").unwrap();
        let expected_results: Vec<&str> =
            expected.lines().filter(|l| l.starts_with("  ")).collect();

        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        s.execute_line(&format!("spill {}", base.join("spill").display()))
            .unwrap();
        s.execute_line(&format!("resume {}", base.join("run").display()))
            .unwrap();
        s.execute_line("limits mem-budget=1m threads=1").unwrap();
        s.execute_line("faults seed=3 rate=40").unwrap();
        match s.execute_line("run static") {
            Ok(out) => {
                let got: Vec<&str> = out.lines().filter(|l| l.starts_with("  ")).collect();
                assert_eq!(got, expected_results, "chaos run changed the answer");
            }
            // Unrecovered faults must surface as typed, descriptive
            // errors — never a panic or a silent wrong answer.
            Err(e) => assert!(!e.is_empty(), "empty error"),
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn spilled_journaled_run_resumes_through_the_shell() {
        let base = std::env::temp_dir().join(format!("qfsh-ooc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let spill = base.join("spill");
        let journal = base.join("run");
        std::fs::create_dir_all(&spill).unwrap();

        let mut s = Session::new();
        s.execute_line("gen baskets").unwrap();
        s.execute_line(flock_cmd()).unwrap();
        s.execute_line(&format!("spill {}", spill.display()))
            .unwrap();
        s.execute_line(&format!("resume {}", journal.display()))
            .unwrap();
        // A budget small enough to force the self-join to spill (its
        // in-memory footprint is several MB) but large enough for the
        // resident base relation (~0.5 MB — scans are never evicted).
        s.execute_line("limits mem-budget=1m").unwrap();
        let first = s.execute_line("run static").unwrap();
        assert!(first.contains("spilled:"), "{first}");
        assert!(!first.contains("resumed:"), "{first}");

        // Second run over the same journal replays every step; report
        // it as JSON to cover the resumed_steps field end to end.
        s.execute_line("report json").unwrap();
        let second = s.execute_line("run static").unwrap();
        assert!(!second.contains("\"resumed_steps\":0,"), "{second}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn views_through_shell() {
        let mut s = Session::new();
        s.execute_line("gen medical").unwrap();
        let msg = s
            .execute_line(
                "flock explained(P,S) :- diagnoses(P,D) AND causes(D,S) \
                 QUERY: answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
                 NOT explained(P,$s) FILTER: COUNT(answer.P) >= 20",
            )
            .unwrap();
        assert!(msg.contains("1 view rule"), "{msg}");
        let out = s.execute_line("run").unwrap();
        assert!(out.contains("result(s)"), "{out}");
        assert!(out.contains("sideeffect"), "{out}");
    }

    #[test]
    fn medical_end_to_end_through_shell() {
        let mut s = Session::new();
        s.execute_line("gen medical").unwrap();
        s.execute_line(
            "flock QUERY: answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s) FILTER: COUNT(answer.P) >= 20",
        )
        .unwrap();
        let out = s.execute_line("run auto").unwrap();
        assert!(out.contains("dynamic"), "{out}");
        assert!(
            out.contains("sideeffect"),
            "planted pair should appear: {out}"
        );
    }
}
