//! Association-rule generation from frequent itemsets.

use crate::apriori::{AprioriResult, ItemSet};
use crate::measures::{confidence, interest, support_fraction};

/// An association rule `antecedent → consequent` with its measures.
#[derive(Clone, Debug, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side items (sorted).
    pub antecedent: ItemSet,
    /// The single right-hand side item.
    pub consequent: u32,
    /// Support count of the full itemset.
    pub support_count: u64,
    /// Support as a fraction of transactions.
    pub support: f64,
    /// Rule confidence.
    pub confidence: f64,
    /// Rule interest (lift).
    pub interest: f64,
}

/// Generate single-consequent rules from frequent itemsets of size ≥ 2,
/// keeping those meeting `min_confidence`. Rules are sorted by
/// descending confidence, then antecedent (deterministic).
pub fn generate_rules(result: &AprioriResult, min_confidence: f64) -> Vec<AssociationRule> {
    let n = result.n_transactions;
    let mut rules = Vec::new();
    for k in 2..=result.levels.len() {
        for (set, &count) in &result.levels[k - 1] {
            for (pos, &consequent) in set.iter().enumerate() {
                let mut antecedent = set.clone();
                antecedent.remove(pos);
                let Some(ante_count) = result.support(&antecedent) else {
                    // A-priori guarantees subsets are frequent; missing
                    // means the result was truncated below this level.
                    continue;
                };
                let Some(cons_count) = result.support(&[consequent]) else {
                    continue;
                };
                let conf = confidence(count, ante_count);
                if conf >= min_confidence {
                    rules.push(AssociationRule {
                        antecedent,
                        consequent,
                        support_count: count,
                        support: support_fraction(count, n),
                        confidence: conf,
                        interest: interest(count, ante_count, cons_count, n),
                    });
                }
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

impl std::fmt::Display for AssociationRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ante: Vec<String> = self.antecedent.iter().map(u32::to_string).collect();
        write!(
            f,
            "{{{}}} -> {} (supp {:.3}, conf {:.3}, interest {:.2})",
            ante.join(","),
            self.consequent,
            self.support,
            self.confidence,
            self.interest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine_apriori;

    fn txns() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 4],
            vec![2, 4],
            vec![3],
        ]
    }

    #[test]
    fn rules_have_correct_measures() {
        let r = mine_apriori(&txns(), 3, 2);
        let rules = generate_rules(&r, 0.0);
        // {1} -> 2: union {1,2} count 4, antecedent {1} count 5.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![1] && r.consequent == 2)
            .expect("rule {1}->2");
        assert_eq!(rule.support_count, 4);
        assert!((rule.confidence - 0.8).abs() < 1e-12);
        // interest = 0.8 / (5/7).
        assert!((rule.interest - 0.8 / (5.0 / 7.0)).abs() < 1e-9);
    }

    #[test]
    fn confidence_threshold_filters() {
        let r = mine_apriori(&txns(), 3, 2);
        let all = generate_rules(&r, 0.0);
        let high = generate_rules(&r, 0.9);
        assert!(high.len() < all.len());
        assert!(high.iter().all(|r| r.confidence >= 0.9));
    }

    #[test]
    fn sorted_by_confidence() {
        let r = mine_apriori(&txns(), 3, 3);
        let rules = generate_rules(&r, 0.0);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn display_format() {
        let r = mine_apriori(&txns(), 3, 2);
        let rules = generate_rules(&r, 0.0);
        let s = rules[0].to_string();
        assert!(s.contains("->"), "{s}");
        assert!(s.contains("conf"), "{s}");
    }
}
