//! # qf-mine — classic association-rule mining
//!
//! The comparator the paper generalizes *from*: market-basket analysis
//! with the a-priori algorithm (\[AIS93\], \[AS94\]) and the three
//! association measures of §1.1 (support, confidence, interest).
//!
//! Two implementations of the same computation:
//!
//! * [`apriori`] — the classic levelwise file algorithm over raw
//!   transactions, with candidate generation and subset pruning. This
//!   is the "ad-hoc file processing algorithm" of §1.4.
//! * [`flockwise`] — §4.3 option 2: the same levelwise computation
//!   "expressed as a sequence of query flocks for increasing
//!   cardinalities, with each flock depending on the result of the
//!   previous flock" (§2, footnote 2), evaluated through the relational
//!   engine.
//!
//! Equality of their outputs is asserted in tests: the flock framework
//! really is a generalization of a-priori.

#![warn(missing_docs)]

pub mod apriori;
pub mod flockwise;
pub mod maximal;
pub mod measures;
pub mod rules;

pub use apriori::{mine_apriori, AprioriResult, ItemSet};
pub use flockwise::{mine_flockwise, mine_flockwise_with};
pub use maximal::maximal_itemsets;
pub use measures::{confidence, interest, support_fraction};
pub use rules::{generate_rules, AssociationRule};
