//! Maximal frequent itemsets.
//!
//! The paper's footnote 2 (§2.2): "finding something more complex, like
//! the set of *maximal* sets of items that appear in at least c baskets
//! (regardless of the cardinality of the set of items), is more awkward
//! and would be expressed as a sequence of query flocks for increasing
//! cardinalities, with each flock depending on the result of the
//! previous flock." [`mine_flockwise`](crate::mine_flockwise) is that
//! sequence; this module derives the maximal sets from its levels (or
//! from a classic [`AprioriResult`]).

use crate::apriori::{AprioriResult, ItemSet};

/// Frequent itemsets with no frequent proper superset, derived from a
/// levelwise mining result. Sorted for determinism.
pub fn maximal_itemsets(result: &AprioriResult) -> Vec<ItemSet> {
    let mut maximal: Vec<ItemSet> = Vec::new();
    for k in (1..=result.levels.len()).rev() {
        let level = &result.levels[k - 1];
        // A k-set is maximal iff no (k+1)-level frequent set contains
        // it: a-priori is levelwise-complete, so any frequent strict
        // superset implies a frequent superset exactly one item larger.
        let next_level = result.levels.get(k);
        for set in level.keys() {
            let covered = next_level.is_some_and(|next| next.keys().any(|sup| is_subset(set, sup)));
            if !covered {
                maximal.push(set.clone());
            }
        }
    }
    maximal.sort();
    maximal
}

/// `a ⊆ b` for sorted itemsets.
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine_apriori;

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn maximal_from_toy_data() {
        // {1,2,3} frequent at 3 ⇒ all its subsets are non-maximal;
        // {4} frequent alone (appears twice, with 1 and with 2 — but
        // {1,4} and {2,4} have support 1 < 3).
        let txns = vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 4],
            vec![2, 4],
            vec![3, 4],
        ];
        let r = mine_apriori(&txns, 3, 4);
        let maximal = maximal_itemsets(&r);
        assert_eq!(maximal, vec![vec![1, 2, 3], vec![4]]);
    }

    #[test]
    fn all_singletons_maximal_when_no_pairs() {
        let txns = vec![vec![1], vec![1], vec![2], vec![2]];
        let r = mine_apriori(&txns, 2, 3);
        assert_eq!(maximal_itemsets(&r), vec![vec![1], vec![2]]);
    }

    #[test]
    fn maximality_invariant() {
        // Property-style: no maximal set is a subset of another maximal
        // set, and every frequent set is covered by some maximal set.
        let txns: Vec<Vec<u32>> = (0..40u32)
            .map(|i| (0..6).filter(|&j| (i + j) % 3 != 0).collect())
            .collect();
        let r = mine_apriori(&txns, 8, 5);
        let maximal = maximal_itemsets(&r);
        for (i, a) in maximal.iter().enumerate() {
            for (j, b) in maximal.iter().enumerate() {
                if i != j {
                    assert!(!is_subset(a, b), "{a:?} ⊆ {b:?}");
                }
            }
        }
        for level in &r.levels {
            for set in level.keys() {
                assert!(
                    maximal.iter().any(|m| is_subset(set, m)),
                    "{set:?} not covered"
                );
            }
        }
    }
}
