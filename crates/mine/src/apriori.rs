//! The classic a-priori levelwise algorithm (\[AS94\]).
//!
//! §1.2: "if a set of items S appears in c baskets, then any subset of
//! S appears in at least c baskets" — so level k's candidates are
//! exactly the k-sets all of whose (k−1)-subsets were frequent. This is
//! the file-based comparator the flock machinery is measured against.

use qf_storage::FastMap;

/// A sorted set of item ids.
pub type ItemSet = Vec<u32>;

/// Frequent itemsets by level: `levels[k-1]` maps each frequent k-set
/// to its support count.
#[derive(Clone, Debug, Default)]
pub struct AprioriResult {
    /// `levels[k-1]`: frequent k-itemsets with support counts.
    pub levels: Vec<FastMap<ItemSet, u64>>,
    /// Number of transactions mined.
    pub n_transactions: usize,
}

impl AprioriResult {
    /// Support count of an itemset, if frequent.
    pub fn support(&self, set: &[u32]) -> Option<u64> {
        self.levels
            .get(set.len().checked_sub(1)?)
            .and_then(|l| l.get(set))
            .copied()
    }

    /// All frequent itemsets of size `k`, sorted (deterministic order).
    pub fn frequent_k(&self, k: usize) -> Vec<(ItemSet, u64)> {
        let mut v: Vec<(ItemSet, u64)> = self
            .levels
            .get(k - 1)
            .map(|l| l.iter().map(|(s, &c)| (s.clone(), c)).collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Total number of frequent itemsets across levels.
    pub fn total_frequent(&self) -> usize {
        self.levels.iter().map(FastMap::len).sum()
    }
}

/// Mine frequent itemsets up to size `max_k` at the given absolute
/// support threshold. Transactions must contain sorted, deduplicated
/// item ids (asserted in debug builds).
pub fn mine_apriori(transactions: &[Vec<u32>], threshold: u64, max_k: usize) -> AprioriResult {
    debug_assert!(transactions
        .iter()
        .all(|t| t.windows(2).all(|w| w[0] < w[1])));
    let mut result = AprioriResult {
        levels: Vec::new(),
        n_transactions: transactions.len(),
    };
    if max_k == 0 {
        return result;
    }

    // L1: plain counting.
    let mut counts: FastMap<ItemSet, u64> = FastMap::default();
    for t in transactions {
        for &item in t {
            *counts.entry(vec![item]).or_insert(0) += 1;
        }
    }
    counts.retain(|_, c| *c >= threshold);
    result.levels.push(counts);

    for k in 2..=max_k {
        let prev = &result.levels[k - 2];
        if prev.is_empty() {
            break;
        }
        let candidates = generate_candidates(prev, k);
        if candidates.is_empty() {
            break;
        }
        // Counting pass: enumerate each transaction's k-subsets of
        // frequent-ish items and probe the candidate table.
        let mut counts: FastMap<ItemSet, u64> = FastMap::default();
        let singleton_frequent = &result.levels[0];
        let mut buf: Vec<u32> = Vec::new();
        for t in transactions {
            // Restrict to items that are themselves frequent — any
            // subset containing an infrequent item cannot be a candidate.
            buf.clear();
            buf.extend(
                t.iter()
                    .copied()
                    .filter(|&i| singleton_frequent.contains_key(&vec![i][..] as &[u32])),
            );
            if buf.len() < k {
                continue;
            }
            for subset in KSubsets::new(&buf, k) {
                if candidates.contains(&subset) {
                    *counts.entry(subset).or_insert(0) += 1;
                }
            }
        }
        counts.retain(|_, c| *c >= threshold);
        let done = counts.is_empty();
        result.levels.push(counts);
        if done {
            break;
        }
    }
    result
}

/// Candidate generation: join L_{k-1} with itself on a shared (k−2)
/// prefix, then prune candidates with any infrequent (k−1)-subset.
fn generate_candidates(prev: &FastMap<ItemSet, u64>, k: usize) -> qf_storage::FastSet<ItemSet> {
    let mut sorted: Vec<&ItemSet> = prev.keys().collect();
    sorted.sort();
    let mut candidates = qf_storage::FastSet::default();
    for (i, a) in sorted.iter().enumerate() {
        for b in &sorted[i + 1..] {
            if a[..k - 2] != b[..k - 2] {
                break; // sorted order: prefixes only diverge forward.
            }
            let mut cand: ItemSet = (*a).clone();
            cand.push(*b.last().unwrap());
            debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
            // Subset prune: every (k-1)-subset must be frequent.
            let all_frequent = (0..cand.len()).all(|drop| {
                let mut sub = cand.clone();
                sub.remove(drop);
                prev.contains_key(&sub)
            });
            if all_frequent {
                candidates.insert(cand);
            }
        }
    }
    candidates
}

/// Iterator over the k-subsets of a sorted slice, in lexicographic order.
struct KSubsets<'a> {
    items: &'a [u32],
    indices: Vec<usize>,
    done: bool,
}

impl<'a> KSubsets<'a> {
    fn new(items: &'a [u32], k: usize) -> KSubsets<'a> {
        KSubsets {
            items,
            indices: (0..k).collect(),
            done: k > items.len() || k == 0,
        }
    }
}

impl Iterator for KSubsets<'_> {
    type Item = ItemSet;

    fn next(&mut self) -> Option<ItemSet> {
        if self.done {
            return None;
        }
        let out: ItemSet = self.indices.iter().map(|&i| self.items[i]).collect();
        // Advance (standard combination increment).
        let k = self.indices.len();
        let n = self.items.len();
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txns() -> Vec<Vec<u32>> {
        // Classic toy: {1,2,3} appears 3×, {1,2} 4×, singles extra.
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 4],
            vec![2, 4],
            vec![3],
        ]
    }

    #[test]
    fn level_one_counts() {
        let r = mine_apriori(&txns(), 2, 1);
        assert_eq!(r.support(&[1]), Some(5));
        assert_eq!(r.support(&[2]), Some(5));
        assert_eq!(r.support(&[3]), Some(4));
        assert_eq!(r.support(&[4]), Some(2));
    }

    #[test]
    fn level_two_and_three() {
        let r = mine_apriori(&txns(), 3, 3);
        assert_eq!(r.support(&[1, 2]), Some(4));
        assert_eq!(r.support(&[1, 3]), Some(3));
        assert_eq!(r.support(&[2, 3]), Some(3));
        assert_eq!(r.support(&[1, 2, 3]), Some(3));
        assert_eq!(r.support(&[1, 4]), None); // support 1 < 3
    }

    #[test]
    fn threshold_prunes() {
        let r = mine_apriori(&txns(), 4, 3);
        assert_eq!(r.support(&[1, 2]), Some(4));
        assert_eq!(r.support(&[1, 3]), None);
        assert!(r.frequent_k(3).is_empty());
    }

    #[test]
    fn subset_pruning_matches_brute_force() {
        // Brute force over all k-subsets vs a-priori, random-ish data.
        let txns: Vec<Vec<u32>> = (0..60u32)
            .map(|i| {
                let mut t: Vec<u32> = (0..8).filter(|&j| (i * 7 + j * 3) % 4 != 0).collect();
                t.dedup();
                t
            })
            .collect();
        let threshold = 12;
        let r = mine_apriori(&txns, threshold, 3);
        for k in 1..=3 {
            let mut brute: Vec<(ItemSet, u64)> = Vec::new();
            for subset in KSubsets::new(&(0..8).collect::<Vec<u32>>(), k) {
                let c = txns
                    .iter()
                    .filter(|t| subset.iter().all(|i| t.contains(i)))
                    .count() as u64;
                if c >= threshold {
                    brute.push((subset, c));
                }
            }
            brute.sort();
            assert_eq!(r.frequent_k(k), brute, "level {k}");
        }
    }

    #[test]
    fn ksubsets_enumerates_combinations() {
        let items = vec![1, 2, 3, 4];
        let subs: Vec<ItemSet> = KSubsets::new(&items, 2).collect();
        assert_eq!(
            subs,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
        assert_eq!(KSubsets::new(&items, 5).count(), 0);
        assert_eq!(KSubsets::new(&items, 4).count(), 1);
    }

    #[test]
    fn empty_inputs() {
        let r = mine_apriori(&[], 1, 3);
        assert_eq!(r.total_frequent(), 0);
        let r = mine_apriori(&txns(), 2, 0);
        assert_eq!(r.levels.len(), 0);
    }

    #[test]
    fn stops_when_level_empties() {
        let r = mine_apriori(&txns(), 3, 10);
        // Level 4 can't exist; ensure we didn't loop forever and levels
        // list is short.
        assert!(r.levels.len() <= 4);
    }
}
