//! Levelwise itemset mining as a sequence of query flocks.
//!
//! §4.3, option 2: "This approach would yield the a-priori method for
//! sets of more than two items. In that case, we compute candidate sets
//! of k items by restricting to those itemsets such that each subset of
//! k−1 items previously has met the support test." And §2's footnote:
//! finding itemsets of growing cardinality "would be expressed as a
//! sequence of query flocks … with each flock depending on the result
//! of the previous flock."
//!
//! Level `k`'s flock (parameters `$a`, `$b`, … in lexicographic chains):
//!
//! ```text
//! answer(B) :- baskets(B,$a) AND … AND baskets(B,$k)
//!          AND $a < $b AND …
//!          AND freqK-1($a,…)        -- one per (k−1)-subset, exploiting
//!          AND freqK-1($b,…)        -- parameter symmetry (footnote 3)
//! FILTER: COUNT(answer.B) >= s
//! ```
//!
//! The per-subset reuse of the *same* previous-level relation under
//! permuted parameters is the symmetry the paper's footnote 3 notes is
//! special to a-priori; it falls outside the literal §4.2 plan rule, so
//! this module builds the sequence of flocks directly rather than as a
//! single `QueryPlan`.

use qf_core::{
    evaluate_direct_with, ExecContext, FlockError, JoinOrderStrategy, QueryFlock, Result,
};
use qf_datalog::{Atom, Comparison, ConjunctiveQuery, Literal, Term, UnionQuery};
use qf_storage::{CmpOp, Database, Relation, Schema};

/// Parameter names for levelwise flocks: single letters keep the
/// lexicographic parameter order aligned with the itemset order.
const PARAM_NAMES: [&str; 9] = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];

/// Frequent-itemset relation name for level `k`.
pub fn level_relation_name(k: usize) -> String {
    format!("freq{k}")
}

/// Mine frequent itemsets levelwise, as a sequence of query flocks over
/// `baskets(BID, Item)` in `db`. Returns one relation per level `k`
/// (columns `a..`, one per item of the set), stopping early when a
/// level is empty. `max_k` is capped at 9.
pub fn mine_flockwise(db: &Database, threshold: i64, max_k: usize) -> Result<Vec<Relation>> {
    mine_flockwise_with(db, threshold, max_k, &ExecContext::unbounded())
}

/// [`mine_flockwise`] under an execution governor: every level's flock
/// shares `ctx`'s budgets, so the whole levelwise sequence — not each
/// level separately — is bounded. A tripped budget aborts with the
/// levels computed so far discarded; `db` itself is never mutated.
pub fn mine_flockwise_with(
    db: &Database,
    threshold: i64,
    max_k: usize,
    ctx: &ExecContext,
) -> Result<Vec<Relation>> {
    if max_k > PARAM_NAMES.len() {
        return Err(FlockError::IllegalPlan {
            detail: format!(
                "levelwise mining supports up to {} levels",
                PARAM_NAMES.len()
            ),
        });
    }
    let mut working = db.clone();
    let mut levels = Vec::new();
    for k in 1..=max_k {
        let flock = level_flock(k, threshold, &levels)?;
        let result = evaluate_direct_with(&flock, &working, JoinOrderStrategy::Greedy, ctx)?;
        let named = Relation::from_sorted_dedup(
            Schema::from_columns(
                level_relation_name(k),
                (0..k).map(|i| PARAM_NAMES[i].to_string()).collect(),
            ),
            result.tuples().to_vec(),
        );
        let empty = named.is_empty();
        working.insert(named.clone());
        levels.push(named);
        if empty {
            levels.pop();
            break;
        }
    }
    Ok(levels)
}

/// Build the level-`k` flock, adding `freq(k-1)` subgoals for every
/// (k−1)-subset of the parameters when a previous level exists.
fn level_flock(k: usize, threshold: i64, levels: &[Relation]) -> Result<QueryFlock> {
    let params: Vec<Term> = (0..k).map(|i| Term::param(PARAM_NAMES[i])).collect();
    let mut body: Vec<Literal> = Vec::new();
    for p in &params {
        body.push(Literal::Pos(Atom::new("baskets", vec![Term::var("B"), *p])));
    }
    for w in params.windows(2) {
        body.push(Literal::Cmp(Comparison::new(w[0], CmpOp::Lt, w[1])));
    }
    if k >= 2 && levels.len() >= k - 1 {
        let prev = level_relation_name(k - 1);
        for drop in 0..k {
            let args: Vec<Term> = (0..k).filter(|&i| i != drop).map(|i| params[i]).collect();
            body.push(Literal::Pos(Atom::new(&prev, args)));
        }
    }
    let head = Atom::new("answer", vec![Term::var("B")]);
    let query = UnionQuery::single(ConjunctiveQuery::new(head, body))?;
    QueryFlock::new(query, qf_core::FilterCondition::support(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine_apriori;
    use qf_storage::Value;

    fn db_from_transactions(txns: &[Vec<u32>]) -> Database {
        let mut rows = Vec::new();
        for (bid, t) in txns.iter().enumerate() {
            for &item in t {
                rows.push(vec![
                    Value::int(bid as i64),
                    Value::str(&format!("item{item:04}")),
                ]);
            }
        }
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        db
    }

    fn txns() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 4],
            vec![2, 4],
            vec![3],
        ]
    }

    /// Convert a flockwise level relation into sorted itemsets.
    fn level_sets(rel: &Relation) -> Vec<Vec<String>> {
        let mut v: Vec<Vec<String>> = rel
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn flockwise_matches_classic_apriori() {
        let txns = txns();
        let db = db_from_transactions(&txns);
        let flock_levels = mine_flockwise(&db, 3, 3).unwrap();
        let classic = mine_apriori(&txns, 3, 3);
        for (k, rel) in flock_levels.iter().enumerate() {
            let k = k + 1;
            let expected: Vec<Vec<String>> = classic
                .frequent_k(k)
                .into_iter()
                .map(|(set, _)| set.iter().map(|i| format!("item{i:04}")).collect())
                .collect();
            assert_eq!(level_sets(rel), expected, "level {k}");
        }
        assert_eq!(flock_levels.len(), 3); // {1,2,3} is frequent at 3.
    }

    #[test]
    fn flockwise_matches_apriori_on_generated_data() {
        let data = qf_datagen::baskets::generate(&qf_datagen::BasketConfig {
            n_baskets: 300,
            avg_basket_size: 6,
            n_items: 60,
            n_patterns: 8,
            avg_pattern_size: 3,
            pattern_prob: 0.8,
            seed: 11,
        });
        let txns: Vec<Vec<u32>> = data
            .transactions
            .iter()
            .map(|t| t.iter().map(|&i| i as u32).collect())
            .collect();
        let db = {
            let mut db = Database::new();
            db.insert(data.baskets.clone());
            db
        };
        let threshold = 20;
        let flock_levels = mine_flockwise(&db, threshold, 3).unwrap();
        let classic = mine_apriori(&txns, threshold as u64, 3);
        for (k, rel) in flock_levels.iter().enumerate() {
            let k = k + 1;
            assert_eq!(
                rel.len(),
                classic.frequent_k(k).len(),
                "level {k} cardinality"
            );
        }
    }

    #[test]
    fn stops_at_empty_level() {
        let db = db_from_transactions(&txns());
        let levels = mine_flockwise(&db, 4, 5).unwrap();
        // At threshold 4 only {1},{2},{3} and {1,2} are frequent.
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 3);
        assert_eq!(levels[1].len(), 1);
    }

    #[test]
    fn max_k_capped() {
        let db = db_from_transactions(&txns());
        assert!(mine_flockwise(&db, 1, 10).is_err());
    }

    #[test]
    fn level_flock_shape() {
        let f = level_flock(2, 20, &[]).unwrap();
        let text = f.query().to_string();
        assert_eq!(
            text,
            "answer(B) :- baskets(B,$a) AND baskets(B,$b) AND $a < $b"
        );
    }
}
