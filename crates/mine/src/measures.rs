//! The three association measures of §1.1.
//!
//! * **Support** — "the items must appear in many baskets."
//! * **Confidence** — "the probability of one item given that the
//!   others are in the basket must be high."
//! * **Interest** — "that probability must be significantly higher or
//!   lower than the expected probability if items were purchased at
//!   random."

/// Support as a fraction of all transactions.
pub fn support_fraction(count: u64, n_transactions: usize) -> f64 {
    if n_transactions == 0 {
        0.0
    } else {
        count as f64 / n_transactions as f64
    }
}

/// Confidence of the rule `antecedent → consequent`:
/// `supp(antecedent ∪ consequent) / supp(antecedent)`.
pub fn confidence(union_count: u64, antecedent_count: u64) -> f64 {
    if antecedent_count == 0 {
        0.0
    } else {
        union_count as f64 / antecedent_count as f64
    }
}

/// Interest (lift) of `antecedent → consequent`:
/// `confidence / P(consequent)`. A value near 1 means the rule is no
/// better than chance ("whether people who buy beer are especially
/// likely to buy diapers, or whether they buy diapers just because
/// everybody buys diapers"); far from 1 in either direction is
/// interesting.
pub fn interest(
    union_count: u64,
    antecedent_count: u64,
    consequent_count: u64,
    n_transactions: usize,
) -> f64 {
    let conf = confidence(union_count, antecedent_count);
    let p_consequent = support_fraction(consequent_count, n_transactions);
    if p_consequent == 0.0 {
        0.0
    } else {
        conf / p_consequent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_basic() {
        assert!((support_fraction(20, 100) - 0.2).abs() < 1e-12);
        assert_eq!(support_fraction(5, 0), 0.0);
    }

    #[test]
    fn confidence_basic() {
        assert!((confidence(30, 60) - 0.5).abs() < 1e-12);
        assert_eq!(confidence(30, 0), 0.0);
    }

    #[test]
    fn interest_detects_independence() {
        // 100 txns; antecedent in 50, consequent in 40, union in 20:
        // conf = 0.4, P(consequent) = 0.4 → interest 1 (independent).
        let i = interest(20, 50, 40, 100);
        assert!((i - 1.0).abs() < 1e-12);
        // Strong positive association.
        let i = interest(40, 50, 40, 100);
        assert!(i > 1.9);
        // Strong negative association.
        let i = interest(1, 50, 40, 100);
        assert!(i < 0.1);
    }
}
