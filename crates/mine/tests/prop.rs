//! Property tests for the mining algorithms: the a-priori monotonicity
//! law, agreement between the flock sequence and the classic miner, and
//! maximality invariants.

use proptest::prelude::*;

use qf_mine::{generate_rules, maximal_itemsets, mine_apriori, mine_flockwise};
use qf_storage::{Database, Relation, Schema, Value};

fn txns_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::btree_set(0u32..10, 0..6), 0..60)
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

fn db_of(txns: &[Vec<u32>]) -> Database {
    let mut rows = Vec::new();
    for (bid, t) in txns.iter().enumerate() {
        for &i in t {
            rows.push(vec![
                Value::int(bid as i64),
                Value::str(&format!("item{i:04}")),
            ]);
        }
    }
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows,
    ));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The a-priori law: every subset of a frequent itemset is frequent,
    /// with support at least as large.
    #[test]
    fn apriori_monotonicity(txns in txns_strategy(), threshold in 1u64..6) {
        let r = mine_apriori(&txns, threshold, 4);
        for k in 2..=r.levels.len() {
            for (set, &count) in &r.levels[k - 1] {
                for drop in 0..set.len() {
                    let mut sub = set.clone();
                    sub.remove(drop);
                    let sub_count = r.support(&sub);
                    prop_assert!(
                        sub_count.is_some_and(|c| c >= count),
                        "{sub:?} ⊂ {set:?} but support {sub_count:?} < {count}"
                    );
                }
            }
        }
    }

    /// Support counts are exact (checked against direct counting).
    #[test]
    fn supports_exact(txns in txns_strategy(), threshold in 1u64..5) {
        let r = mine_apriori(&txns, threshold, 3);
        for level in &r.levels {
            for (set, &count) in level {
                let actual = txns
                    .iter()
                    .filter(|t| set.iter().all(|i| t.contains(i)))
                    .count() as u64;
                prop_assert_eq!(actual, count, "{:?}", set);
            }
        }
    }

    /// The flock sequence finds exactly the classic miner's itemsets.
    #[test]
    fn flockwise_equals_classic(txns in txns_strategy(), threshold in 1i64..5) {
        let db = db_of(&txns);
        let levels = mine_flockwise(&db, threshold, 3).unwrap();
        let classic = mine_apriori(&txns, threshold as u64, 3);
        for (k, rel) in levels.iter().enumerate() {
            let k = k + 1;
            let mut got: Vec<Vec<String>> = rel
                .iter()
                .map(|t| t.values().iter().map(|v| v.to_string()).collect())
                .collect();
            got.sort();
            let want: Vec<Vec<String>> = classic
                .frequent_k(k)
                .into_iter()
                .map(|(set, _)| set.iter().map(|i| format!("item{i:04}")).collect())
                .collect();
            prop_assert_eq!(got, want, "level {}", k);
        }
    }

    /// Maximal itemsets form an antichain covering all frequent sets.
    #[test]
    fn maximal_antichain(txns in txns_strategy(), threshold in 1u64..5) {
        let r = mine_apriori(&txns, threshold, 4);
        let maximal = maximal_itemsets(&r);
        let is_subset = |a: &[u32], b: &[u32]| a.iter().all(|x| b.contains(x));
        for (i, a) in maximal.iter().enumerate() {
            for (j, b) in maximal.iter().enumerate() {
                if i != j {
                    prop_assert!(!is_subset(a, b));
                }
            }
        }
        for level in &r.levels {
            for set in level.keys() {
                prop_assert!(maximal.iter().any(|m| is_subset(set, m)));
            }
        }
    }

    /// Rule measures are internally consistent: confidence ∈ (0,1],
    /// support ≤ antecedent's support fraction, interest ≥ 0.
    #[test]
    fn rule_measures_consistent(txns in txns_strategy(), threshold in 1u64..5) {
        let r = mine_apriori(&txns, threshold, 3);
        for rule in generate_rules(&r, 0.0) {
            prop_assert!(rule.confidence > 0.0 && rule.confidence <= 1.0);
            prop_assert!(rule.support > 0.0 && rule.support <= 1.0);
            prop_assert!(rule.interest >= 0.0);
            // support fraction = count / n.
            prop_assert!(
                (rule.support - rule.support_count as f64 / r.n_transactions as f64).abs()
                    < 1e-12
            );
        }
    }
}
