//! A blocking client for the framed protocol — used by `qfsh client`
//! and the integration tests.

use std::net::TcpStream;

use crate::error::{Result, ServerError};
use crate::frame::{read_frame, write_frame};
use crate::protocol::{Request, RequestLimits, Response};

/// One connection to a `qf-server`. Requests are strictly sequential
/// per connection (the protocol has no request IDs); open more
/// connections for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server address like `127.0.0.1:7447`.
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        Ok(Client { stream })
    }

    /// Send one request and read its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, req.render().as_bytes())
            .map_err(|e| ServerError::Io(e.to_string()))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ServerError::Io(e.to_string()))?
            .ok_or_else(|| ServerError::Io("server closed the connection".to_string()))?;
        let text = String::from_utf8(payload)
            .map_err(|_| ServerError::Proto("response payload is not UTF-8".to_string()))?;
        Response::parse(&text)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response> {
        self.request(&Request::Ping)
    }

    /// Generate a demo workload in the server catalog.
    pub fn gen(&mut self, kind: &str, seed: u64) -> Result<Response> {
        self.request(&Request::Gen {
            kind: kind.to_string(),
            seed,
        })
    }

    /// Load a relation from TSV text.
    pub fn load(&mut self, tsv: &str) -> Result<Response> {
        self.request(&Request::Load {
            tsv: tsv.to_string(),
        })
    }

    /// Evaluate a flock program.
    pub fn flock(
        &mut self,
        text: &str,
        support: Option<i64>,
        limits: RequestLimits,
    ) -> Result<Response> {
        self.request(&Request::Flock {
            text: text.to_string(),
            support,
            limits,
        })
    }

    /// Canonicalize + fingerprint a flock program.
    pub fn fingerprint(&mut self, text: &str) -> Result<Response> {
        self.request(&Request::Fingerprint {
            text: text.to_string(),
        })
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<Response> {
        self.request(&Request::Stats)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Response> {
        self.request(&Request::Shutdown)
    }
}
