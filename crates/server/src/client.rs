//! A blocking, optionally *retrying* client for the framed protocol —
//! used by `qfsh client` and the integration tests.
//!
//! The retry policy is deliberately conservative about what it replays:
//!
//! * **Typed retryable responses** (`overloaded`, `timeout`, `proto`,
//!   `shard-lost`, `shutting-down` — see
//!   [`ServerError::retryable_kind`]) certify the request did not
//!   execute (or is safe to repeat), so they are retried for *any*
//!   request, including mutations. `overloaded` and `shutting-down`
//!   rejections carry a `retry-after-ms` hint, honored by sleeping the
//!   longer of the hint and our own backoff.
//! * **Transport failures** (reset, timeout, corrupt frame) after the
//!   request may have reached the server are ambiguous: they are
//!   retried only for idempotent requests ([`Request::is_idempotent`]).
//!   Replaying a `load`/`gen`/`append`/`retract` after an ambiguous failure
//!   could double-apply it, so the error surfaces instead.
//!
//! Backoff is bounded exponential with deterministic jitter (splitmix64
//! over the attempt counter — no `rand` dependency), and every
//! reconnect goes through a pluggable transport factory so the chaos
//! tests can interpose [`crate::transport::NetChaos`] on each attempt.

use std::net::TcpStream;
use std::time::Duration;

use crate::error::{Result, ServerError};
use crate::frame::{is_corruption, read_frame, write_frame};
use crate::protocol::{Request, RequestLimits, Response};
use crate::transport::{splitmix64, Transport};

/// Client-side robustness knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read/write stall bound on an established connection.
    /// `None` = block forever (only sensible for interactive use).
    pub io_timeout: Option<Duration>,
    /// Retry attempts *after* the first try (0 = fail fast).
    pub retries: u32,
    /// Base backoff delay; attempt `k` sleeps about `base * 2^k` plus
    /// jitter, capped at [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Ceiling on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream (tests pin it).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Counters a retrying session accumulates, for the client-side report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Requests retried (each extra attempt counts once).
    pub retries: u64,
    /// Reconnects performed (failed transport replaced).
    pub reconnects: u64,
}

/// Builds a fresh transport per (re)connect. The default dials TCP;
/// chaos tests substitute a factory that wraps each socket in a
/// [`crate::transport::ChaosNet`] drawing from one shared fault stream.
pub type TransportFactory = Box<dyn FnMut() -> Result<Box<dyn Transport>> + Send>;

/// One logical session with a `qf-server`. Requests are strictly
/// sequential (the protocol has no request IDs); open more clients for
/// concurrency. The underlying connection may be torn down and redialed
/// transparently between attempts.
pub struct Client {
    factory: TransportFactory,
    conn: Option<Box<dyn Transport>>,
    config: ClientConfig,
    stats: ClientStats,
}

fn dial(addr: &str, config: &ClientConfig) -> Result<Box<dyn Transport>> {
    // connect_timeout needs a resolved SocketAddr; fall back to the
    // plain blocking connect if resolution yields nothing.
    let io = |e: std::io::Error| ServerError::Io(e.to_string());
    let mut addrs = std::net::ToSocketAddrs::to_socket_addrs(addr).map_err(io)?;
    let first = addrs
        .next()
        .ok_or_else(|| ServerError::Io(format!("address `{addr}` resolved to nothing")))?;
    let stream = TcpStream::connect_timeout(&first, config.connect_timeout).map_err(io)?;
    let mut t: Box<dyn Transport> = Box::new(stream);
    t.set_read_timeout(config.io_timeout).map_err(io)?;
    t.set_write_timeout(config.io_timeout).map_err(io)?;
    Ok(t)
}

impl Client {
    /// Connect to a server address like `127.0.0.1:7447` with default
    /// (non-retrying) behavior.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit robustness knobs.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Client> {
        let addr = addr.to_string();
        let factory_config = config.clone();
        Client::connect_via(Box::new(move || dial(&addr, &factory_config)), config)
    }

    /// Connect through a custom transport factory (chaos tests, in-proc
    /// loopbacks). The factory is invoked once immediately and again on
    /// every reconnect.
    pub fn connect_via(mut factory: TransportFactory, config: ClientConfig) -> Result<Client> {
        let conn = factory()?;
        Ok(Client {
            factory,
            conn: Some(conn),
            config,
            stats: ClientStats::default(),
        })
    }

    /// Retry/reconnect counters accumulated by this session (the
    /// client-side half of the robustness report; server-side counters
    /// come from [`Client::stats`]).
    pub fn session_stats(&self) -> ClientStats {
        self.stats
    }

    /// Send one request and read its response, retrying per the
    /// configured policy. Typed error *responses* come back as
    /// `Ok(Response::Err{..})` once retries are exhausted (or
    /// immediately when not retryable); transport-level failures come
    /// back as `Err`.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = self.try_once(req);
            let retryable = match &outcome {
                Ok(Response::Err { kind, .. }) => ServerError::retryable_kind(kind),
                Ok(Response::Ok { .. }) => false,
                // Ambiguous transport failure: the server may or may
                // not have executed the request. Only idempotent
                // requests are safe to replay.
                Err(Attempt::Ambiguous(_)) => req.is_idempotent(),
                // The request never left this process: safe for all.
                Err(Attempt::Unsent(_)) => true,
            };
            let failed_transport = outcome.is_err();
            if !retryable || attempt >= self.config.retries {
                return match outcome {
                    Ok(resp) => Ok(resp),
                    Err(Attempt::Ambiguous(e)) | Err(Attempt::Unsent(e)) => Err(e),
                };
            }
            attempt += 1;
            self.stats.retries += 1;
            let server_dropped_us =
                matches!(&outcome, Ok(Response::Err { kind, .. }) if kind == "proto");
            if failed_transport || server_dropped_us {
                // The connection is suspect (transport failure), or the
                // server closed it after detecting frame corruption (it
                // always drops a desynced stream after a `proto`
                // response): redial on the next try.
                self.conn = None;
            }
            // An overloaded server says how long it wants us to stay
            // away (`retry-after-ms=…` in the typed detail). Honor it:
            // sleep the *longer* of the hint and our own backoff —
            // retrying sooner than asked just feeds the overload.
            let backoff = self.backoff(attempt);
            let hinted = match &outcome {
                Ok(Response::Err { detail, .. }) => {
                    retry_after_hint(detail).map_or(backoff, |hint| hint.max(backoff))
                }
                _ => backoff,
            };
            std::thread::sleep(hinted);
        }
    }

    /// Bounded exponential backoff with deterministic jitter: attempt
    /// `k` sleeps `base * 2^(k-1)` plus up to 50% jitter, capped.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(16));
        let jitter = splitmix64(self.config.jitter_seed ^ u64::from(attempt)) % (exp / 2 + 1);
        Duration::from_millis(exp + jitter).min(self.config.backoff_cap)
    }

    /// One attempt over the current (or freshly dialed) connection.
    fn try_once(&mut self, req: &Request) -> std::result::Result<Response, Attempt> {
        let conn = match &mut self.conn {
            Some(c) => c,
            None => {
                self.stats.reconnects += 1;
                let fresh = (self.factory)().map_err(Attempt::Unsent)?;
                self.conn.insert(fresh)
            }
        };
        if let Err(e) = write_frame(conn, req.render().as_bytes()) {
            // A failed write *may* still have delivered bytes the
            // server acted on (short write + reset after the frame
            // completed is indistinguishable from before): ambiguous.
            return Err(Attempt::Ambiguous(ServerError::Io(e.to_string())));
        }
        let payload = match read_frame(conn) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return Err(Attempt::Ambiguous(ServerError::Io(
                    "server closed the connection".to_string(),
                )))
            }
            Err(e) if is_corruption(&e) => {
                // The *response* frame was mangled in flight. The server
                // executed the request; whether a replay is safe depends
                // on idempotency, exactly the ambiguous case.
                return Err(Attempt::Ambiguous(ServerError::Proto(e.to_string())));
            }
            Err(e) => return Err(Attempt::Ambiguous(ServerError::Io(e.to_string()))),
        };
        let text = String::from_utf8(payload).map_err(|_| {
            Attempt::Ambiguous(ServerError::Proto(
                "response payload is not UTF-8".to_string(),
            ))
        })?;
        Response::parse(&text).map_err(Attempt::Ambiguous)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response> {
        self.request(&Request::Ping)
    }

    /// Generate a demo workload in the server catalog.
    pub fn gen(&mut self, kind: &str, seed: u64) -> Result<Response> {
        self.request(&Request::Gen {
            kind: kind.to_string(),
            seed,
        })
    }

    /// Load a relation from TSV text.
    pub fn load(&mut self, tsv: &str) -> Result<Response> {
        self.request(&Request::Load {
            tsv: tsv.to_string(),
        })
    }

    /// Stream a TSV delta into relation `rel` (set-semantics union).
    /// Like `load`/`gen` this is **not** idempotent under the retry
    /// policy: only typed responses certifying non-execution are
    /// replayed, never ambiguous transport failures.
    pub fn append(&mut self, rel: &str, tsv: &str) -> Result<Response> {
        self.request(&Request::Append {
            rel: rel.to_string(),
            tsv: tsv.to_string(),
            frag: None,
        })
    }

    /// Stream a TSV delta into relation `rel` inside a worker-held
    /// fragment (coordinator use). `fp` is the expected post-delta
    /// fragment fingerprint; the worker answers a typed `no-frag` on
    /// mismatch so the coordinator falls back to a full re-sync.
    pub fn append_frag(&mut self, rel: &str, tsv: &str, frag: usize, fp: u64) -> Result<Response> {
        self.request(&Request::Append {
            rel: rel.to_string(),
            tsv: tsv.to_string(),
            frag: Some((frag, fp)),
        })
    }

    /// Retract a TSV delta from relation `rel` (set-semantics
    /// difference; absent tuples are ignored). Like `append` this is
    /// **not** idempotent under the retry policy: only typed responses
    /// certifying non-execution are replayed, never ambiguous transport
    /// failures.
    pub fn retract(&mut self, rel: &str, tsv: &str) -> Result<Response> {
        self.request(&Request::Retract {
            rel: rel.to_string(),
            tsv: tsv.to_string(),
            frag: None,
        })
    }

    /// Retract a TSV delta from relation `rel` inside a worker-held
    /// fragment (coordinator use), mirroring [`Client::append_frag`].
    pub fn retract_frag(&mut self, rel: &str, tsv: &str, frag: usize, fp: u64) -> Result<Response> {
        self.request(&Request::Retract {
            rel: rel.to_string(),
            tsv: tsv.to_string(),
            frag: Some((frag, fp)),
        })
    }

    /// Evaluate a flock program.
    pub fn flock(
        &mut self,
        text: &str,
        support: Option<i64>,
        limits: RequestLimits,
    ) -> Result<Response> {
        self.request(&Request::Flock {
            text: text.to_string(),
            support,
            limits,
        })
    }

    /// Evaluate one scatter-gather step against this shard's fragment
    /// (coordinator use). `frag` scopes the evaluation to a synced
    /// replica fragment `(id, expected fingerprint)`; `None` evaluates
    /// against the worker's whole catalog.
    pub fn partial(
        &mut self,
        text: &str,
        scratch: Vec<String>,
        frag: Option<(usize, u64)>,
        limits: RequestLimits,
    ) -> Result<Response> {
        self.request(&Request::Partial {
            text: text.to_string(),
            scratch,
            limits,
            frag,
        })
    }

    /// Ship one catalog fragment to a replica worker (coordinator and
    /// probe use). The worker verifies `fp` before installing.
    pub fn sync(&mut self, frag: usize, fp: u64, relations: Vec<String>) -> Result<Response> {
        self.request(&Request::Sync {
            frag,
            fp,
            relations,
        })
    }

    /// Canonicalize + fingerprint a flock program.
    pub fn fingerprint(&mut self, text: &str) -> Result<Response> {
        self.request(&Request::Fingerprint {
            text: text.to_string(),
        })
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<Response> {
        self.request(&Request::Stats)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Response> {
        self.request(&Request::Shutdown)
    }
}

/// Why an attempt failed, split by what it implies for retry safety.
enum Attempt {
    /// The request may have reached (and run on) the server.
    Ambiguous(ServerError),
    /// The request never left this process (connect failure).
    Unsent(ServerError),
}

/// Extract the server's `retry-after-ms=N` backoff hint from a typed
/// error detail (shed connections carry one — see
/// [`ServerError::ConnRejected`]).
fn retry_after_hint(detail: &str) -> Option<Duration> {
    let rest = detail.split("retry-after-ms=").nth(1)?;
    let digits: &str = &rest[..rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(rest.len(), |(i, _)| i)];
    digits.parse::<u64>().ok().map(Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutting_down_hint_is_honored() {
        // A draining server sends the same retry-after hint a shed
        // connection does; the backoff path parses it from the detail.
        let detail = ServerError::ShuttingDown { retry_after_ms: 75 }.to_string();
        assert_eq!(retry_after_hint(&detail), Some(Duration::from_millis(75)));
        assert!(ServerError::retryable_kind("shutting-down"));
    }

    #[test]
    fn retry_after_hint_parses_typed_details() {
        let detail = ServerError::ConnRejected {
            live: 8,
            cap: 8,
            retry_after_ms: 350,
        }
        .to_string();
        assert_eq!(
            retry_after_hint(&detail),
            Some(Duration::from_millis(350)),
            "hint not found in `{detail}`"
        );
        assert_eq!(retry_after_hint("no hint here"), None);
        assert_eq!(retry_after_hint("retry-after-ms=oops"), None);
        assert_eq!(
            retry_after_hint("… retry-after-ms=20, then more text"),
            Some(Duration::from_millis(20))
        );
    }
}
