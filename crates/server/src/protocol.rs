//! Request/response payloads inside the length-framed transport.
//!
//! A request payload is text: one header line (`<command> key=value …`),
//! then a blank line, then an optional body (flock text, TSV data).
//! A response payload is `ok` or `err <kind>` on the first line, a
//! one-line JSON meta object on the second, a blank line, and the body
//! (result TSV, message text, or error detail).

use crate::error::{Result, ServerError};

/// Per-request resource asks, mapped onto the execution governor by the
/// admission controller (and clamped to the server's per-request caps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestLimits {
    /// Cap on tuples materialized.
    pub max_rows: Option<u64>,
    /// Cap on estimated bytes materialized.
    pub mem_budget: Option<u64>,
    /// Wall-clock deadline, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Worker threads (clamped to the fair share the server grants).
    pub threads: Option<usize>,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Generate a demo workload into the server catalog.
    Gen {
        /// Workload kind: `baskets|words|medical|web|graph`.
        kind: String,
        /// Generator seed.
        seed: u64,
    },
    /// Load a relation from TSV text (header line names it).
    Load {
        /// Full TSV content including the header line.
        tsv: String,
    },
    /// Stream a TSV delta into an existing relation (set-semantics
    /// union; the relation is created if absent). The header carries
    /// the target relation name redundantly with the TSV header line —
    /// the server cross-checks them, so a mis-framed body can never
    /// mutate the wrong relation.
    Append {
        /// Target relation name (must match the TSV header).
        rel: String,
        /// The delta as full TSV content including the header line.
        tsv: String,
        /// Fragment scope: `(frag index, expected post-delta fragment
        /// fingerprint)`. When set, the delta mutates the worker's
        /// fragment store instead of its master catalog; the worker
        /// verifies the resulting fragment fingerprint against the
        /// declared one and answers a typed `no-frag` on mismatch so a
        /// drifted replica is re-synced rather than silently diverging.
        frag: Option<(usize, u64)>,
    },
    /// Remove a TSV delta from an existing relation (set-semantics
    /// difference; tuples not present are ignored). Mirrors
    /// [`Request::Append`]: the header names the target relation
    /// redundantly with the TSV header line and the server cross-checks
    /// them, and the same optional fragment scope routes the delta to a
    /// worker-held fragment.
    Retract {
        /// Target relation name (must match the TSV header).
        rel: String,
        /// The delta as full TSV content including the header line.
        tsv: String,
        /// Fragment scope, as in [`Request::Append`].
        frag: Option<(usize, u64)>,
    },
    /// Evaluate a flock program.
    Flock {
        /// Program text (`[views…] QUERY: … FILTER: …`).
        text: String,
        /// Optional support-threshold override: replaces the filter's
        /// threshold, letting a client sweep thresholds over one body.
        support: Option<i64>,
        /// Per-request budgets.
        limits: RequestLimits,
    },
    /// Evaluate one scatter-gather `FILTER` step against this shard's
    /// catalog fragment and answer with the **scored** relation
    /// (`params… agg` TSV) instead of the thresholded flock result.
    /// The coordinator sends the step as an ordinary mini-flock program
    /// at a vacuous threshold, plus the step's already-merged upstream
    /// outputs as scratch relations (TSV, one per section).
    Partial {
        /// Mini-flock program text (`QUERY: … FILTER: <vacuous>`).
        text: String,
        /// Scratch relations as TSV text, inserted into a snapshot of
        /// the shard catalog before evaluation.
        scratch: Vec<String>,
        /// Per-request budgets (the coordinator forwards its remaining
        /// deadline and per-shard row/memory budgets here).
        limits: RequestLimits,
        /// Evaluate against a synced catalog **fragment** instead of
        /// the master catalog: `(fragment id, expected fragment
        /// fingerprint)`. A worker holding no such fragment — or a
        /// *stale* copy whose fingerprint disagrees — answers a typed
        /// `no-frag` error so the coordinator fails over to a replica
        /// rather than merging wrong bytes. `None` keeps the PR-7
        /// behavior (the worker's whole catalog is the fragment).
        frag: Option<(usize, u64)>,
    },
    /// Replace one catalog fragment on a replica worker: the body is
    /// the fragment's relations as byte-framed TSV sections (the same
    /// framing `partial` uses for scratch). The worker re-assembles the
    /// fragment, verifies its catalog fingerprint against `fp`, and
    /// only then installs it — a corrupted or torn ship can never be
    /// served. Idempotent: syncing the same fragment twice is a no-op.
    Sync {
        /// Fragment id (index into the coordinator's partition map).
        frag: usize,
        /// Expected content-based catalog fingerprint of the fragment.
        fp: u64,
        /// Fragment relations as TSV text, one per section.
        relations: Vec<String>,
    },
    /// Canonicalize a flock program and return its fingerprint.
    Fingerprint {
        /// Program text.
        text: String,
    },
    /// Server-wide counters.
    Stats,
    /// Graceful shutdown: drain in-flight work, reject new requests.
    Shutdown,
}

impl Request {
    /// Is this request safe to retry transparently after a failure that
    /// may or may not have reached the server? Reads (`ping`, `stats`,
    /// `fingerprint`, `flock`) and the idempotent `shutdown` flag are;
    /// catalog mutations (`load`, `gen`, `append`, `retract`) are **not** —
    /// replaying one after an ambiguous failure could double-apply it,
    /// so the retrying client surfaces the error instead (unless the
    /// server certified non-execution with a typed `proto`/`overloaded`
    /// response, which is safe for any request). `sync` *is* retryable:
    /// it replaces a fragment with fingerprint-verified content, so a
    /// replay lands the same bytes.
    pub fn is_idempotent(&self) -> bool {
        !matches!(
            self,
            Request::Load { .. }
                | Request::Gen { .. }
                | Request::Append { .. }
                | Request::Retract { .. }
        )
    }

    /// Render as a framed payload.
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "ping\n\n".to_string(),
            Request::Gen { kind, seed } => format!("gen kind={kind} seed={seed}\n\n"),
            Request::Load { tsv } => format!("load\n\n{tsv}"),
            Request::Append { rel, tsv, frag } => {
                let mut header = format!("append rel={rel}");
                if let Some((frag, fp)) = frag {
                    header.push_str(&format!(" frag={frag} frag-fp={fp}"));
                }
                format!("{header}\n\n{tsv}")
            }
            Request::Retract { rel, tsv, frag } => {
                let mut header = format!("retract rel={rel}");
                if let Some((frag, fp)) = frag {
                    header.push_str(&format!(" frag={frag} frag-fp={fp}"));
                }
                format!("{header}\n\n{tsv}")
            }
            Request::Flock {
                text,
                support,
                limits,
            } => {
                let mut header = "flock".to_string();
                if let Some(s) = support {
                    header.push_str(&format!(" support={s}"));
                }
                if let Some(r) = limits.max_rows {
                    header.push_str(&format!(" max-rows={r}"));
                }
                if let Some(b) = limits.mem_budget {
                    header.push_str(&format!(" mem-budget={b}"));
                }
                if let Some(t) = limits.timeout_ms {
                    header.push_str(&format!(" timeout={t}"));
                }
                if let Some(n) = limits.threads {
                    header.push_str(&format!(" threads={n}"));
                }
                format!("{header}\n\n{text}")
            }
            Request::Partial {
                text,
                scratch,
                limits,
                frag,
            } => {
                // Sections (program text, then each scratch TSV) are
                // byte-concatenated and framed by explicit lengths in
                // the header: TSV bodies may themselves contain blank
                // lines, so a separator convention cannot work.
                let mut header = "partial".to_string();
                let mut parts: Vec<String> = vec![text.len().to_string()];
                parts.extend(scratch.iter().map(|s| s.len().to_string()));
                header.push_str(&format!(" parts={}", parts.join(",")));
                if let Some((frag, fp)) = frag {
                    header.push_str(&format!(" frag={frag} frag-fp={fp}"));
                }
                if let Some(r) = limits.max_rows {
                    header.push_str(&format!(" max-rows={r}"));
                }
                if let Some(b) = limits.mem_budget {
                    header.push_str(&format!(" mem-budget={b}"));
                }
                if let Some(t) = limits.timeout_ms {
                    header.push_str(&format!(" timeout={t}"));
                }
                if let Some(n) = limits.threads {
                    header.push_str(&format!(" threads={n}"));
                }
                let mut body = text.clone();
                for s in scratch {
                    body.push_str(s);
                }
                format!("{header}\n\n{body}")
            }
            Request::Sync {
                frag,
                fp,
                relations,
            } => {
                let lens: Vec<String> = relations.iter().map(|s| s.len().to_string()).collect();
                let header = format!("sync frag={frag} fp={fp} parts={}", lens.join(","));
                let body: String = relations.concat();
                format!("{header}\n\n{body}")
            }
            Request::Fingerprint { text } => format!("fingerprint\n\n{text}"),
            Request::Stats => "stats\n\n".to_string(),
            Request::Shutdown => "shutdown\n\n".to_string(),
        }
    }

    /// Parse a framed payload.
    pub fn parse(payload: &str) -> Result<Request> {
        let (header, body) = split_payload(payload);
        let mut parts = header.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let kv = |parts: std::str::SplitWhitespace<'_>| -> Result<Vec<(String, String)>> {
            parts
                .map(|p| {
                    p.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .ok_or_else(|| ServerError::Proto(format!("expected key=value, got `{p}`")))
                })
                .collect()
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "load" => Ok(Request::Load {
                tsv: body.to_string(),
            }),
            "append" => {
                let mut rel = None;
                let mut frag_id: Option<usize> = None;
                let mut frag_fp: Option<u64> = None;
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "rel" => rel = Some(v),
                        "frag" => frag_id = Some(parse_u64(&v)? as usize),
                        "frag-fp" => frag_fp = Some(parse_u64(&v)?),
                        other => {
                            return Err(ServerError::Proto(format!("unknown append key `{other}`")))
                        }
                    }
                }
                Ok(Request::Append {
                    rel: rel.ok_or_else(|| ServerError::Proto("append needs rel=…".into()))?,
                    tsv: body.to_string(),
                    frag: frag_scope(frag_id, frag_fp, "append")?,
                })
            }
            "retract" => {
                let mut rel = None;
                let mut frag_id: Option<usize> = None;
                let mut frag_fp: Option<u64> = None;
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "rel" => rel = Some(v),
                        "frag" => frag_id = Some(parse_u64(&v)? as usize),
                        "frag-fp" => frag_fp = Some(parse_u64(&v)?),
                        other => {
                            return Err(ServerError::Proto(format!(
                                "unknown retract key `{other}`"
                            )))
                        }
                    }
                }
                Ok(Request::Retract {
                    rel: rel.ok_or_else(|| ServerError::Proto("retract needs rel=…".into()))?,
                    tsv: body.to_string(),
                    frag: frag_scope(frag_id, frag_fp, "retract")?,
                })
            }
            "fingerprint" => Ok(Request::Fingerprint {
                text: body.to_string(),
            }),
            "gen" => {
                let mut kind = None;
                let mut seed = 1u64;
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "kind" => kind = Some(v),
                        "seed" => seed = parse_u64(&v)?,
                        other => {
                            return Err(ServerError::Proto(format!("unknown gen key `{other}`")))
                        }
                    }
                }
                Ok(Request::Gen {
                    kind: kind.ok_or_else(|| ServerError::Proto("gen needs kind=…".into()))?,
                    seed,
                })
            }
            "flock" => {
                let mut support = None;
                let mut limits = RequestLimits::default();
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "support" => {
                            support =
                                Some(v.parse::<i64>().map_err(|_| {
                                    ServerError::Proto(format!("bad support `{v}`"))
                                })?)
                        }
                        "max-rows" => limits.max_rows = Some(parse_u64(&v)?),
                        "mem-budget" => limits.mem_budget = Some(parse_u64(&v)?),
                        "timeout" => limits.timeout_ms = Some(parse_u64(&v)?),
                        "threads" => limits.threads = Some(parse_u64(&v)? as usize),
                        other => {
                            return Err(ServerError::Proto(format!("unknown flock key `{other}`")))
                        }
                    }
                }
                Ok(Request::Flock {
                    text: body.to_string(),
                    support,
                    limits,
                })
            }
            "partial" => {
                let mut lens: Option<Vec<usize>> = None;
                let mut limits = RequestLimits::default();
                let mut frag_id: Option<usize> = None;
                let mut frag_fp: Option<u64> = None;
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "parts" => lens = Some(parse_lens(&v)?),
                        "frag" => frag_id = Some(parse_u64(&v)? as usize),
                        "frag-fp" => frag_fp = Some(parse_u64(&v)?),
                        "max-rows" => limits.max_rows = Some(parse_u64(&v)?),
                        "mem-budget" => limits.mem_budget = Some(parse_u64(&v)?),
                        "timeout" => limits.timeout_ms = Some(parse_u64(&v)?),
                        "threads" => limits.threads = Some(parse_u64(&v)? as usize),
                        other => {
                            return Err(ServerError::Proto(format!(
                                "unknown partial key `{other}`"
                            )))
                        }
                    }
                }
                let frag = frag_scope(frag_id, frag_fp, "partial")?;
                let lens =
                    lens.ok_or_else(|| ServerError::Proto("partial needs parts=…".into()))?;
                if lens.is_empty() {
                    return Err(ServerError::Proto("partial needs at least one part".into()));
                }
                let mut sections = split_sections(&lens, body)?;
                let text = sections.remove(0);
                Ok(Request::Partial {
                    text,
                    scratch: sections,
                    limits,
                    frag,
                })
            }
            "sync" => {
                let mut frag = None;
                let mut fp = None;
                let mut lens: Option<Vec<usize>> = None;
                for (k, v) in kv(parts)? {
                    match k.as_str() {
                        "frag" => frag = Some(parse_u64(&v)? as usize),
                        "fp" => fp = Some(parse_u64(&v)?),
                        "parts" => lens = Some(parse_lens(&v)?),
                        other => {
                            return Err(ServerError::Proto(format!("unknown sync key `{other}`")))
                        }
                    }
                }
                let lens = lens.ok_or_else(|| ServerError::Proto("sync needs parts=…".into()))?;
                Ok(Request::Sync {
                    frag: frag.ok_or_else(|| ServerError::Proto("sync needs frag=…".into()))?,
                    fp: fp.ok_or_else(|| ServerError::Proto("sync needs fp=…".into()))?,
                    relations: split_sections(&lens, body)?,
                })
            }
            other => Err(ServerError::Proto(format!("unknown command `{other}`"))),
        }
    }
}

/// A response: either `ok` with meta JSON + body, or a typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success.
    Ok {
        /// One-line JSON meta object (request accounting).
        meta: String,
        /// Body text (result TSV, message, …).
        body: String,
    },
    /// Typed failure.
    Err {
        /// Stable error kind token (see [`ServerError::kind`]).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Build the error response for a [`ServerError`].
    pub fn from_error(e: &ServerError) -> Response {
        Response::Err {
            kind: e.kind().to_string(),
            detail: e.to_string(),
        }
    }

    /// Render as a framed payload.
    pub fn render(&self) -> String {
        match self {
            Response::Ok { meta, body } => format!("ok\n{meta}\n\n{body}"),
            Response::Err { kind, detail } => format!("err {kind}\n{{}}\n\n{detail}"),
        }
    }

    /// Parse a framed payload (client side).
    pub fn parse(payload: &str) -> Result<Response> {
        let (status_meta, body) = split_payload(payload);
        let (status, meta) = match status_meta.split_once('\n') {
            Some((s, m)) => (s.trim_end(), m.trim()),
            None => (status_meta.trim_end(), "{}"),
        };
        if status == "ok" {
            Ok(Response::Ok {
                meta: meta.to_string(),
                body: body.to_string(),
            })
        } else if let Some(kind) = status.strip_prefix("err ") {
            Ok(Response::Err {
                kind: kind.trim().to_string(),
                detail: body.to_string(),
            })
        } else {
            Err(ServerError::Proto(format!(
                "bad response status line `{status}`"
            )))
        }
    }

    /// True for `ok` responses.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }
}

/// Split a payload at the first blank line into (header part, body).
fn split_payload(payload: &str) -> (&str, &str) {
    match payload.split_once("\n\n") {
        Some((h, b)) => (h, b),
        None => (payload.trim_end_matches('\n'), ""),
    }
}

fn parse_u64(v: &str) -> Result<u64> {
    v.parse()
        .map_err(|_| ServerError::Proto(format!("bad number `{v}`")))
}

/// Fold the optional `frag=`/`frag-fp=` pair into a fragment scope —
/// both keys or neither, so a half-specified scope fails typed instead
/// of silently mutating the wrong store.
fn frag_scope(
    frag_id: Option<usize>,
    frag_fp: Option<u64>,
    verb: &str,
) -> Result<Option<(usize, u64)>> {
    match (frag_id, frag_fp) {
        (Some(i), Some(fp)) => Ok(Some((i, fp))),
        (None, None) => Ok(None),
        _ => Err(ServerError::Proto(format!(
            "{verb} frag= and frag-fp= must appear together"
        ))),
    }
}

/// Parse a `parts=len,len,…` section-length list. An empty value is an
/// empty list — `sync` ships empty fragments (a hash partition can
/// leave a fragment with no relations at all) as `parts=` with no body.
fn parse_lens(v: &str) -> Result<Vec<usize>> {
    if v.is_empty() {
        return Ok(Vec::new());
    }
    v.split(',')
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| ServerError::Proto(format!("bad part length `{p}`")))
        })
        .collect()
}

/// Cut `body` into sections of the given byte lengths; the lengths must
/// cover the body exactly.
fn split_sections(lens: &[usize], body: &str) -> Result<Vec<String>> {
    let mut sections = Vec::with_capacity(lens.len());
    let mut at = 0usize;
    for len in lens {
        let end = at.checked_add(*len).filter(|&e| e <= body.len());
        let section = end.and_then(|e| body.get(at..e)).ok_or_else(|| {
            ServerError::Proto(format!("parts overrun the {}-byte body", body.len()))
        })?;
        sections.push(section.to_string());
        at += len;
    }
    if at != body.len() {
        return Err(ServerError::Proto(format!(
            "parts cover {at} of {} body bytes",
            body.len()
        )));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Gen {
                kind: "baskets".into(),
                seed: 7,
            },
            Request::Load {
                tsv: "r\ta\n1\n".into(),
            },
            Request::Append {
                rel: "r".into(),
                tsv: "r\ta\n2\n".into(),
                frag: None,
            },
            Request::Append {
                rel: "r".into(),
                tsv: "r\ta\n2\n".into(),
                frag: Some((1, 0xdead)),
            },
            Request::Retract {
                rel: "r".into(),
                tsv: "r\ta\n2\n".into(),
                frag: None,
            },
            Request::Retract {
                rel: "r".into(),
                tsv: "r\ta\n2\n".into(),
                frag: Some((0, 77)),
            },
            Request::Fingerprint {
                text: "QUERY: answer(B) :- r(B,$1) FILTER: COUNT(answer.B) >= 2".into(),
            },
            Request::Flock {
                text: "QUERY: answer(B) :- r(B,$1) FILTER: COUNT(answer.B) >= 2".into(),
                support: Some(5),
                limits: RequestLimits {
                    max_rows: Some(1000),
                    mem_budget: None,
                    timeout_ms: Some(250),
                    threads: Some(2),
                },
            },
        ];
        for req in reqs {
            let parsed = Request::parse(&req.render()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let ok = Response::Ok {
            meta: "{\"results\":1}".into(),
            body: "flock_result\tm\ts\nzorix\tache\n".into(),
        };
        assert_eq!(Response::parse(&ok.render()).unwrap(), ok);
        let err = Response::Err {
            kind: "overloaded".into(),
            detail: "server overloaded: 4 request(s) queued (capacity 4)".into(),
        };
        assert_eq!(Response::parse(&err.render()).unwrap(), err);
    }

    #[test]
    fn partial_roundtrip_with_blank_lines_in_scratch() {
        let req = Request::Partial {
            text: "QUERY: answer(B) :- r(B,$1) FILTER: COUNT(answer.B) >= -9\n".into(),
            scratch: vec![
                // Scratch TSVs may contain blank lines — byte framing
                // must carry them through untouched.
                "ok\tp\nbeer\n\nwine\n".into(),
                "aux\tq\n".into(),
            ],
            limits: RequestLimits {
                max_rows: Some(10),
                mem_budget: None,
                timeout_ms: Some(500),
                threads: None,
            },
            frag: None,
        };
        assert_eq!(Request::parse(&req.render()).unwrap(), req);
        assert!(req.is_idempotent());
        // No scratch at all is fine too.
        let bare = Request::Partial {
            text: "QUERY: …".into(),
            scratch: vec![],
            limits: RequestLimits::default(),
            frag: None,
        };
        assert_eq!(Request::parse(&bare.render()).unwrap(), bare);
        // Fragment-scoped partial carries (id, expected fingerprint).
        let scoped = Request::Partial {
            text: "QUERY: …".into(),
            scratch: vec!["aux\tq\n".into()],
            limits: RequestLimits::default(),
            frag: Some((3, 0xdead_beef_u64)),
        };
        assert_eq!(Request::parse(&scoped.render()).unwrap(), scoped);
    }

    #[test]
    fn sync_roundtrip() {
        let req = Request::Sync {
            frag: 1,
            fp: 987654321,
            relations: vec![
                // TSV sections with embedded blank lines survive the
                // byte framing, like partial scratch.
                "baskets\tbid\titem\n1\tale\n\n2\tbrie\n".into(),
                "dict\tw\n".into(),
            ],
        };
        assert_eq!(Request::parse(&req.render()).unwrap(), req);
        assert!(req.is_idempotent());
        // An empty fragment ships as parts= with no body.
        let empty = Request::Sync {
            frag: 0,
            fp: 42,
            relations: vec![],
        };
        assert_eq!(Request::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(Request::parse("bogus\n\n").is_err());
        assert!(Request::parse("gen seed=1\n\n").is_err()); // missing kind
        assert!(Request::parse("append\n\nr\ta\n1\n").is_err()); // missing rel
        assert!(Request::parse("append rel=r bogus=1\n\nr\ta\n").is_err());
        assert!(Request::parse("retract\n\nr\ta\n1\n").is_err()); // missing rel
        assert!(Request::parse("retract rel=r bogus=1\n\nr\ta\n").is_err());
        assert!(Request::parse("flock support=abc\n\nQUERY: …").is_err());
        assert!(Request::parse("flock rows\n\n").is_err()); // not key=value
        assert!(Request::parse("partial\n\nbody").is_err()); // missing parts
        assert!(Request::parse("partial parts=99\n\nshort").is_err()); // overrun
        assert!(Request::parse("partial parts=2\n\nlonger body").is_err()); // leftover bytes
        assert!(Request::parse("partial parts=x\n\nbody").is_err()); // bad length
        assert!(Request::parse("partial parts=4 frag=0\n\nbody").is_err()); // frag sans fp
        assert!(Request::parse("partial parts=4 frag-fp=9\n\nbody").is_err()); // fp sans frag
        assert!(Request::parse("append rel=r frag=0\n\nr\ta\n").is_err()); // frag sans fp
        assert!(Request::parse("retract rel=r frag-fp=9\n\nr\ta\n").is_err()); // fp sans frag
        assert!(Request::parse("sync fp=1 parts=\n\n").is_err()); // missing frag
        assert!(Request::parse("sync frag=0 parts=\n\n").is_err()); // missing fp
        assert!(Request::parse("sync frag=0 fp=1\n\n").is_err()); // missing parts
        assert!(Request::parse("sync frag=0 fp=1 parts=9\n\nshort").is_err()); // overrun
    }
}
