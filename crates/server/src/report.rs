//! The one-line JSON run report, shared between local `qfsh` runs and
//! server responses so tooling parses one shape everywhere.
//!
//! Hand-rolled: the offline build carries no serialization dependency.

use std::fmt::Write as _;

use qf_core::ExecStats;
use qf_storage::WalStats;

/// Cache/admission accounting attached to every report. Local runs use
/// [`CacheReport::default`] (all zeros, no cache in play); server
/// responses fill in the per-request flags and server-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheReport {
    /// This request was answered from the result cache.
    pub cache_hit: bool,
    /// This request skipped plan search (cached plan or cached result).
    pub plan_cached: bool,
    /// Server-wide result-cache hits so far.
    pub cache_hits: u64,
    /// Server-wide result-cache misses so far.
    pub cache_misses: u64,
    /// Server-wide admission rejections (overload + over-budget).
    pub rejected: u64,
    /// Server-wide deadline expiries (queue, eval, or reply stage).
    pub timeouts: u64,
    /// Server-wide jobs stopped early by client disconnect.
    pub cancelled: u64,
    /// Server-wide connections shed at the connection cap.
    pub conn_rejected: u64,
    /// Client-side retry attempts for this session (0 in server-side
    /// reports; filled in by the retrying client's own report).
    pub retries: u64,
    /// High-water mark of the admission queue depth.
    pub queue_depth_max: u64,
    /// Server-wide `append`/`retract` batches applied through the
    /// delta path (each batch counts once, whatever it touched).
    pub delta_applied: u64,
    /// Server-wide cached results incrementally maintained in place by
    /// a delta batch (no recompute, no cache drop).
    pub delta_maintained: u64,
    /// Server-wide cached results dropped by a delta batch — not
    /// maintainable, or maintenance failed and fell back to recompute.
    pub delta_rebuilds: u64,
    /// Server-wide tuples rescanned by the bounded MIN/MAX re-check
    /// during delta maintenance.
    pub recheck_tuples: u64,
    /// Durability counters (all zeros when the server runs without a
    /// `--data-dir`: no WAL in play).
    pub wal: WalStats,
}

/// Render one evaluation as a single-line JSON object.
#[allow(clippy::too_many_arguments)]
pub fn json_report(
    strategy: &str,
    results: usize,
    elapsed_ms: u128,
    stats: &ExecStats,
    resumed_steps: usize,
    tsv_skipped: u64,
    cache: &CacheReport,
) -> String {
    let degradations: Vec<String> = stats
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"stage\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&d.stage),
                json_escape(&d.detail)
            )
        })
        .collect();
    format!(
        "{{\"strategy\":\"{}\",\"results\":{},\"elapsed_ms\":{},\"rows\":{},\"bytes\":{},\
         \"workers\":{},\"spilled_bytes\":{},\"spills\":{},\"resumed_steps\":{},\
         \"io_retries\":{},\"corruption_recoveries\":{},\"spill_files_live\":{},\
         \"tsv_skipped_lines\":{},\"cache_hit\":{},\"plan_cached\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"rejected\":{},\"timeouts\":{},\"cancelled\":{},\
         \"conn_rejected\":{},\"retries\":{},\"queue_depth_max\":{},\"delta_applied\":{},\
         \"delta_maintained\":{},\"delta_rebuilds\":{},\"recheck_tuples\":{},\"wal_records\":{},\
         \"wal_bytes\":{},\"snapshots\":{},\"compactions\":{},\"recovered_records\":{},\
         \"recovery_ms\":{},\"degradations\":[{}]}}",
        json_escape(strategy),
        results,
        elapsed_ms,
        stats.rows,
        stats.bytes,
        stats.workers,
        stats.spilled_bytes,
        stats.spills,
        resumed_steps,
        stats.io_retries,
        stats.corruption_recoveries,
        stats.spill_files_live,
        tsv_skipped,
        cache.cache_hit,
        cache.plan_cached,
        cache.cache_hits,
        cache.cache_misses,
        cache.rejected,
        cache.timeouts,
        cache.cancelled,
        cache.conn_rejected,
        cache.retries,
        cache.queue_depth_max,
        cache.delta_applied,
        cache.delta_maintained,
        cache.delta_rebuilds,
        cache.recheck_tuples,
        cache.wal.wal_records,
        cache.wal.wal_bytes,
        cache.wal.snapshots,
        cache.wal.compactions,
        cache.wal.recovered_records,
        cache.wal.recovery_ms,
        degradations.join(",")
    )
}

/// Append extra `"key":value,…` fields to a one-line JSON object
/// (shard coordinators extend base reports with `shard_*` rollups
/// without reparsing them).
pub fn extend_json(obj: &str, extra: &str) -> String {
    let trimmed = obj.trim_end();
    match trimmed.strip_suffix('}') {
        Some(head) if head.trim_end().ends_with('{') => format!("{}{extra}}}", head.trim_end()),
        Some(head) => format!("{head},{extra}}}"),
        None => format!("{{{extra}}}"),
    }
}

/// Scan a one-line JSON object for a non-negative integer field. Only
/// as strong as the reports this crate itself renders need — exact key
/// match at top level of a flat object, digits only.
pub fn json_u64(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].parse().ok()
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_one_json_line_with_cache_keys() {
        let out = json_report(
            "cache",
            3,
            12,
            &ExecStats::default(),
            0,
            0,
            &CacheReport {
                cache_hit: true,
                plan_cached: true,
                cache_hits: 2,
                cache_misses: 1,
                rejected: 0,
                timeouts: 5,
                cancelled: 6,
                conn_rejected: 7,
                retries: 8,
                queue_depth_max: 4,
                delta_applied: 13,
                delta_maintained: 14,
                delta_rebuilds: 15,
                recheck_tuples: 16,
                wal: WalStats {
                    wal_records: 9,
                    wal_bytes: 640,
                    snapshots: 2,
                    compactions: 1,
                    recovered_records: 3,
                    recovery_ms: 11,
                },
            },
        );
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(!out.contains('\n'));
        for key in [
            "\"strategy\":\"cache\"",
            "\"results\":3",
            "\"cache_hit\":true",
            "\"plan_cached\":true",
            "\"cache_hits\":2",
            "\"cache_misses\":1",
            "\"rejected\":0",
            "\"timeouts\":5",
            "\"cancelled\":6",
            "\"conn_rejected\":7",
            "\"retries\":8",
            "\"queue_depth_max\":4",
            "\"delta_applied\":13",
            "\"delta_maintained\":14",
            "\"delta_rebuilds\":15",
            "\"recheck_tuples\":16",
            "\"wal_records\":9",
            "\"wal_bytes\":640",
            "\"snapshots\":2",
            "\"compactions\":1",
            "\"recovered_records\":3",
            "\"recovery_ms\":11",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn extend_and_scan_json() {
        assert_eq!(extend_json("{\"a\":1}", "\"b\":2"), "{\"a\":1,\"b\":2}");
        assert_eq!(extend_json("{}", "\"b\":2"), "{\"b\":2}");
        let obj = "{\"cache_hits\":12,\"timeouts\":0,\"nested\":\"x\"}";
        assert_eq!(json_u64(obj, "cache_hits"), Some(12));
        assert_eq!(json_u64(obj, "timeouts"), Some(0));
        assert_eq!(json_u64(obj, "absent"), None);
        assert_eq!(json_u64("{\"k\":\"str\"}", "k"), None);
    }
}
