//! The flock result cache and the plan cache.
//!
//! Both caches key on the **canonical** program text (normalized
//! variable names, sorted subgoals/rules — see
//! [`qf_core::FlockProgram::canonical_text`]) plus the **catalog
//! fingerprint**, so a hit is impossible against stale data: any
//! `load`/`gen` changes the fingerprint and old entries simply never
//! match again (the service additionally clears both caches on
//! mutation to reclaim the memory immediately).
//!
//! The result cache stores *scored* results — `(params…, aggregate)`
//! rows at the baseline filter they were computed under — which makes
//! reuse **monotone**: a cached run at support `s` answers any request
//! whose filter the baseline [subsumes](FilterCondition::subsumes)
//! (e.g. any `s' ≥ s`) by re-filtering rows, bitwise identically to a
//! cold evaluation. The plan cache remembers the searched `FILTER`
//! steps so a repeat flock at a *non*-subsumed threshold still skips
//! the exponential §4.3 plan search.

use std::sync::{Arc, Mutex};

use qf_core::{FilterCondition, FlockDelta};
use qf_storage::Relation;

/// Cache key: canonical query text (threshold excluded — that is what
/// makes one entry serve a family of thresholds) + the aggregate's head
/// position + catalog fingerprint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical views + query text, no filter.
    pub query: String,
    /// Head position of the filter's aggregate column
    /// ([`qf_core::QueryFlock::agg_head_pos`]; `None` for `COUNT`).
    /// The canonical query text renames head variables, so the raw
    /// aggregate variable can't distinguish `SUM` over different
    /// columns of the same query — the position can, and keeping it in
    /// the key stops such programs evicting each other's entries.
    pub agg_pos: Option<usize>,
    /// [`qf_storage::Database::fingerprint`] of the catalog the entry
    /// was computed against.
    pub catalog_fp: u64,
}

/// One cached scored evaluation.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The filter the scored run was computed under, in **canonical**
    /// form ([`qf_core::QueryFlock::canonical_filter`]: aggregate named
    /// by head position, not raw variable — the key's canonical query
    /// text renames variables, so raw names don't identify columns
    /// across entries); answers any canonical request filter it
    /// subsumes.
    pub baseline: FilterCondition,
    /// `(params…, agg)` rows passing `baseline`.
    pub scored: Relation,
    /// Strategy label of the original run (for response meta).
    pub strategy: String,
    /// Incremental-maintenance state ([`qf_core::FlockDelta`]) when the
    /// flock is delta-maintainable: the full counted answer multiset,
    /// updated in place on `append`/`retract` instead of dropping the
    /// entry. Shared behind a mutex because [`CachedResult`] is cloned
    /// out of the cache on hit while the mutation path updates the
    /// cached copy. `None` for non-maintainable flocks.
    pub delta: Option<Arc<Mutex<FlockDelta>>>,
}

/// A tiny exact-key LRU: most-recently-used at the front. Entry counts
/// are small (tens), so linear scans beat hash-map bookkeeping.
struct Lru<V> {
    cap: usize,
    entries: Vec<(CacheKey, V)>,
}

impl<V> Lru<V> {
    fn new(cap: usize) -> Lru<V> {
        Lru {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let hit = self.entries.remove(pos);
        self.entries.insert(0, hit);
        Some(&self.entries[0].1)
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.cap);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    /// Precise invalidation after an `append` to one relation: drop
    /// entries the delta could change (`touches` their query) and any
    /// entry keyed at a fingerprint other than `old_fp` (already
    /// unreachable — reclaim the memory); re-key the survivors from
    /// `old_fp` to `new_fp`, since a query that never reads the
    /// appended relation evaluates identically against the new catalog.
    fn retain_rekey(&mut self, old_fp: u64, new_fp: u64, touches: &dyn Fn(&CacheKey) -> bool) {
        self.entries.retain_mut(|(k, _)| {
            if k.catalog_fp != old_fp || touches(k) {
                return false;
            }
            k.catalog_fp = new_fp;
            true
        });
    }

    /// Like [`Lru::retain_rekey`], but a touched entry gets a chance to
    /// *maintain itself*: `maintain` mutates the value in place (e.g.
    /// applies a delta join) and returns whether the entry is still
    /// valid. Entries it keeps are re-keyed to `new_fp` like untouched
    /// ones; entries at any other fingerprint are reclaimed as before.
    fn maintain_rekey(
        &mut self,
        old_fp: u64,
        new_fp: u64,
        touches: &dyn Fn(&CacheKey) -> bool,
        maintain: &mut dyn FnMut(&mut V) -> bool,
    ) {
        self.entries.retain_mut(|(k, v)| {
            if k.catalog_fp != old_fp {
                return false;
            }
            if touches(k) && !maintain(v) {
                return false;
            }
            k.catalog_fp = new_fp;
            true
        });
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// LRU cache of scored flock results with monotone reuse.
pub struct ResultCache {
    lru: Lru<CachedResult>,
}

impl ResultCache {
    /// Cache holding up to `cap` scored results.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache { lru: Lru::new(cap) }
    }

    /// Look up an entry able to answer `filter` exactly: same key and
    /// a baseline that subsumes the requested condition. `filter` must
    /// be the request flock's *canonical* filter (see
    /// [`CachedResult::baseline`]). Refreshes LRU order on hit.
    pub fn lookup(&mut self, key: &CacheKey, filter: &FilterCondition) -> Option<CachedResult> {
        let entry = self.lru.get(key)?;
        if entry.baseline.subsumes(filter) {
            Some(entry.clone())
        } else {
            None
        }
    }

    /// Store a scored result. When an entry already exists under the
    /// key, keep whichever baseline **subsumes** the other: a run at a
    /// loose threshold answers every tighter one, so replacing it with
    /// a tight-threshold run would silently narrow cache coverage (the
    /// old bug: "most recent baseline wins"). The survivor still moves
    /// to the front — coverage and recency are separate concerns.
    pub fn insert(&mut self, key: CacheKey, entry: CachedResult) {
        let keep = match self.lru.get(&key) {
            Some(old) if old.baseline.subsumes(&entry.baseline) => {
                let mut kept = old.clone();
                // The maintenance state is baseline-independent (it
                // tracks the full unfiltered multiset), so a surviving
                // loose entry adopts the fresher run's delta handle.
                if kept.delta.is_none() {
                    kept.delta = entry.delta;
                }
                kept
            }
            _ => entry,
        };
        self.lru.insert(key, keep);
    }

    /// Drop everything (catalog mutation).
    pub fn clear(&mut self) {
        self.lru.clear();
    }

    /// Precise invalidation for an `append`: see [`Lru::retain_rekey`].
    pub fn retain_rekey(&mut self, old_fp: u64, new_fp: u64, touches: &dyn Fn(&CacheKey) -> bool) {
        self.lru.retain_rekey(old_fp, new_fp, touches);
    }

    /// Delta-aware invalidation for an `append`/`retract`: touched
    /// entries are offered to `maintain` (which updates them in place
    /// and says whether they survive) instead of being dropped
    /// unconditionally. See [`Lru::maintain_rekey`].
    pub fn maintain_rekey(
        &mut self,
        old_fp: u64,
        new_fp: u64,
        touches: &dyn Fn(&CacheKey) -> bool,
        maintain: &mut dyn FnMut(&mut CachedResult) -> bool,
    ) {
        self.lru.maintain_rekey(old_fp, new_fp, touches, maintain);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }
}

/// LRU cache of searched plan shapes (`FILTER` steps). The steps carry
/// no threshold — the filter is applied from the flock at execution
/// time — so one searched shape serves every threshold of the query.
pub struct PlanCache {
    lru: Lru<Vec<qf_core::FilterStep>>,
}

impl PlanCache {
    /// Cache holding up to `cap` plan shapes.
    pub fn new(cap: usize) -> PlanCache {
        PlanCache { lru: Lru::new(cap) }
    }

    /// Fetch the cached steps for a key, refreshing LRU order.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Vec<qf_core::FilterStep>> {
        self.lru.get(key).cloned()
    }

    /// Store a searched plan shape.
    pub fn insert(&mut self, key: CacheKey, steps: Vec<qf_core::FilterStep>) {
        self.lru.insert(key, steps);
    }

    /// Drop everything (catalog mutation — plan choice depends on
    /// catalog statistics).
    pub fn clear(&mut self) {
        self.lru.clear();
    }

    /// Precise invalidation for an `append`: see [`Lru::retain_rekey`].
    /// Plan shapes of queries reading the appended relation are dropped
    /// too — plan choice depends on its statistics.
    pub fn retain_rekey(&mut self, old_fp: u64, new_fp: u64, touches: &dyn Fn(&CacheKey) -> bool) {
        self.lru.retain_rekey(old_fp, new_fp, touches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::{Schema, Value};

    fn key(q: &str, fp: u64) -> CacheKey {
        CacheKey {
            query: q.to_string(),
            agg_pos: None,
            catalog_fp: fp,
        }
    }

    fn entry(support: i64) -> CachedResult {
        CachedResult {
            baseline: FilterCondition::support(support),
            scored: Relation::from_rows(
                Schema::new("scored_result", &["p", "agg"]),
                vec![vec![Value::str("a"), Value::int(5)]],
            ),
            strategy: "static".to_string(),
            delta: None,
        }
    }

    #[test]
    fn maintain_rekey_lets_touched_entries_survive() {
        let mut c = ResultCache::new(8);
        c.insert(key("answer :- baskets(B,I)", 1), entry(2));
        c.insert(key("answer :- dict(W)", 1), entry(2));
        // The touched entry maintains itself (closure mutates + keeps).
        let mut maintained = 0;
        c.maintain_rekey(1, 9, &|k| k.query.contains("baskets"), &mut |e| {
            e.strategy = "delta".to_string();
            maintained += 1;
            true
        });
        assert_eq!(maintained, 1);
        let hit = c
            .lookup(
                &key("answer :- baskets(B,I)", 9),
                &FilterCondition::support(2),
            )
            .expect("maintained entry must survive re-keyed");
        assert_eq!(hit.strategy, "delta");
        // Untouched entries re-key without the closure running.
        assert!(c
            .lookup(&key("answer :- dict(W)", 9), &FilterCondition::support(2))
            .is_some());
        // A declining closure drops the entry like retain_rekey would.
        c.maintain_rekey(9, 11, &|k| k.query.contains("baskets"), &mut |_| false);
        assert!(c
            .lookup(
                &key("answer :- baskets(B,I)", 11),
                &FilterCondition::support(2),
            )
            .is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn monotone_lookup() {
        let mut c = ResultCache::new(4);
        c.insert(key("q", 1), entry(3));
        // Subsumed thresholds hit; looser ones and other keys miss.
        assert!(c
            .lookup(&key("q", 1), &FilterCondition::support(3))
            .is_some());
        assert!(c
            .lookup(&key("q", 1), &FilterCondition::support(9))
            .is_some());
        assert!(c
            .lookup(&key("q", 1), &FilterCondition::support(2))
            .is_none());
        assert!(c
            .lookup(&key("q", 2), &FilterCondition::support(3))
            .is_none());
        assert!(c
            .lookup(&key("r", 1), &FilterCondition::support(3))
            .is_none());
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = ResultCache::new(2);
        c.insert(key("a", 1), entry(1));
        c.insert(key("b", 1), entry(1));
        // Touch `a` so `b` is the LRU victim.
        assert!(c
            .lookup(&key("a", 1), &FilterCondition::support(1))
            .is_some());
        c.insert(key("c", 1), entry(1));
        assert_eq!(c.len(), 2);
        assert!(c
            .lookup(&key("a", 1), &FilterCondition::support(1))
            .is_some());
        assert!(c
            .lookup(&key("b", 1), &FilterCondition::support(1))
            .is_none());
        assert!(c
            .lookup(&key("c", 1), &FilterCondition::support(1))
            .is_some());
    }

    #[test]
    fn reinsert_replaces() {
        let mut c = ResultCache::new(2);
        c.insert(key("a", 1), entry(5));
        c.insert(key("a", 1), entry(2));
        assert_eq!(c.len(), 1);
        // The newer, looser baseline answers support 2.
        assert!(c
            .lookup(&key("a", 1), &FilterCondition::support(2))
            .is_some());
    }

    #[test]
    fn retain_rekey_drops_touched_and_rekeys_the_rest() {
        let mut c = ResultCache::new(8);
        c.insert(key("answer :- baskets(B,I)", 1), entry(2));
        c.insert(key("answer :- dict(W)", 1), entry(2));
        c.insert(key("answer :- dict(W), aux(W)", 7), entry(2)); // stale fp
        c.retain_rekey(1, 9, &|k| k.query.contains("baskets"));
        // The query over the appended relation is gone at both fps.
        assert!(c
            .lookup(
                &key("answer :- baskets(B,I)", 9),
                &FilterCondition::support(2)
            )
            .is_none());
        // The untouched query moved from fp 1 to fp 9.
        assert!(c
            .lookup(&key("answer :- dict(W)", 9), &FilterCondition::support(2))
            .is_some());
        assert!(c
            .lookup(&key("answer :- dict(W)", 1), &FilterCondition::support(2))
            .is_none());
        // The already-unreachable stale-fp entry was reclaimed.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn loose_baseline_survives_tight_reinsert() {
        let mut c = ResultCache::new(2);
        // A loose-threshold run (support 2) is cached, then the same
        // query runs at a tight threshold (support 9). The loose entry
        // subsumes the tight one — it must survive, or the cache
        // forgets it can answer supports 2..9.
        c.insert(key("a", 1), entry(2));
        c.insert(key("a", 1), entry(9));
        assert_eq!(c.len(), 1);
        let hit = c
            .lookup(&key("a", 1), &FilterCondition::support(2))
            .expect("loose baseline must survive a tight-threshold insert");
        assert_eq!(hit.baseline, FilterCondition::support(2));
        // And it still answers the tight threshold too.
        assert!(c
            .lookup(&key("a", 1), &FilterCondition::support(9))
            .is_some());
    }
}
