//! The resident flock service: shared catalog, admission budgets, and
//! the monotone result cache.
//!
//! [`FlockService`] is the transport-free heart of `qf serve` — it owns
//! the catalog behind a `RwLock`, the result/plan caches, and the
//! server-wide counters, and turns parsed [`Request`]s into
//! [`Response`]s. The TCP layer ([`crate::net`]) only frames bytes and
//! decides *where* a request runs (worker pool vs. connection thread);
//! everything observable lives here, which is what makes the service
//! unit-testable without sockets.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use qf_core::{
    best_plan_with, direct_plan, execute_plan_scored_with, flock_result_from_scored,
    vacuous_filter, CancelToken, DeltaLimits, ExecContext, ExecStats, FilterCondition, FlockDelta,
    FlockProgram, JoinOrderStrategy, QueryFlock, QueryPlan,
};
use qf_storage::{
    spill::content_hash, tsv, Database, Fnv1a, Relation, StorageError, Wal, WalCounters, WalRecord,
};

use crate::cache::{CacheKey, CachedResult, PlanCache, ResultCache};
use crate::error::{Result, ServerError};
use crate::pool::{Job, JobPayload};
use crate::protocol::{Request, RequestLimits, Response};
use crate::report::{json_escape, json_report, CacheReport};

/// Server-side configuration: worker pool size, admission queue bound,
/// cache capacity, and per-request budget caps.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing flock requests (also the thread pool
    /// divided fairly among concurrent requests).
    pub threads: usize,
    /// Bounded admission queue: flock requests beyond this many waiting
    /// jobs are rejected with a typed `overloaded` error.
    pub queue_cap: usize,
    /// Result-cache capacity (scored evaluations).
    pub cache_entries: usize,
    /// Per-request cap on materialized tuples; requests asking for more
    /// are rejected, requests asking for nothing inherit the cap.
    pub max_rows: Option<u64>,
    /// Per-request cap on estimated materialized bytes.
    pub mem_budget: Option<u64>,
    /// Per-request wall-clock deadline cap, milliseconds. A client ask
    /// is min'd with this cap (never rejected): the effective value is
    /// stamped as an absolute deadline at admission time, and queue
    /// wait counts against it.
    pub timeout_ms: Option<u64>,
    /// Connection cap: connections beyond this many live at once are
    /// shed immediately with a typed `overloaded` response carrying a
    /// retry-after hint, before they consume a thread or queue slot.
    pub max_conns: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before being reaped, milliseconds.
    pub idle_timeout_ms: u64,
    /// How long a single read/write may stall *mid-frame* before the
    /// connection is reaped, milliseconds. This is the slow-loris
    /// bound: a peer that trickles a frame byte-at-a-time holds a
    /// connection slot for at most this long per stall, and never a
    /// worker slot (jobs are admitted only on complete frames).
    pub io_timeout_ms: u64,
    /// Backoff hint attached to shed connections, milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let threads = qf_core::default_threads();
        ServerConfig {
            threads,
            queue_cap: (threads * 4).max(4),
            cache_entries: 64,
            max_rows: None,
            mem_budget: None,
            timeout_ms: None,
            max_conns: 1024,
            idle_timeout_ms: 300_000,
            io_timeout_ms: 10_000,
            retry_after_ms: 200,
        }
    }
}

/// Server-wide counters, all lock-free.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests handled (all kinds).
    pub requests: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses (flock requests that evaluated).
    pub cache_misses: AtomicU64,
    /// Admission rejections: queue overflow + over-cap budgets.
    pub rejected: AtomicU64,
    /// Requests whose deadline expired — in the queue (never executed),
    /// mid-evaluation, or waiting for a worker reply.
    pub timeouts: AtomicU64,
    /// Jobs stopped early because their client disconnected (observed
    /// either before execution started or mid-plan via the governor's
    /// cancellation token).
    pub cancelled: AtomicU64,
    /// Connections shed at the connection cap before consuming any
    /// thread or queue slot.
    pub conn_rejected: AtomicU64,
    /// Live client connections.
    pub conns: AtomicUsize,
    /// Current admission queue depth (maintained by the worker pool).
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_depth_max: AtomicU64,
    /// Flock requests currently executing.
    pub active: AtomicUsize,
    /// Worker threads alive in the pool.
    pub live_workers: AtomicUsize,
    /// `append`/`retract` batches applied through the delta
    /// cache-maintenance path (each batch counts once).
    pub delta_applied: AtomicU64,
    /// Cached results incrementally maintained in place by a delta
    /// batch instead of being dropped.
    pub delta_maintained: AtomicU64,
    /// Cached results a delta batch dropped for recompute — no
    /// maintenance state, or maintenance failed/overflowed its budget.
    pub delta_rebuilds: AtomicU64,
    /// Tuples rescanned by the bounded MIN/MAX re-check during delta
    /// maintenance (see [`qf_engine::RECHECK_BOUND`]).
    pub recheck_tuples: AtomicU64,
}

impl Counters {
    /// Snapshot the cache/admission numbers for a response meta object.
    pub fn cache_report(&self, cache_hit: bool, plan_cached: bool) -> CacheReport {
        CacheReport {
            cache_hit,
            plan_cached,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            conn_rejected: self.conn_rejected.load(Ordering::Relaxed),
            retries: 0,
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            delta_applied: self.delta_applied.load(Ordering::Relaxed),
            delta_maintained: self.delta_maintained.load(Ordering::Relaxed),
            delta_rebuilds: self.delta_rebuilds.load(Ordering::Relaxed),
            recheck_tuples: self.recheck_tuples.load(Ordering::Relaxed),
            wal: qf_storage::WalStats::default(),
        }
    }
}

/// How a deployment executes requests. The net/pool layers are generic
/// over this: the standalone server ([`LocalHandler`]) hands admitted
/// jobs straight to its [`FlockService`], while the shard coordinator
/// substitutes scatter-gather execution — admission control, queueing,
/// deadline triage, and fair thread allocation stay identical.
pub trait RequestHandler: Send + Sync {
    /// The shared service state (config, counters, catalog, caches).
    fn service(&self) -> &Arc<FlockService>;

    /// Answer a light request on the connection thread (everything
    /// except `flock`/`partial`). Deployments that fan a mutation or
    /// `stats` out to other tiers override this.
    fn handle_light(&self, req: &Request) -> Response {
        self.service().handle_light(req)
    }

    /// Execute an admitted heavy job with `granted_threads` workers.
    /// Called on a pool worker thread.
    fn handle_admitted(&self, job: &Job, granted_threads: usize) -> Response;
}

/// The standalone (single-node) deployment: every job runs against the
/// local service.
pub struct LocalHandler {
    service: Arc<FlockService>,
}

impl LocalHandler {
    /// Wrap a service.
    pub fn new(service: Arc<FlockService>) -> LocalHandler {
        LocalHandler { service }
    }
}

impl RequestHandler for LocalHandler {
    fn service(&self) -> &Arc<FlockService> {
        &self.service
    }

    fn handle_admitted(&self, job: &Job, granted_threads: usize) -> Response {
        match &job.payload {
            JobPayload::Flock { text, support } => self.service.handle_flock_admitted(
                text,
                *support,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
            JobPayload::Partial {
                text,
                scratch,
                frag,
            } => self.service.handle_partial_admitted(
                text,
                scratch,
                *frag,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
            JobPayload::Append { rel, tsv, frag } => {
                self.service.handle_append_admitted(rel, tsv, *frag)
            }
            JobPayload::Retract { rel, tsv, frag } => {
                self.service.handle_retract_admitted(rel, tsv, *frag)
            }
        }
    }
}

/// The resident service state shared by every connection and worker.
pub struct FlockService {
    db: RwLock<Database>,
    /// Replicated catalog fragments installed by the coordinator's
    /// `sync` verb: fragment id → (fingerprint, catalog). Kept apart
    /// from the master catalog — a worker hosting several replicas
    /// must evaluate each `partial` against exactly one fragment, or
    /// `COUNT`/`SUM` partials would double-count the overlap.
    frags: RwLock<BTreeMap<usize, (u64, Database)>>,
    result_cache: Mutex<ResultCache>,
    plan_cache: Mutex<PlanCache>,
    /// Counters, public for the pool/net layers and tests.
    pub counters: Counters,
    /// Immutable configuration.
    pub config: ServerConfig,
    shutting_down: AtomicBool,
    /// The write-ahead log behind `--data-dir`, absent for a purely
    /// in-memory server. Mutations hold the catalog write lock across
    /// apply + commit, so the log's record order always matches the
    /// installed catalog's.
    wal: Option<Mutex<Wal>>,
    /// Durability counters: shared with the WAL when one is configured,
    /// all-zero otherwise (so `stats` always carries the fields).
    wal_counters: Arc<WalCounters>,
}

/// Locks here never protect panicking code paths, but a poisoned lock
/// must not take the whole server down either: recover the guard.
fn unpoison<'a, T>(
    r: std::result::Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl FlockService {
    /// Service over an initial catalog (possibly empty), no durability:
    /// mutations live only in memory.
    pub fn new(config: ServerConfig, db: Database) -> FlockService {
        FlockService::build(config, db, None)
    }

    /// Service over a WAL-recovered catalog: every mutation is
    /// committed (fsynced and read-back verified) to `wal` *before* it
    /// is installed or acknowledged, so a restart recovers exactly the
    /// acknowledged catalog. `db` must be the catalog [`Wal::open`]
    /// returned alongside `wal`.
    pub fn with_wal(config: ServerConfig, db: Database, wal: Wal) -> FlockService {
        FlockService::build(config, db, Some(wal))
    }

    fn build(config: ServerConfig, db: Database, wal: Option<Wal>) -> FlockService {
        let wal_counters = wal.as_ref().map_or_else(Default::default, Wal::counters);
        FlockService {
            db: RwLock::new(db),
            frags: RwLock::new(BTreeMap::new()),
            result_cache: Mutex::new(ResultCache::new(config.cache_entries)),
            plan_cache: Mutex::new(PlanCache::new(config.cache_entries)),
            counters: Counters::default(),
            config,
            shutting_down: AtomicBool::new(false),
            wal: wal.map(Mutex::new),
            wal_counters,
        }
    }

    /// Per-request cache/admission report with the durability counters
    /// merged in (zeros when no WAL is configured).
    pub fn cache_report(&self, cache_hit: bool, plan_cached: bool) -> CacheReport {
        CacheReport {
            wal: self.wal_counters.stats(),
            ..self.counters.cache_report(cache_hit, plan_cached)
        }
    }

    /// True once a shutdown request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Flip the drain flag (idempotent).
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Handle a request that does not need the worker pool: everything
    /// except `Flock` (which goes through admission). Called on the
    /// connection thread.
    pub fn handle_light(&self, req: &Request) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let result = match req {
            Request::Ping => Ok((String::from("{}"), String::from("pong"))),
            Request::Stats => Ok((self.stats_json(), String::new())),
            Request::Shutdown => {
                self.begin_shutdown();
                Ok((String::from("{}"), String::from("draining")))
            }
            Request::Gen { kind, seed } => self.generate(kind, *seed),
            Request::Load { tsv } => self.load(tsv),
            Request::Sync {
                frag,
                fp,
                relations,
            } => self.sync_fragment(*frag, *fp, relations),
            Request::Fingerprint { text } => fingerprint(text),
            Request::Flock { .. }
            | Request::Partial { .. }
            | Request::Append { .. }
            | Request::Retract { .. } => Err(ServerError::Proto(
                "flock/partial/append/retract requests must go through admission".to_string(),
            )),
        };
        match result {
            Ok((meta, body)) => Response::Ok { meta, body },
            Err(e) => Response::from_error(&e),
        }
    }

    /// Evaluate a flock request with `granted_threads` workers, no
    /// pre-stamped deadline or cancellation (direct/embedded callers):
    /// the deadline, if any, starts now.
    pub fn handle_flock(
        &self,
        text: &str,
        support: Option<i64>,
        limits: &RequestLimits,
        granted_threads: usize,
    ) -> Response {
        let deadline = match self.admission_limits(limits) {
            Ok(eff) => eff
                .timeout_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            // Let the admitted path report the error uniformly.
            Err(_) => None,
        };
        self.handle_flock_admitted(text, support, limits, granted_threads, deadline, None)
    }

    /// Evaluate an admitted flock request: the deadline was stamped at
    /// admission (so queue wait already counts against it) and the
    /// cancellation token is shared with the connection thread, which
    /// trips it if the client hangs up. Called on a pool worker.
    pub fn handle_flock_admitted(
        &self,
        text: &str,
        support: Option<i64>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match self.eval_flock(text, support, limits, granted_threads, deadline, cancel) {
            Ok(resp) => resp,
            Err(e) => {
                match &e {
                    ServerError::Timeout { .. } => self.note_timeout(),
                    ServerError::Cancelled => self.note_cancelled(),
                    _ => {}
                }
                Response::from_error(&e)
            }
        }
    }

    /// Evaluate an admitted `partial` request: one scatter-gather step
    /// against this shard's catalog fragment, answered with the
    /// **scored** relation so the coordinator can merge it
    /// algebraically. Called on a pool worker.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_partial_admitted(
        &self,
        text: &str,
        scratch: &[String],
        frag: Option<(usize, u64)>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match self.eval_partial(
            text,
            scratch,
            frag,
            limits,
            granted_threads,
            deadline,
            cancel,
        ) {
            Ok(resp) => resp,
            Err(e) => {
                match &e {
                    ServerError::Timeout { .. } => self.note_timeout(),
                    ServerError::Cancelled => self.note_cancelled(),
                    _ => {}
                }
                Response::from_error(&e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_partial(
        &self,
        text: &str,
        scratch: &[String],
        frag: Option<(usize, u64)>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<Response> {
        let start = Instant::now();
        let flock = QueryFlock::parse(text).map_err(|e| ServerError::Parse(e.to_string()))?;
        let filter = *flock.filter();
        let canonical_filter = flock.canonical_filter();
        let effective = self.admission_limits(limits)?;
        // Fragment-scoped partials evaluate against the synced replica
        // fragment (fingerprint-checked); frag-less partials keep the
        // single-copy behavior where the whole catalog IS the fragment.
        let (mut db, fp) = match frag {
            Some((id, want)) => (self.fragment_snapshot(id, want)?, want),
            None => self.snapshot(),
        };
        // The cache key folds the scratch overlays into the catalog
        // fingerprint by content, so a step re-scattered with the same
        // upstream outputs hits, and any change to either misses.
        let mut h = Fnv1a::new();
        h.write(&fp.to_le_bytes());
        for tsv_text in scratch {
            let rel = tsv::read_tsv(std::io::Cursor::new(tsv_text.as_bytes()))
                .map_err(|e| ServerError::Parse(e.to_string()))?;
            h.write(rel.name().as_bytes());
            h.write(&content_hash(&rel).to_le_bytes());
            db.insert(rel);
        }
        let key = CacheKey {
            query: flock.canonical_query_text(),
            agg_pos: flock.agg_head_pos(),
            catalog_fp: h.finish(),
        };

        if let Some(hit) = unpoison(self.result_cache.lock()).lookup(&key, &canonical_filter) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let scored = refilter_scored(&hit.scored, &filter);
            let meta = json_report(
                "partial-cache",
                scored.len(),
                start.elapsed().as_millis(),
                &ExecStats::default(),
                0,
                0,
                &self.cache_report(true, true),
            );
            return Ok(Response::Ok {
                meta,
                body: render_tsv(&scored),
            });
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

        let ctx = self.exec_context(&effective, granted_threads, deadline, cancel);
        // Always the direct plan: a partial *is* one step of a plan the
        // coordinator already searched; searching again here would only
        // burn the budget the governor metered out.
        let plan = direct_plan(&flock).map_err(ServerError::from_eval)?;
        let run = execute_plan_scored_with(&plan, &db, JoinOrderStrategy::Greedy, &ctx)
            .map_err(ServerError::from_eval)?;
        unpoison(self.result_cache.lock()).insert(
            key,
            CachedResult {
                baseline: canonical_filter,
                scored: run.scored.clone(),
                strategy: "partial".to_string(),
                // Partials fold scratch overlays into their cache key;
                // the overlays are not catalog relations the delta path
                // could track, so these entries are never maintained.
                delta: None,
            },
        );
        let meta = json_report(
            "partial",
            run.scored.len(),
            start.elapsed().as_millis(),
            &ctx.stats(),
            0,
            0,
            &self.cache_report(false, false),
        );
        Ok(Response::Ok {
            meta,
            body: render_tsv(&run.scored),
        })
    }

    /// Build the governed execution context for an admitted request:
    /// effective budgets, fair thread grant, and the admission-stamped
    /// absolute deadline (queue wait already spent) in preference to a
    /// relative timeout that would restart the clock. Crate-visible so
    /// the shard coordinator governs its scatter loop identically.
    pub(crate) fn exec_context(
        &self,
        effective: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> ExecContext {
        let threads = effective
            .threads
            .map_or(granted_threads, |n| n.min(granted_threads))
            .max(1);
        let mut ctx = ExecContext::unbounded().with_threads(threads);
        if let Some(r) = effective.max_rows {
            ctx = ctx.with_max_rows(r);
        }
        if let Some(b) = effective.mem_budget {
            ctx = ctx.with_mem_budget(b);
        }
        match (deadline, effective.timeout_ms) {
            (Some(d), _) => ctx = ctx.with_deadline(d),
            (None, Some(ms)) => ctx = ctx.with_timeout(Duration::from_millis(ms)),
            (None, None) => {}
        }
        if let Some(tok) = cancel {
            ctx = ctx.with_cancel_token(tok.clone());
        }
        ctx
    }

    /// Reject requests whose row/byte asks exceed the server's
    /// per-request caps; otherwise resolve the effective budgets (ask,
    /// or cap, or none). The timeout is different: a client ask is
    /// **min'd** with the server cap rather than rejected — an
    /// impatient client is harmless, and the server cap guarantees no
    /// request outlives it either way.
    pub fn admission_limits(&self, limits: &RequestLimits) -> Result<RequestLimits> {
        fn cap(name: &str, ask: Option<u64>, cap: Option<u64>) -> Result<Option<u64>> {
            match (ask, cap) {
                (Some(a), Some(c)) if a > c => Err(ServerError::Budget(format!(
                    "requested {name}={a} exceeds the server cap {c}"
                ))),
                (Some(a), _) => Ok(Some(a)),
                (None, c) => Ok(c),
            }
        }
        let timeout_ms = match (limits.timeout_ms, self.config.timeout_ms) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (ask, cap) => ask.or(cap),
        };
        Ok(RequestLimits {
            max_rows: cap("max-rows", limits.max_rows, self.config.max_rows)?,
            mem_budget: cap("mem-budget", limits.mem_budget, self.config.mem_budget)?,
            timeout_ms,
            threads: limits.threads,
        })
    }

    /// Monotone result-cache lookup at the service tier (the shard
    /// coordinator keeps its cross-shard cache here too).
    pub(crate) fn result_cache_lookup(
        &self,
        key: &CacheKey,
        filter: &FilterCondition,
    ) -> Option<CachedResult> {
        unpoison(self.result_cache.lock()).lookup(key, filter)
    }

    /// Store a scored result in the service-tier cache.
    pub(crate) fn result_cache_insert(&self, key: CacheKey, entry: CachedResult) {
        unpoison(self.result_cache.lock()).insert(key, entry);
    }

    /// Fetch a cached plan shape.
    pub(crate) fn plan_cache_lookup(&self, key: &CacheKey) -> Option<Vec<qf_core::FilterStep>> {
        unpoison(self.plan_cache.lock()).lookup(key)
    }

    /// Store a searched plan shape.
    pub(crate) fn plan_cache_insert(&self, key: &CacheKey, steps: Vec<qf_core::FilterStep>) {
        unpoison(self.plan_cache.lock()).insert(key.clone(), steps);
    }

    /// Note a deadline expiry (queue, eval, or reply stage).
    pub fn note_timeout(&self) {
        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a job stopped early because its client disconnected.
    pub fn note_cancelled(&self) {
        self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a connection shed at the connection cap.
    pub fn note_conn_rejected(&self) {
        self.counters.conn_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Note an admission rejection (queue overflow or over-cap budget).
    pub fn note_rejection(&self) {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A read-only snapshot of the catalog (cheap: relations are
    /// shared) plus its memoized fingerprint.
    pub fn snapshot(&self) -> (Database, u64) {
        let guard = self.db.read().unwrap_or_else(|e| e.into_inner());
        let fp = guard.fingerprint();
        (guard.clone(), fp)
    }

    fn eval_flock(
        &self,
        text: &str,
        support: Option<i64>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<Response> {
        let start = Instant::now();
        let program = parse_program(text, support)?;
        let flock = program.flock().clone();
        let filter = *flock.filter();
        // Cache comparisons use the *canonical* filter (aggregate named
        // by head position): the key's canonical query text renames
        // head variables, so the raw variable name is meaningless across
        // entries — `SUM(answer.W)` is a different column in
        // `answer(B,W)` than in `answer(W,Z)`.
        let canonical_filter = flock.canonical_filter();
        let effective = self.admission_limits(limits)?;
        let (db, fp) = self.snapshot();
        let key = CacheKey {
            query: program.canonical_query_text(),
            agg_pos: flock.agg_head_pos(),
            catalog_fp: fp,
        };

        // Monotone cache reuse: an entry whose baseline subsumes the
        // requested filter answers it exactly by re-filtering.
        if let Some(hit) = unpoison(self.result_cache.lock()).lookup(&key, &canonical_filter) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let result = flock_result_from_scored(&flock, &hit.scored, &filter);
            let meta = json_report(
                "cache",
                result.len(),
                start.elapsed().as_millis(),
                &ExecStats::default(),
                0,
                0,
                &self.cache_report(true, true),
            );
            return Ok(Response::Ok {
                meta,
                body: render_tsv(&result),
            });
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Cold path: governed scored evaluation.
        let ctx = self.exec_context(&effective, granted_threads, deadline, cancel);

        let extended = program
            .materialize_views_with(&db, JoinOrderStrategy::Greedy, &ctx)
            .map_err(ServerError::from_eval)?;

        // Plan: cached shape if the same query was searched before
        // (any threshold — shapes are threshold-free), else search.
        let mut plan_cached = false;
        let cached_steps = unpoison(self.plan_cache.lock()).lookup(&key);
        let (plan, strategy) = match cached_steps
            .and_then(|steps| QueryPlan::new(flock.clone(), steps).ok())
        {
            Some(plan) => {
                plan_cached = true;
                (plan, "static(plan-cache)")
            }
            None => {
                let searched = if filter.is_monotone() {
                    best_plan_with(&flock, &extended, &ctx)
                        .ok()
                        .map(|(plan, _)| plan)
                } else {
                    None
                };
                match searched {
                    Some(plan) => {
                        unpoison(self.plan_cache.lock()).insert(key.clone(), plan.steps.clone());
                        (plan, "static")
                    }
                    None => (
                        direct_plan(&flock).map_err(ServerError::from_eval)?,
                        "direct",
                    ),
                }
            }
        };

        let run = execute_plan_scored_with(&plan, &extended, JoinOrderStrategy::Greedy, &ctx)
            .map_err(ServerError::from_eval)?;
        let result = flock_result_from_scored(&flock, &run.scored, &filter);
        // Delta-maintainable flocks (single rule, no negation, no
        // views) get incremental-maintenance state alongside the scored
        // rows: subsequent `append`/`retract` batches on a touched
        // relation then update the entry in place instead of dropping
        // it. A failed build (budget, unsupported shape) degrades to a
        // plain entry — never an error.
        let delta = if program.views().is_empty() && FlockDelta::maintainable(&flock) {
            FlockDelta::build(&flock, &db, &DeltaLimits::default())
                .ok()
                .map(|d| Arc::new(Mutex::new(d)))
        } else {
            None
        };
        unpoison(self.result_cache.lock()).insert(
            key,
            CachedResult {
                baseline: canonical_filter,
                scored: run.scored,
                strategy: strategy.to_string(),
                delta,
            },
        );
        let meta = json_report(
            strategy,
            result.len(),
            start.elapsed().as_millis(),
            &ctx.stats(),
            0,
            0,
            &self.cache_report(false, plan_cached),
        );
        Ok(Response::Ok {
            meta,
            body: render_tsv(&result),
        })
    }

    fn generate(&self, kind: &str, seed: u64) -> Result<(String, String)> {
        let mut rels: Vec<Relation> = Vec::new();
        let note: String;
        match kind {
            "baskets" => {
                let config = qf_datagen::BasketConfig {
                    seed,
                    ..Default::default()
                };
                let data = qf_datagen::baskets::generate(&config);
                note = format!("generated baskets ({} baskets)", data.baskets.distinct(0));
                rels.push(data.baskets);
                rels.push(qf_datagen::baskets::importance(&config, 50));
            }
            "words" => {
                let rel = qf_datagen::words::generate(&qf_datagen::WordsConfig {
                    seed,
                    ..Default::default()
                });
                note = format!("generated words (word occurrences, {} tuples)", rel.len());
                rels.push(rel);
            }
            "medical" => {
                let data = qf_datagen::medical::generate(&qf_datagen::MedicalConfig {
                    seed,
                    ..Default::default()
                });
                note = format!("generated medical db (planted: {:?})", data.planted);
                rels.extend(data.db.iter().cloned());
            }
            "web" => {
                let data = qf_datagen::web::generate(&qf_datagen::WebConfig {
                    seed,
                    ..Default::default()
                });
                note = format!("generated web corpus (planted: {:?})", data.planted);
                rels.extend(data.db.iter().cloned());
            }
            "graph" => {
                let rel = qf_datagen::graph::generate(&qf_datagen::GraphConfig {
                    seed,
                    ..Default::default()
                });
                note = format!("generated arc ({} arcs)", rel.len());
                rels.push(rel);
            }
            other => {
                return Err(ServerError::Proto(format!(
                    "unknown workload `{other}` (baskets|words|medical|web|graph)"
                )))
            }
        }
        let record = WalRecord::Put {
            relations: rels.iter().map(render_tsv).collect(),
        };
        let fp = self.commit_record(&record, None)?;
        Ok((format!("{{\"fp\":\"{fp:016x}\"}}"), note))
    }

    /// Install one replicated catalog fragment (the `sync` verb): parse
    /// the shipped TSV sections, verify the assembled fragment's
    /// content-based fingerprint against the coordinator's declared
    /// `fp`, and only then swap it in. A torn or corrupted ship is
    /// rejected with a retryable `proto` error *before* touching the
    /// stored fragment, so a worker never serves bytes the coordinator
    /// did not certify. Idempotent by construction.
    fn sync_fragment(
        &self,
        frag: usize,
        fp: u64,
        relations: &[String],
    ) -> Result<(String, String)> {
        let mut db = Database::new();
        for text in relations {
            let rel = tsv::read_tsv(std::io::Cursor::new(text.as_bytes()))
                .map_err(|e| ServerError::Parse(e.to_string()))?;
            db.insert(rel);
        }
        let got = db.fingerprint();
        if got != fp {
            return Err(ServerError::Proto(format!(
                "sync of fragment {frag} arrived with fingerprint {got:016x}, expected {fp:016x}"
            )));
        }
        let n = relations.len();
        self.frags
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(frag, (fp, db));
        Ok((
            format!("{{\"frag\":{frag},\"relations\":{n}}}"),
            format!("synced fragment {frag} [{n} relation(s)]"),
        ))
    }

    /// The stored fragment for a fragment-scoped `partial`, validated
    /// against the coordinator's expected fingerprint. Missing or stale
    /// (fingerprint mismatch — the fragment missed a catalog push while
    /// this worker was down) both answer typed `no-frag`, which the
    /// coordinator treats as "fail over and re-sync", never "retry me".
    fn fragment_snapshot(&self, frag: usize, fp: u64) -> Result<Database> {
        let frags = self.frags.read().unwrap_or_else(|e| e.into_inner());
        match frags.get(&frag) {
            Some((have, db)) if *have == fp => Ok(db.clone()),
            Some((have, _)) => Err(ServerError::FragMissing {
                frag,
                detail: format!("stale copy {have:016x}, coordinator expects {fp:016x}"),
            }),
            None => Err(ServerError::FragMissing {
                frag,
                detail: "no such fragment synced to this worker".to_string(),
            }),
        }
    }

    /// Number of synced fragments this worker holds.
    pub fn fragment_count(&self) -> usize {
        self.frags.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Apply a fragment-scoped `append`/`retract` (coordinator use):
    /// mutate the named fragment's catalog in place through the same
    /// WAL apply routine the master path uses, then verify the result
    /// against the coordinator's declared post-delta fingerprint.
    /// Missing fragment or fingerprint mismatch both answer typed
    /// `no-frag` — the coordinator falls back to a full fragment
    /// re-sync, so a drifted replica can never silently diverge. Not
    /// WAL-logged: fragments are derived state, rebuilt by `sync` on
    /// recovery from the coordinator's own durable catalog.
    fn frag_mutate(
        &self,
        rel: &str,
        tsv_text: &str,
        frag: usize,
        expect_fp: u64,
        retract: bool,
    ) -> Result<(String, String)> {
        let delta = tsv::read_tsv(std::io::Cursor::new(tsv_text.as_bytes()))
            .map_err(|e| ServerError::Parse(e.to_string()))?;
        if delta.name() != rel {
            return Err(ServerError::Proto(format!(
                "header names relation `{rel}` but TSV is for `{}`",
                delta.name()
            )));
        }
        let verb = if retract {
            "retracted from"
        } else {
            "appended to"
        };
        let record = if retract {
            WalRecord::Retract {
                tsv: tsv_text.to_string(),
            }
        } else {
            WalRecord::Append {
                tsv: tsv_text.to_string(),
            }
        };
        let mut frags = self.frags.write().unwrap_or_else(|e| e.into_inner());
        let Some((_, db)) = frags.get(&frag) else {
            return Err(ServerError::FragMissing {
                frag,
                detail: "no such fragment synced to this worker".to_string(),
            });
        };
        let mut next = db.clone();
        Wal::apply(&mut next, &record).map_err(storage_error)?;
        let fp = next.fingerprint();
        if fp != expect_fp {
            return Err(ServerError::FragMissing {
                frag,
                detail: format!(
                    "delta left fragment at {fp:016x}, coordinator expects {expect_fp:016x}"
                ),
            });
        }
        frags.insert(frag, (fp, next));
        Ok((
            format!("{{\"frag\":{frag},\"relation\":\"{rel}\",\"fp\":\"{fp:016x}\"}}"),
            format!("delta {verb} `{rel}` in fragment {frag}"),
        ))
    }

    fn load(&self, text: &str) -> Result<(String, String)> {
        let rel = tsv::read_tsv(std::io::Cursor::new(text.as_bytes()))
            .map_err(|e| ServerError::Parse(e.to_string()))?;
        let name = rel.name().to_string();
        let n = rel.len();
        let record = WalRecord::Put {
            relations: vec![text.to_string()],
        };
        let fp = self.commit_record(&record, None)?;
        Ok((
            format!(
                "{{\"relation\":\"{}\",\"tuples\":{n},\"fp\":\"{fp:016x}\"}}",
                json_escape(&name)
            ),
            format!("loaded {name} [{n} tuples]"),
        ))
    }

    /// Handle an admitted `append`: stream a TSV delta into one
    /// relation (set-semantics union) through the WAL. Admitted rather
    /// than light because the union re-sorts the whole target relation
    /// and the durable commit fsyncs. Called on a pool worker.
    pub fn handle_append_admitted(
        &self,
        rel: &str,
        tsv: &str,
        frag: Option<(usize, u64)>,
    ) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = match frag {
            Some((frag, fp)) => self.frag_mutate(rel, tsv, frag, fp, false),
            None => self.append(rel, tsv),
        };
        match outcome {
            Ok((meta, body)) => Response::Ok { meta, body },
            Err(e) => Response::from_error(&e),
        }
    }

    fn append(&self, rel: &str, tsv_text: &str) -> Result<(String, String)> {
        // Parse before touching the WAL so a malformed delta fails
        // typed without a durability round trip, and cross-check the
        // request header's relation name against the TSV's own — a
        // mis-framed body can never mutate the wrong relation.
        let delta = tsv::read_tsv(std::io::Cursor::new(tsv_text.as_bytes()))
            .map_err(|e| ServerError::Parse(e.to_string()))?;
        if delta.name() != rel {
            return Err(ServerError::Proto(format!(
                "append header names rel={rel} but the TSV header names {}",
                delta.name()
            )));
        }
        let before = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            db.get(rel).map_or(0, Relation::len)
        };
        let record = WalRecord::Append {
            tsv: tsv_text.to_string(),
        };
        let fp = self.commit_record(&record, Some(rel))?;
        let after = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            db.get(rel).map_or(0, Relation::len)
        };
        let added = after.saturating_sub(before);
        Ok((
            format!(
                "{{\"relation\":\"{}\",\"tuples\":{after},\"added\":{added},\"fp\":\"{fp:016x}\"}}",
                json_escape(rel)
            ),
            format!("appended {added} new tuple(s) to {rel} [{after} total]"),
        ))
    }

    /// Handle an admitted `retract`: subtract a TSV delta from one
    /// relation (set-semantics difference; absent tuples are ignored)
    /// through the WAL. Admitted for the same reason as `append`.
    /// Called on a pool worker.
    pub fn handle_retract_admitted(
        &self,
        rel: &str,
        tsv: &str,
        frag: Option<(usize, u64)>,
    ) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = match frag {
            Some((frag, fp)) => self.frag_mutate(rel, tsv, frag, fp, true),
            None => self.retract(rel, tsv),
        };
        match outcome {
            Ok((meta, body)) => Response::Ok { meta, body },
            Err(e) => Response::from_error(&e),
        }
    }

    fn retract(&self, rel: &str, tsv_text: &str) -> Result<(String, String)> {
        // Same shape as `append`: parse + cross-check before the WAL
        // sees anything.
        let delta = tsv::read_tsv(std::io::Cursor::new(tsv_text.as_bytes()))
            .map_err(|e| ServerError::Parse(e.to_string()))?;
        if delta.name() != rel {
            return Err(ServerError::Proto(format!(
                "retract header names rel={rel} but the TSV header names {}",
                delta.name()
            )));
        }
        let before = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            db.get(rel).map_or(0, Relation::len)
        };
        let record = WalRecord::Retract {
            tsv: tsv_text.to_string(),
        };
        let fp = self.commit_record(&record, Some(rel))?;
        let after = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            db.get(rel).map_or(0, Relation::len)
        };
        let removed = before.saturating_sub(after);
        Ok((
            format!(
                "{{\"relation\":\"{}\",\"tuples\":{after},\"removed\":{removed},\
                 \"fp\":\"{fp:016x}\"}}",
                json_escape(rel)
            ),
            format!("retracted {removed} tuple(s) from {rel} [{after} remaining]"),
        ))
    }

    /// Apply one catalog mutation: apply the record to a copy of the
    /// catalog, commit it durably to the WAL (when configured), then
    /// install the copy and fix up the caches. Nothing is installed —
    /// let alone acknowledged — unless the record is already durable,
    /// so a crash at any point recovers a prefix of the acknowledged
    /// mutations, never a half-applied one. Returns the post-mutation
    /// catalog fingerprint — the value clients and the shard
    /// coordinator verify installs against. Crate-visible so the
    /// coordinator mutates its master catalog the same way.
    ///
    /// `touched` narrows cache invalidation for single-relation deltas:
    /// entries carrying maintenance state update themselves in place
    /// (the delta path), other entries whose query reads that relation
    /// are dropped, and the rest are re-keyed to the new fingerprint
    /// and keep serving. `None` (bulk mutations) clears both caches.
    pub(crate) fn commit_record(&self, record: &WalRecord, touched: Option<&str>) -> Result<u64> {
        let mut guard = self.db.write().unwrap_or_else(|e| e.into_inner());
        let old_fp = guard.fingerprint();
        // Pre/post images of the touched relation, for the delta join.
        let old_rel = touched.and_then(|rel| guard.get(rel).ok().cloned());
        let mut next = guard.clone();
        Wal::apply(&mut next, record).map_err(storage_error)?;
        let fp = next.fingerprint();
        if let Some(wal) = &self.wal {
            let mut w = unpoison(wal.lock());
            w.commit(record, fp).map_err(storage_error)?;
            // A failed compaction is non-fatal: the record above is
            // already durable and the old snapshot generation stays
            // authoritative — the log just keeps growing.
            if let Err(e) = w.maybe_compact(&next) {
                eprintln!("qf-serve: wal compaction failed ({e}); log keeps growing");
            }
        }
        let new_rel = touched.and_then(|rel| next.get(rel).ok().cloned());
        let db_new = next.clone();
        *guard = next;
        drop(guard);
        match touched {
            Some(rel) => {
                self.counters.delta_applied.fetch_add(1, Ordering::Relaxed);
                let touches = move |k: &CacheKey| k.query.contains(rel);
                let mut maintain = |entry: &mut CachedResult| {
                    self.maintain_entry(entry, rel, old_rel.as_ref(), new_rel.as_ref(), &db_new)
                };
                unpoison(self.result_cache.lock()).maintain_rekey(
                    old_fp,
                    fp,
                    &touches,
                    &mut maintain,
                );
                // Plan shapes stay dropped: plan choice depends on the
                // touched relation's statistics, which just changed.
                unpoison(self.plan_cache.lock()).retain_rekey(old_fp, fp, &touches);
            }
            None => {
                unpoison(self.result_cache.lock()).clear();
                unpoison(self.plan_cache.lock()).clear();
            }
        }
        Ok(fp)
    }

    /// Try to maintain one touched cache entry through its delta state:
    /// evaluate the delta join for the relation's pre/post images,
    /// refresh the entry's scored rows from the maintained multiset,
    /// and widen its baseline to vacuous (the maintained rows are the
    /// *full* unfiltered answer, so the entry now serves every
    /// threshold). Returns whether the entry survives; on any failure
    /// the view is untrustworthy and the entry is dropped for a cold
    /// recompute.
    fn maintain_entry(
        &self,
        entry: &mut CachedResult,
        rel: &str,
        old: Option<&Relation>,
        new: Option<&Relation>,
        db: &Database,
    ) -> bool {
        let Some(handle) = entry.delta.clone() else {
            self.counters.delta_rebuilds.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let (old, new) = match (old, new) {
            (Some(o), Some(n)) => (o.clone(), n.clone()),
            (None, Some(n)) => (
                Relation::from_rows(n.schema().clone(), Vec::new()),
                n.clone(),
            ),
            (Some(o), None) => {
                let empty = Relation::from_rows(o.schema().clone(), Vec::new());
                (o.clone(), empty)
            }
            // The record named this relation but did not create or
            // change it: the entry is still exact as-is.
            (None, None) => return true,
        };
        let mut view = unpoison(handle.lock());
        let applied = view
            .apply(rel, &old, &new, db, &DeltaLimits::default())
            .and_then(|r| {
                let schema = entry.scored.schema();
                let names = schema.columns()[..schema.arity() - 1].to_vec();
                view.scored_relation(&names).map(|scored| (r, scored))
            });
        match applied {
            Ok((r, scored)) => {
                entry.scored = scored;
                entry.baseline = vacuous_filter(&entry.baseline);
                entry.strategy = "delta".to_string();
                self.counters
                    .delta_maintained
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .recheck_tuples
                    .fetch_add(r.recheck_tuples, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // A failed apply leaves the view undefined: drop the
                // entry; the next request recomputes cold (and rebuilds
                // fresh maintenance state).
                self.counters.delta_rebuilds.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Server-wide counters as a one-line JSON object (`stats`).
    pub fn stats_json(&self) -> String {
        let c = &self.counters;
        let w = self.wal_counters.stats();
        let (relations, tuples, fp) = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            (db.len(), db.total_tuples(), db.fingerprint())
        };
        format!(
            "{{\"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\"rejected\":{},\
             \"timeouts\":{},\"cancelled\":{},\"conn_rejected\":{},\"conns\":{},\
             \"queue_depth\":{},\"queue_depth_max\":{},\"active\":{},\"live_workers\":{},\
             \"cached_results\":{},\"relations\":{relations},\"tuples\":{tuples},\
             \"fp\":\"{fp:016x}\",\"delta_applied\":{},\"delta_maintained\":{},\
             \"delta_rebuilds\":{},\"recheck_tuples\":{},\
             \"wal_records\":{},\"wal_bytes\":{},\"snapshots\":{},\
             \"compactions\":{},\"recovered_records\":{},\"recovery_ms\":{},\
             \"frags\":{},\"shutting_down\":{}}}",
            c.requests.load(Ordering::Relaxed),
            c.cache_hits.load(Ordering::Relaxed),
            c.cache_misses.load(Ordering::Relaxed),
            c.rejected.load(Ordering::Relaxed),
            c.timeouts.load(Ordering::Relaxed),
            c.cancelled.load(Ordering::Relaxed),
            c.conn_rejected.load(Ordering::Relaxed),
            c.conns.load(Ordering::Relaxed),
            c.queue_depth.load(Ordering::Relaxed),
            c.queue_depth_max.load(Ordering::Relaxed),
            c.active.load(Ordering::Relaxed),
            c.live_workers.load(Ordering::Relaxed),
            unpoison(self.result_cache.lock()).len(),
            c.delta_applied.load(Ordering::Relaxed),
            c.delta_maintained.load(Ordering::Relaxed),
            c.delta_rebuilds.load(Ordering::Relaxed),
            c.recheck_tuples.load(Ordering::Relaxed),
            w.wal_records,
            w.wal_bytes,
            w.snapshots,
            w.compactions,
            w.recovered_records,
            w.recovery_ms,
            self.fragment_count(),
            self.is_shutting_down(),
        )
    }
}

/// Map storage-layer failures onto wire errors: malformed TSV and
/// mismatched delta schemas are the client's fault (`parse`);
/// everything else — I/O, detected corruption, a poisoned WAL — is the
/// server's (`io`, not retryable: a mutation that failed ambiguously
/// must not be replayed blind).
fn storage_error(e: StorageError) -> ServerError {
    match &e {
        StorageError::Malformed { .. } | StorageError::ArityMismatch { .. } => {
            ServerError::Parse(e.to_string())
        }
        _ => ServerError::Io(e.to_string()),
    }
}

/// Parse a program, optionally overriding the filter threshold (the
/// `support=` request key — lets clients sweep thresholds over one
/// body, which is exactly the monotone-reuse sweet spot).
pub(crate) fn parse_program(text: &str, support: Option<i64>) -> Result<FlockProgram> {
    let program = FlockProgram::parse(text).map_err(|e| ServerError::Parse(e.to_string()))?;
    match support {
        None => Ok(program),
        Some(threshold) => {
            let old = program.flock().filter();
            let filter = FilterCondition { threshold, ..*old };
            let flock = QueryFlock::new(program.flock().query().clone(), filter)
                .map_err(|e| ServerError::Parse(e.to_string()))?;
            FlockProgram::new(program.views().to_vec(), flock)
                .map_err(|e| ServerError::Parse(e.to_string()))
        }
    }
}

/// Canonicalize a program and fingerprint it (`fingerprint` request —
/// also behind the shell's `flock fingerprint` command).
fn fingerprint(text: &str) -> Result<(String, String)> {
    let program = FlockProgram::parse(text).map_err(|e| ServerError::Parse(e.to_string()))?;
    let meta = format!(
        "{{\"fingerprint\":\"{:016x}\",\"params\":{}}}",
        program.fingerprint(),
        program.flock().params().len()
    );
    Ok((meta, program.canonical_text()))
}

/// Keep only the scored rows whose aggregate (last column) passes
/// `filter` — how a cached scored relation answers a subsumed partial
/// request exactly.
pub(crate) fn refilter_scored(scored: &Relation, filter: &FilterCondition) -> Relation {
    let arity = scored.schema().arity();
    let tuples = scored
        .iter()
        .filter(|t| filter.accepts(t.get(arity - 1)))
        .cloned()
        .collect();
    Relation::from_sorted_dedup(scored.schema().clone(), tuples)
}

/// Render a relation as TSV text — the response body format. Stable
/// bytes for a given relation, which is what makes "identical result
/// bytes" for cache hits a checkable guarantee.
pub fn render_tsv(rel: &Relation) -> String {
    let mut buf = Vec::new();
    tsv::write_tsv(rel, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("TSV output is UTF-8")
}
