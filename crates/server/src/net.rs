//! The TCP front end: framed accept loop, connection threads, and
//! shutdown wiring.
//!
//! One thread per connection reads framed requests in a loop. Light
//! requests (`ping`, `stats`, `load`, `gen`, `fingerprint`,
//! `shutdown`) are answered inline on the connection thread; `flock`
//! requests go through the admission queue to the worker pool, with
//! over-cap budgets rejected *before* queueing so an impossible
//! request never occupies a queue slot.
//!
//! The accept loop polls a nonblocking listener so it can observe the
//! shutdown flag; once `shutdown` is accepted it stops listening and
//! closes the admission queue, and [`Server::join`] then waits for the
//! workers to drain every admitted job.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use qf_storage::Database;

use crate::frame::{read_frame, write_frame, MAX_FRAME};
use crate::pool::{Job, WorkerPool};
use crate::protocol::{Request, Response};
use crate::service::{FlockService, ServerConfig};

/// A running server: bound listener, accept thread, worker pool.
pub struct Server {
    service: Arc<FlockService>,
    addr: SocketAddr,
    pool: WorkerPool,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the given catalog.
    pub fn serve(config: ServerConfig, db: Database, addr: &str) -> std::io::Result<Server> {
        let service = Arc::new(FlockService::new(config, db));
        let (pool, worker_handles) = WorkerPool::spawn(Arc::clone(&service));
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let accept_handle = {
            let service = Arc::clone(&service);
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("qf-accept".to_string())
                .spawn(move || accept_loop(&listener, &service, &pool))
                .expect("spawn accept thread")
        };
        Ok(Server {
            service,
            addr: local,
            pool,
            accept_handle,
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (tests, embedded use).
    pub fn service(&self) -> &Arc<FlockService> {
        &self.service
    }

    /// Request shutdown without a client connection (Ctrl-C path).
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
    }

    /// Wait for shutdown to complete: the accept thread to exit and the
    /// workers to drain every admitted job. Connection threads are
    /// detached — an idle keep-alive connection does not hold the
    /// server open.
    pub fn join(self) {
        let _ = self.accept_handle.join();
        // Belt and braces: the accept loop closes the queue on exit,
        // but close() is idempotent and this covers panicked loops.
        self.pool.close();
        for h in self.worker_handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<FlockService>, pool: &WorkerPool) {
    loop {
        if service.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let pool = pool.clone();
                let _ = std::thread::Builder::new()
                    .name("qf-conn".to_string())
                    .spawn(move || handle_connection(stream, &service, &pool));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    // Stop admitting; workers drain what was already accepted.
    pool.close();
}

fn handle_connection(stream: TcpStream, service: &Arc<FlockService>, pool: &WorkerPool) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // client hung up / broken stream
        };
        let response = dispatch(&payload, service, pool);
        // A rendered response past the frame cap would make write_frame
        // fail and silently kill the connection; send a typed budget
        // error instead so the client learns *why* (and can retry with
        // a tighter filter or row cap).
        let mut rendered = response.render();
        if rendered.len() > MAX_FRAME as usize {
            rendered = Response::Err {
                kind: "budget".to_string(),
                detail: format!(
                    "response is {} bytes, over the {MAX_FRAME}-byte frame cap; \
                     tighten the filter or set max-rows",
                    rendered.len()
                ),
            }
            .render();
        }
        if write_frame(&mut writer, rendered.as_bytes()).is_err() {
            return;
        }
    }
}

fn dispatch(payload: &[u8], service: &Arc<FlockService>, pool: &WorkerPool) -> Response {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return Response::Err {
                kind: "proto".to_string(),
                detail: "request payload is not UTF-8".to_string(),
            }
        }
    };
    let request = match Request::parse(text) {
        Ok(r) => r,
        Err(e) => return Response::from_error(&e),
    };
    match request {
        Request::Flock {
            text,
            support,
            limits,
        } => {
            // Over-cap budgets are rejected before queueing: typed
            // error, counted, and no queue slot wasted.
            if let Err(e) = service.admission_limits(&limits) {
                service.note_rejection();
                return Response::from_error(&e);
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                text,
                support,
                limits,
                reply: tx,
            };
            if let Err(e) = pool.submit(job) {
                return Response::from_error(&e);
            }
            rx.recv().unwrap_or(Response::Err {
                kind: "shutting-down".to_string(),
                detail: "worker exited before replying".to_string(),
            })
        }
        light => service.handle_light(&light),
    }
}
