//! The TCP front end: hardened accept loop, connection threads, and
//! shutdown wiring.
//!
//! One thread per connection reads framed requests in a loop. Light
//! requests (`ping`, `stats`, `load`, `gen`, `fingerprint`,
//! `shutdown`) are answered inline on the connection thread; `flock`,
//! `partial`, `append`, and `retract` requests are stamped with an absolute
//! deadline at admission and go through the admission queue to the
//! worker pool, with over-cap budgets rejected *before* queueing so an
//! impossible request never occupies a queue slot.
//!
//! Robustness decisions live here:
//!
//! * The accept loop never exits on an `accept()` error: transient
//!   failures (`ECONNABORTED`, fd exhaustion) are retried with bounded
//!   backoff — a refused handshake must not take the whole server down.
//! * Connections beyond [`crate::service::ServerConfig::max_conns`] are
//!   shed immediately with a typed `overloaded` response carrying a
//!   retry-after hint, before they consume a thread.
//! * Reads run under two timeouts: a generous *idle* timeout while
//!   waiting for the first byte of a frame (keep-alive grace) and a
//!   strict *I/O* timeout for the rest (slow-loris reaping). A peer
//!   that trickles bytes holds only its connection slot, never a
//!   worker — jobs are admitted on complete frames only.
//! * While a flock job is in flight, the connection thread polls its
//!   reply channel with [`mpsc::Receiver::recv_timeout`] (never a bare
//!   `recv`) and probes the socket for hangup; an abandoned request
//!   trips the job's cancellation token so the governor stops it
//!   mid-plan.
//!
//! The accept loop polls a nonblocking listener so it can observe the
//! shutdown flag; once `shutdown` is accepted it stops listening and
//! closes the admission queue, and [`Server::join`] then waits for the
//! workers to drain every admitted job.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qf_core::CancelToken;
use qf_storage::Database;

use crate::error::ServerError;
use crate::frame::{is_corruption, read_first_byte, read_frame_rest, write_frame, MAX_FRAME};
use crate::pool::{Job, JobPayload, WorkerPool};
use crate::protocol::{Request, Response};
use crate::service::{FlockService, LocalHandler, RequestHandler, ServerConfig};
use crate::transport::Transport;

/// How often the connection thread wakes while waiting for a worker
/// reply, to probe for client hangup and reply-stage deadline expiry.
const REPLY_POLL: Duration = Duration::from_millis(25);

/// Extra wall-clock allowed past a job's deadline for the worker's own
/// governor to trip and deliver the typed timeout. Only after deadline
/// + grace does the connection thread give up on the reply itself.
const REPLY_GRACE: Duration = Duration::from_secs(5);

/// A running server: bound listener, accept thread, worker pool.
pub struct Server {
    service: Arc<FlockService>,
    addr: SocketAddr,
    pool: WorkerPool,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the given catalog standalone: every request runs against
    /// the local service.
    pub fn serve(config: ServerConfig, db: Database, addr: &str) -> std::io::Result<Server> {
        let service = Arc::new(FlockService::new(config, db));
        Server::serve_handler(Arc::new(LocalHandler::new(service)), addr)
    }

    /// Bind `addr` and serve through an arbitrary [`RequestHandler`] —
    /// the shard coordinator plugs in here with the same accept loop,
    /// framing, admission queue, and worker pool as the standalone
    /// server.
    pub fn serve_handler(handler: Arc<dyn RequestHandler>, addr: &str) -> std::io::Result<Server> {
        let service = Arc::clone(handler.service());
        let (pool, worker_handles) = WorkerPool::spawn(Arc::clone(&handler));
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let accept_handle = {
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("qf-accept".to_string())
                .spawn(move || accept_loop(&listener, &handler, &pool))
                .expect("spawn accept thread")
        };
        Ok(Server {
            service,
            addr: local,
            pool,
            accept_handle,
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (tests, embedded use).
    pub fn service(&self) -> &Arc<FlockService> {
        &self.service
    }

    /// Request shutdown without a client connection (Ctrl-C path).
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
    }

    /// Wait for shutdown to complete: the accept thread to exit and the
    /// workers to drain every admitted job. Connection threads are
    /// detached — an idle keep-alive connection does not hold the
    /// server open.
    pub fn join(self) {
        let _ = self.accept_handle.join();
        // Belt and braces: the accept loop closes the queue on exit,
        // but close() is idempotent and this covers panicked loops.
        self.pool.close();
        for h in self.worker_handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, handler: &Arc<dyn RequestHandler>, pool: &WorkerPool) {
    let service = handler.service();
    // Bounded backoff for transient accept() failures (fd exhaustion,
    // kernel hiccups): sleep and retry, never exit — doubling up to a
    // ceiling, reset by any successful accept.
    const BACKOFF_MIN: Duration = Duration::from_millis(10);
    const BACKOFF_MAX: Duration = Duration::from_secs(1);
    let mut backoff = BACKOFF_MIN;
    loop {
        if service.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = BACKOFF_MIN;
                let cap = service.config.max_conns.max(1);
                // Reserve a connection slot; shed the connection with a
                // typed response if the cap is reached.
                let live = service.counters.conns.fetch_add(1, Ordering::SeqCst);
                if live >= cap {
                    service.counters.conns.fetch_sub(1, Ordering::SeqCst);
                    shed_connection(stream, service, live, cap);
                    continue;
                }
                let handler2 = Arc::clone(handler);
                let pool = pool.clone();
                let spawned = std::thread::Builder::new()
                    .name("qf-conn".to_string())
                    .spawn(move || {
                        handle_connection(Box::new(stream), &handler2, &pool);
                        handler2
                            .service()
                            .counters
                            .conns
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // Thread exhaustion is transient too: release the
                    // slot and back off instead of dying.
                    service.counters.conns.fetch_sub(1, Ordering::SeqCst);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(BACKOFF_MIN);
            }
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {
                // The peer gave up while queued in the backlog; nothing
                // is wrong with *us*. Log and keep accepting.
                eprintln!("qf-serve: accept: connection aborted by peer ({e})");
            }
            Err(e) => {
                eprintln!(
                    "qf-serve: accept error ({e}); retrying in {} ms",
                    backoff.as_millis()
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
    }
    // Stop admitting; workers drain what was already accepted.
    pool.close();
}

/// Refuse a connection over the cap: count it, send the typed
/// `overloaded` response with a retry-after hint (best effort, off the
/// accept thread so a slow peer cannot stall the listener), and close.
fn shed_connection(stream: TcpStream, service: &Arc<FlockService>, live: usize, cap: usize) {
    service.note_conn_rejected();
    let retry_after_ms = service.config.retry_after_ms;
    let _ = std::thread::Builder::new()
        .name("qf-shed".to_string())
        .spawn(move || {
            let mut t: Box<dyn Transport> = Box::new(stream);
            let _ = t.set_write_timeout(Some(Duration::from_millis(1000)));
            let resp = Response::from_error(&ServerError::ConnRejected {
                live,
                cap,
                retry_after_ms,
            });
            let _ = write_frame(&mut t, resp.render().as_bytes());
            let _ = t.shutdown();
        });
}

fn millis_opt(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

fn handle_connection(
    mut conn: Box<dyn Transport>,
    handler: &Arc<dyn RequestHandler>,
    pool: &WorkerPool,
) {
    let config = &handler.service().config;
    let idle = millis_opt(config.idle_timeout_ms);
    let strict = millis_opt(config.io_timeout_ms);
    loop {
        // Wait for the first byte of the next frame under the generous
        // idle timeout: a keep-alive connection may sit quietly between
        // requests, but not forever.
        if conn.set_read_timeout(idle).is_err() {
            return;
        }
        let first = match read_first_byte(&mut conn) {
            Ok(None) => return, // clean close at a frame boundary
            Ok(Some(b)) => b,
            Err(e) if is_timeout(&e) => return, // idle too long: reap
            Err(_) => return,
        };
        // The frame has started: the rest must arrive promptly. This is
        // the slow-loris bound — a peer trickling bytes is reaped after
        // one strict timeout, and since no job is admitted until the
        // frame completes, it never held a worker slot.
        if conn.set_read_timeout(strict).is_err() {
            return;
        }
        let payload = match read_frame_rest(&mut conn, first) {
            Ok(p) => p,
            Err(e) if is_corruption(&e) => {
                // Detected wire corruption: tell the client (typed, so
                // its retry policy can resend safely — the request was
                // never parsed, let alone executed), then drop the
                // connection: after a corrupt frame the stream offset
                // can no longer be trusted.
                let resp = Response::Err {
                    kind: "proto".to_string(),
                    detail: format!("{e}"),
                };
                let _ = conn.set_write_timeout(strict);
                let _ = write_frame(&mut conn, resp.render().as_bytes());
                let _ = conn.shutdown();
                return;
            }
            Err(_) => return, // truncated / timed out / reset: reap
        };
        let response = dispatch(&payload, handler, pool, conn.as_mut());
        // A rendered response past the frame cap would make write_frame
        // fail and silently kill the connection; send a typed budget
        // error instead so the client learns *why* (and can retry with
        // a tighter filter or row cap).
        let mut rendered = response.render();
        if rendered.len() > MAX_FRAME as usize {
            rendered = Response::Err {
                kind: "budget".to_string(),
                detail: format!(
                    "response is {} bytes, over the {MAX_FRAME}-byte frame cap; \
                     tighten the filter or set max-rows",
                    rendered.len()
                ),
            }
            .render();
        }
        if conn.set_write_timeout(strict).is_err() {
            return;
        }
        if write_frame(&mut conn, rendered.as_bytes()).is_err() {
            return;
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn dispatch(
    payload: &[u8],
    handler: &Arc<dyn RequestHandler>,
    pool: &WorkerPool,
    conn: &mut dyn Transport,
) -> Response {
    let service = handler.service();
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return Response::Err {
                kind: "proto".to_string(),
                detail: "request payload is not UTF-8".to_string(),
            }
        }
    };
    let request = match Request::parse(text) {
        Ok(r) => r,
        Err(e) => return Response::from_error(&e),
    };
    // Heavy requests go through admission; everything else is answered
    // inline on the connection thread.
    let (job_payload, limits) = match request {
        Request::Flock {
            text,
            support,
            limits,
        } => (JobPayload::Flock { text, support }, limits),
        Request::Partial {
            text,
            scratch,
            limits,
            frag,
        } => (
            JobPayload::Partial {
                text,
                scratch,
                frag,
            },
            limits,
        ),
        Request::Append { rel, tsv, frag } => (
            JobPayload::Append { rel, tsv, frag },
            crate::protocol::RequestLimits::default(),
        ),
        Request::Retract { rel, tsv, frag } => (
            JobPayload::Retract { rel, tsv, frag },
            crate::protocol::RequestLimits::default(),
        ),
        light => return handler.handle_light(&light),
    };
    // Over-cap budgets are rejected before queueing: typed error,
    // counted, and no queue slot wasted.
    let effective = match service.admission_limits(&limits) {
        Ok(eff) => eff,
        Err(e) => {
            service.note_rejection();
            return Response::from_error(&e);
        }
    };
    // Stamp the deadline *now*, at admission: time spent queued counts
    // against the request's budget, and a job that expires in the queue
    // is rejected typed without executing.
    let budget_ms = effective.timeout_ms.unwrap_or(0);
    let deadline = effective
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        payload: job_payload,
        limits,
        deadline,
        budget_ms,
        cancel: cancel.clone(),
        reply: tx,
    };
    if let Err(e) = pool.submit(job) {
        return Response::from_error(&e);
    }
    await_reply(&rx, deadline, budget_ms, &cancel, service, conn)
}

/// Wait for the worker's reply without ever blocking forever: poll the
/// channel, probe the socket for hangup (tripping the job's
/// cancellation token so the governor stops it mid-plan), and bound the
/// wait by the request deadline plus a grace period for the worker's
/// own governor to deliver the typed timeout first.
fn await_reply(
    rx: &mpsc::Receiver<Response>,
    deadline: Option<Instant>,
    budget_ms: u64,
    cancel: &CancelToken,
    service: &Arc<FlockService>,
    conn: &mut dyn Transport,
) -> Response {
    loop {
        match rx.recv_timeout(REPLY_POLL) {
            Ok(resp) => return resp,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker died (pool closed mid-job or panicked
                // past its catch): typed, not a hang — and it carries
                // the same retry-after hint every other shutting-down
                // rejection sends, so a backing-off client redials at
                // the hinted pace instead of hammering a drain.
                let e = ServerError::ShuttingDown {
                    retry_after_ms: service.config.retry_after_ms,
                };
                return Response::Err {
                    kind: e.kind().to_string(),
                    detail: format!("worker exited before replying; {e}"),
                };
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if conn.peer_gone() {
                    // The client hung up: stop the job mid-plan. The
                    // worker observes the token and accounts the
                    // cancellation; our response goes to a dead socket
                    // and the connection loop reaps it.
                    cancel.cancel();
                    return Response::from_error(&ServerError::Cancelled);
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d + REPLY_GRACE {
                        // The worker's governor should have tripped the
                        // deadline long ago; it is stuck somewhere
                        // non-cooperative. Give up on the reply, typed.
                        cancel.cancel();
                        service.note_timeout();
                        return Response::from_error(&ServerError::Timeout {
                            stage: "reply",
                            budget_ms,
                        });
                    }
                }
            }
        }
    }
}
