//! The byte-stream seam between the protocol and the network, plus a
//! deterministic fault injector over it.
//!
//! Everything the server and client do to a connection goes through the
//! [`Transport`] trait — read, write, timeouts, a hangup probe — with
//! two implementations:
//!
//! * [`std::net::TcpStream`]: the production transport; a thin
//!   delegation.
//! * [`ChaosNet`]: a seed-driven fault-injecting wrapper over any
//!   transport, mirroring `qf_storage::vfs::ChaosFs` for the wire. It
//!   perturbs traffic at scheduled injection points — stalls
//!   ([`NetFault::Stall`]), short writes ([`NetFault::ShortWrite`]),
//!   connection resets ([`NetFault::Reset`]), and single-bit corruption
//!   ([`NetFault::BitFlip`]) — so the retry/timeout/checksum policies
//!   can be exercised in-process, reproducibly, without `tc` or
//!   firewall tricks.
//!
//! Determinism: every faultable operation draws a number from a shared
//! atomic counter and hashes it (splitmix64) with the seed, so one
//! [`NetChaos`] handle yields the same fault sequence for the same
//! sequence of operations — including across reconnects, which is what
//! lets a chaos-matrix test drive a retrying client deterministically.
//! Tests can also pin exact faults with [`NetChaos::with_fault`] ("the
//! 3rd read stalls"), independent of the random stream.
//!
//! Faults that *lie* (bit flips) are precisely what the `QFN2` frame
//! checksums in [`crate::frame`] exist to catch: a corrupted frame is
//! always detected by the verifying reader and surfaced as a typed
//! `proto` error, never served as a garbage parse.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A bidirectional byte stream the framed protocol can run over.
pub trait Transport: Read + Write + Send {
    /// Bound how long a single read may block (`None` = forever).
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;
    /// Bound how long a single write may block (`None` = forever).
    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;
    /// Non-destructive liveness probe: has the peer hung up? Must not
    /// consume buffered data and must return quickly. Used by the
    /// server to detect abandoned requests while a job is in flight.
    fn peer_gone(&mut self) -> bool;
    /// Tear the connection down (both directions), unblocking any
    /// reader on the other side.
    fn shutdown(&mut self) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }

    fn peer_gone(&mut self) -> bool {
        // A 1 ms peeked read: EOF means the peer closed; data or a
        // timeout means it is still there. The previous timeout is
        // restored so the probe is invisible to the frame reader.
        let saved = TcpStream::read_timeout(self).ok().flatten();
        if TcpStream::set_read_timeout(self, Some(Duration::from_millis(1))).is_err() {
            return true;
        }
        let mut b = [0u8; 1];
        let gone = match self.peek(&mut b) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                false
            }
            Err(_) => true,
        };
        let _ = TcpStream::set_read_timeout(self, saved);
        gone
    }

    fn shutdown(&mut self) -> io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

/// A network fault class [`ChaosNet`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFault {
    /// The operation completes but only after a deterministic delay —
    /// a congested or half-dead link. Policy: per-connection read/write
    /// timeouts bound the damage.
    Stall,
    /// A write accepts only a prefix of the buffer (honestly reported);
    /// correct callers loop, incorrect ones tear frames — which the
    /// `QFN2` checksum then catches on the far side.
    ShortWrite,
    /// The connection dies (`ECONNRESET`); every later operation on
    /// this transport fails too. Policy: typed `io` error, reconnect
    /// and retry.
    Reset,
    /// One bit of the transferred bytes is flipped in flight. Policy:
    /// the frame checksum detects it; the victim sees a typed `proto`
    /// error, never a garbage parse.
    BitFlip,
}

/// The operation classes network faults are scheduled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetOp {
    /// A `read` call on the transport.
    Read,
    /// A `write` call on the transport.
    Write,
}

impl NetOp {
    fn index(self) -> usize {
        match self {
            NetOp::Read => 0,
            NetOp::Write => 1,
        }
    }

    /// Faults that make sense for this class, in the order the random
    /// stream indexes them.
    fn applicable(self) -> &'static [NetFault] {
        match self {
            NetOp::Read => &[NetFault::Stall, NetFault::Reset, NetFault::BitFlip],
            NetOp::Write => &[
                NetFault::Stall,
                NetFault::ShortWrite,
                NetFault::Reset,
                NetFault::BitFlip,
            ],
        }
    }
}

const N_NET_OPS: usize = 2;

/// One pinned injection point: the `nth` occurrence (1-based) of an
/// operation class suffers `fault`.
#[derive(Debug, Clone, Copy)]
struct ScheduledNetFault {
    op: NetOp,
    nth: u64,
    fault: NetFault,
}

#[derive(Debug)]
struct NetChaosState {
    seed: u64,
    /// Average faultable operations between random faults; `0` disables
    /// the random stream (scheduled faults still fire).
    fault_every: u64,
    /// Longest stall a [`NetFault::Stall`] may inject, milliseconds.
    max_stall_ms: u64,
    ops: AtomicU64,
    op_counts: [AtomicU64; N_NET_OPS],
    schedule: Mutex<Vec<ScheduledNetFault>>,
    injected: AtomicU64,
    log: Mutex<Vec<(NetOp, NetFault)>>,
}

impl NetChaosState {
    fn decide(&self, op: NetOp) -> Option<(NetFault, u64)> {
        let occ = self.op_counts[op.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let h = splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let scheduled = {
            let sched = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
            sched
                .iter()
                .find(|s| s.op == op && s.nth == occ)
                .map(|s| s.fault)
        };
        let fault = scheduled.or_else(|| {
            if self.fault_every == 0 || !h.is_multiple_of(self.fault_every) {
                return None;
            }
            let menu = op.applicable();
            Some(menu[((h >> 32) % menu.len() as u64) as usize])
        })?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((op, fault));
        Some((fault, h))
    }
}

/// Shared chaos driver: one seed-keyed fault stream that survives
/// reconnects. [`NetChaos::wrap`] produces a [`ChaosNet`] transport
/// drawing from this stream; wrapping each reconnected socket with the
/// same handle keeps the whole session deterministic.
#[derive(Debug, Clone)]
pub struct NetChaos {
    state: Arc<NetChaosState>,
}

impl NetChaos {
    /// Random faults driven by `seed`, roughly one per `fault_every`
    /// faultable operations.
    pub fn seeded(seed: u64, fault_every: u64) -> NetChaos {
        NetChaos {
            state: Arc::new(NetChaosState {
                seed,
                fault_every,
                max_stall_ms: 120,
                ops: AtomicU64::new(0),
                op_counts: Default::default(),
                schedule: Mutex::new(Vec::new()),
                injected: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// No random faults; only faults pinned via [`NetChaos::with_fault`].
    pub fn quiet() -> NetChaos {
        NetChaos::seeded(0, 0)
    }

    /// Pin a fault: the `nth` (1-based) occurrence of `op` suffers
    /// `fault`, regardless of the random stream.
    pub fn with_fault(self, op: NetOp, nth: u64, fault: NetFault) -> NetChaos {
        self.state
            .schedule
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ScheduledNetFault { op, nth, fault });
        self
    }

    /// Wrap a transport so its traffic draws faults from this stream.
    pub fn wrap(&self, inner: Box<dyn Transport>) -> ChaosNet {
        ChaosNet {
            inner,
            state: Arc::clone(&self.state),
            dead: false,
        }
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// The sequence of injected faults (op, fault), for assertions.
    pub fn injection_log(&self) -> Vec<(NetOp, NetFault)> {
        self.state
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

fn reset_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "chaos: connection reset by peer",
    )
}

/// A fault-injecting transport over any inner [`Transport`]. Created by
/// [`NetChaos::wrap`]; all clones of one [`NetChaos`] share one fault
/// stream.
pub struct ChaosNet {
    inner: Box<dyn Transport>,
    state: Arc<NetChaosState>,
    /// A [`NetFault::Reset`] fired: the connection is dead and every
    /// later operation fails like a real reset socket.
    dead: bool,
}

impl ChaosNet {
    fn stall(&self, h: u64) {
        let ms = h % self.state.max_stall_ms.max(1) + 5;
        std::thread::sleep(Duration::from_millis(ms));
    }
}

impl Read for ChaosNet {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        match self.state.decide(NetOp::Read) {
            None => self.inner.read(buf),
            Some((NetFault::Stall, h)) => {
                self.stall(h);
                self.inner.read(buf)
            }
            Some((NetFault::Reset, _)) => {
                self.dead = true;
                let _ = self.inner.shutdown();
                Err(reset_err())
            }
            Some((NetFault::BitFlip, h)) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let bit = (h as usize) % (n * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            // ShortWrite is not scheduled on reads; treat as a stall if
            // the random menu ever changes.
            Some((NetFault::ShortWrite, h)) => {
                self.stall(h);
                self.inner.read(buf)
            }
        }
    }
}

impl Write for ChaosNet {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        match self.state.decide(NetOp::Write) {
            None => self.inner.write(buf),
            Some((NetFault::Stall, h)) => {
                self.stall(h);
                self.inner.write(buf)
            }
            Some((NetFault::ShortWrite, _)) => {
                // Accept only the first half (at least one byte) and
                // report it honestly: `write_all` callers loop and lose
                // nothing; raw `write` callers that ignore the count
                // would tear the frame — which the checksum catches.
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let n = (buf.len() / 2).max(1);
                self.inner.write_all(&buf[..n])?;
                Ok(n)
            }
            Some((NetFault::Reset, _)) => {
                self.dead = true;
                let _ = self.inner.shutdown();
                Err(reset_err())
            }
            Some((NetFault::BitFlip, h)) => {
                if buf.is_empty() {
                    return Ok(0);
                }
                let mut flipped = buf.to_vec();
                let bit = (h as usize) % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_all(&flipped)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(reset_err());
        }
        self.inner.flush()
    }
}

impl Transport for ChaosNet {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    fn peer_gone(&mut self) -> bool {
        self.dead || self.inner.peer_gone()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        self.inner.shutdown()
    }
}

/// splitmix64: the same tiny deterministic mixer the chaos VFS uses —
/// the whole fault stream derives from it, so no `rand` dependency is
/// needed.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};

    /// An in-memory loopback transport for unit tests: what one side
    /// writes, the same side reads back.
    #[derive(Default)]
    struct Loopback {
        buf: std::io::Cursor<Vec<u8>>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.buf.read(buf)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let pos = self.buf.position();
            self.buf.set_position(self.buf.get_ref().len() as u64);
            let n = self.buf.write(buf)?;
            self.buf.set_position(pos);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Transport for Loopback {
        fn set_read_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn set_write_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn peer_gone(&mut self) -> bool {
            false
        }
        fn shutdown(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let chaos = NetChaos::quiet();
        let mut t = chaos.wrap(Box::new(Loopback::default()));
        write_frame(&mut t, b"hello").unwrap();
        assert_eq!(read_frame(&mut t).unwrap().unwrap(), b"hello");
        assert_eq!(chaos.injected(), 0);
    }

    #[test]
    fn scheduled_reset_kills_the_connection_permanently() {
        let chaos = NetChaos::quiet().with_fault(NetOp::Write, 2, NetFault::Reset);
        let mut t = chaos.wrap(Box::new(Loopback::default()));
        assert!(t.write(b"first").is_ok());
        let err = t.write(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Dead is dead: later operations fail too, like a real socket.
        assert_eq!(
            t.write(b"third").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        let mut b = [0u8; 1];
        assert_eq!(
            t.read(&mut b).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert!(t.peer_gone());
        assert_eq!(chaos.injection_log(), vec![(NetOp::Write, NetFault::Reset)]);
    }

    #[test]
    fn bit_flip_on_write_is_caught_by_the_frame_checksum() {
        // Flip a bit in the 3rd write — the payload chunk of the frame
        // (magic, length, payload, checksum are separate write calls).
        let chaos = NetChaos::quiet().with_fault(NetOp::Write, 3, NetFault::BitFlip);
        let mut t = chaos.wrap(Box::new(Loopback::default()));
        write_frame(&mut t, b"some payload bytes").unwrap();
        let err = read_frame(&mut t).unwrap_err();
        assert!(crate::frame::is_corruption(&err), "{err}");
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn short_write_loses_nothing_under_write_all() {
        let chaos = NetChaos::quiet().with_fault(NetOp::Write, 3, NetFault::ShortWrite);
        let mut t = chaos.wrap(Box::new(Loopback::default()));
        write_frame(&mut t, b"0123456789").unwrap();
        assert_eq!(read_frame(&mut t).unwrap().unwrap(), b"0123456789");
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn seeded_stream_is_deterministic_and_shared_across_wraps() {
        let run = |seed: u64| {
            let chaos = NetChaos::seeded(seed, 3);
            let mut outcomes = Vec::new();
            // Two "connections" drawing from one stream, like a
            // retrying client reconnecting after a reset.
            for _conn in 0..2 {
                let mut t = chaos.wrap(Box::new(Loopback::default()));
                for i in 0..20 {
                    outcomes.push(t.write(format!("{i}").as_bytes()).is_ok());
                }
            }
            (outcomes, chaos.injection_log())
        };
        let (a1, log1) = run(42);
        let (a2, log2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(log1, log2);
        assert!(!log1.is_empty(), "fault_every=3 over 40 writes must fire");
        let (b, _) = run(43);
        assert_ne!(a1, b, "different seeds should differ (w.h.p.)");
    }
}
