//! Length-framed transport: every message is a 4-byte big-endian
//! length followed by that many bytes of UTF-8 payload.
//!
//! Framing keeps the protocol self-delimiting over a plain TCP stream —
//! a reader never guesses where a request ends, and a half-written
//! frame is detected as a truncated read instead of silently merging
//! into the next message (the same reasoning as the journal's framed
//! snapshot records).

use std::io::{Read, Write};

/// Hard cap on a single frame, bytes. Keeps a malformed or malicious
/// length prefix from asking the server to allocate gigabytes.
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary (the
/// peer closed the connection); errors on truncation mid-frame or an
/// oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn truncation_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // length prefix + 2 payload bytes
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }
}
