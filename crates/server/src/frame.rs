//! Length-framed, checksummed transport (`QFN2`): every message is a
//! 4-byte magic, a 4-byte big-endian length, that many bytes of UTF-8
//! payload, and an 8-byte big-endian FNV-1a trailer over
//! `length ‖ payload`.
//!
//! Framing keeps the protocol self-delimiting over a plain byte stream —
//! a reader never guesses where a request ends, and a half-written
//! frame is detected as a truncated read instead of silently merging
//! into the next message. The checksum trailer extends to the wire the
//! discipline every spill run and journal snapshot already has
//! (`QFS2`/`QFR2` in `qf-storage::spill`): corruption in flight —
//! a flipped bit, a desynchronized stream, a truncated tail — surfaces
//! as a typed [`std::io::ErrorKind::InvalidData`] error that the server
//! maps to a `proto` response, never as a garbage parse served as data.

use std::io::{Read, Write};

use qf_storage::Fnv1a;

/// Frame magic: protocol family + version. A peer speaking the old
/// unversioned framing (or random bytes after desync) fails the magic
/// check on the first frame instead of misparsing lengths.
pub const MAGIC: &[u8; 4] = b"QFN2";

/// Hard cap on a single frame's payload, bytes. Keeps a malformed or
/// malicious length prefix from asking the server to allocate
/// gigabytes.
pub const MAX_FRAME: u32 = 64 << 20;

/// Bytes of framing overhead around a payload (magic + length +
/// checksum).
pub const FRAME_OVERHEAD: usize = 4 + 4 + 8;

fn frame_sum(len_be: [u8; 4], payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&len_be);
    h.write(payload);
    h.finish()
}

fn corrupt(detail: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("corrupt frame: {detail}"),
    )
}

/// Write one frame: magic, length prefix, payload, checksum trailer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    let len_be = len.to_be_bytes();
    w.write_all(MAGIC)?;
    w.write_all(&len_be)?;
    w.write_all(payload)?;
    w.write_all(&frame_sum(len_be, payload).to_be_bytes())?;
    w.flush()
}

/// Read the first byte of a frame. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection). Split out from
/// [`read_frame`] so the server can wait for this byte under a generous
/// idle timeout and read the rest under a strict one (slow-loris
/// reaping).
pub fn read_first_byte(r: &mut impl Read) -> std::io::Result<Option<u8>> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Read the remainder of a frame whose first byte was already consumed
/// by [`read_first_byte`]. Verifies the magic and the checksum trailer;
/// truncation mid-frame, a bad magic, an oversized length, and a
/// checksum mismatch are all [`std::io::ErrorKind::InvalidData`] /
/// `UnexpectedEof` errors, never a silently wrong payload.
pub fn read_frame_rest(r: &mut impl Read, first: u8) -> std::io::Result<Vec<u8>> {
    let mut magic = [first, 0, 0, 0];
    r.read_exact(&mut magic[1..])?;
    if &magic != MAGIC {
        return Err(corrupt(&format!(
            "bad magic {magic:02x?}, want {MAGIC:02x?}"
        )));
    }
    let mut len_be = [0u8; 4];
    r.read_exact(&mut len_be)?;
    let len = u32::from_be_bytes(len_be);
    if len > MAX_FRAME {
        return Err(corrupt(&format!("length {len} exceeds cap {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum_be = [0u8; 8];
    r.read_exact(&mut sum_be)?;
    if u64::from_be_bytes(sum_be) != frame_sum(len_be, &payload) {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(payload)
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary; errors
/// on truncation mid-frame, a corrupt magic/length/checksum, or an
/// oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    match read_first_byte(r)? {
        None => Ok(None),
        Some(first) => read_frame_rest(r, first).map(Some),
    }
}

/// Is this read error a detected frame corruption (as opposed to a
/// clean close, a timeout, or a reset)?
pub fn is_corruption(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::InvalidData
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn truncation_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..buf.len() {
            let mut r = std::io::Cursor::new(buf[..cut].to_vec());
            assert!(read_frame(&mut r).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.extend_from_slice(b"x");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn old_unversioned_framing_is_rejected() {
        // PR-5 framing: bare 4-byte length + payload. The magic check
        // refuses it instead of misreading "5" as part of a magic.
        let mut buf = 5u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"hello");
        let mut r = std::io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert!(is_corruption(&err), "{err}");
    }

    /// Acceptance criterion (wire mirror of the spill-frame property):
    /// flipping ANY single byte anywhere in a framed session is
    /// detected — no flip can smuggle a wrong payload through.
    #[test]
    fn every_single_byte_flip_in_a_framed_session_is_detected() {
        let messages: [&[u8]; 3] = [
            b"flock support=5\n\nQUERY: answer(B) :- r(B,$1)",
            b"",
            b"ok\n{\"results\":3}\n\nr\ta\n1\n2\n3\n",
        ];
        let mut pristine = Vec::new();
        for m in messages {
            write_frame(&mut pristine, m).unwrap();
        }
        // Sanity: the pristine session reads back exactly.
        let mut r = std::io::Cursor::new(pristine.clone());
        for m in messages {
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), m);
        }
        for i in 0..pristine.len() {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = pristine.clone();
                corrupt[i] ^= bit;
                let mut r = std::io::Cursor::new(corrupt);
                let outcome = (|| -> std::io::Result<Vec<Vec<u8>>> {
                    let mut got = Vec::new();
                    while let Some(p) = read_frame(&mut r)? {
                        got.push(p);
                    }
                    Ok(got)
                })();
                match outcome {
                    Err(_) => {}
                    Ok(got) => panic!(
                        "flip of bit {bit:#04x} at byte {i}/{} escaped: {got:?}",
                        pristine.len()
                    ),
                }
            }
        }
    }
}
