//! Typed server errors and their stable wire kinds.

use qf_core::{EngineError, FlockError};

/// Everything a request can fail with. Each variant maps to a stable
/// one-token `kind` carried on the wire (`err <kind>` status line), so
/// clients can branch on failure class without parsing prose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The admission queue is full: the server is at capacity and this
    /// request was rejected *before* consuming any execution resources.
    /// Retry later.
    Overloaded {
        /// Jobs queued when the request arrived.
        queue_depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The request asked for more than the server's per-request caps
    /// allow, or its governed evaluation tripped a budget (rows, bytes,
    /// deadline, cancellation).
    Budget(String),
    /// The server is draining for shutdown; no new work is accepted.
    ShuttingDown,
    /// The request frame or header line could not be understood.
    Proto(String),
    /// Flock/program/TSV text was rejected by a parser.
    Parse(String),
    /// Evaluation failed for a non-budget reason (unknown relation,
    /// unsafe query, …).
    Eval(String),
    /// Transport I/O failure (client side).
    Io(String),
}

impl ServerError {
    /// The stable wire token for this error class.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::Budget(_) => "budget",
            ServerError::ShuttingDown => "shutting-down",
            ServerError::Proto(_) => "proto",
            ServerError::Parse(_) => "parse",
            ServerError::Eval(_) => "eval",
            ServerError::Io(_) => "io",
        }
    }

    /// Classify an evaluation failure: governor budget trips become
    /// typed [`ServerError::Budget`] errors, parse-stage failures
    /// [`ServerError::Parse`], everything else [`ServerError::Eval`].
    pub fn from_eval(e: FlockError) -> ServerError {
        match &e {
            FlockError::Engine(EngineError::ResourceExhausted { .. } | EngineError::Cancelled) => {
                ServerError::Budget(e.to_string())
            }
            FlockError::Datalog(_) | FlockError::FilterParse { .. } => {
                ServerError::Parse(e.to_string())
            }
            _ => ServerError::Eval(e.to_string()),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "server overloaded: {queue_depth} request(s) queued (capacity {capacity})"
            ),
            ServerError::Budget(d) => write!(f, "budget: {d}"),
            ServerError::ShuttingDown => f.write_str("server is shutting down"),
            ServerError::Proto(d) => write!(f, "protocol: {d}"),
            ServerError::Parse(d) => write!(f, "parse: {d}"),
            ServerError::Eval(d) => write!(f, "evaluation: {d}"),
            ServerError::Io(d) => write!(f, "i/o: {d}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Server result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
