//! Typed server errors and their stable wire kinds.

use qf_core::{EngineError, FlockError};

/// Everything a request can fail with. Each variant maps to a stable
/// one-token `kind` carried on the wire (`err <kind>` status line), so
/// clients can branch on failure class without parsing prose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The admission queue is full: the server is at capacity and this
    /// request was rejected *before* consuming any execution resources.
    /// Retry later.
    Overloaded {
        /// Jobs queued when the request arrived.
        queue_depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The server is at its connection cap: this connection was shed
    /// before consuming a thread or queue slot. Carries a retry-after
    /// hint. Wire kind is `overloaded`, same as the queue-full case —
    /// clients back off identically for both.
    ConnRejected {
        /// Live connections when this one arrived.
        live: usize,
        /// The configured connection cap.
        cap: usize,
        /// Suggested backoff before reconnecting, milliseconds.
        retry_after_ms: u64,
    },
    /// The request asked for more than the server's per-request caps
    /// allow, or its governed evaluation tripped a budget (rows or
    /// bytes — deadline trips are [`ServerError::Timeout`]).
    Budget(String),
    /// The request's admission-stamped deadline expired — in the queue
    /// (never executed), mid-evaluation (aborted by the governor), or
    /// waiting for a worker reply. Retryable for idempotent requests.
    Timeout {
        /// Where the deadline tripped: `queue`, `eval`, or `reply`.
        stage: &'static str,
        /// The effective deadline budget, milliseconds.
        budget_ms: u64,
    },
    /// The request was abandoned: its client disconnected and the
    /// governor's cancellation token stopped the job early.
    Cancelled,
    /// A shard died mid-scatter and the coordinator could not recover
    /// (re-scatter also failed). Retryable: the coordinator's catalog
    /// is intact and a fresh attempt re-partitions from it.
    ShardLost {
        /// Zero-based index of the lost shard.
        shard: usize,
        /// What the shard RPC failed with.
        detail: String,
    },
    /// A fragment-scoped `partial` named a fragment this worker does
    /// not hold, or holds at a *different* fingerprint (a stale copy
    /// that missed a catalog push). Deliberately **not** retryable on
    /// the same connection: re-asking the same worker cannot help, so
    /// the coordinator's per-shard client surfaces it immediately and
    /// the coordinator fails over to a replica.
    FragMissing {
        /// Fragment id the request named.
        frag: usize,
        /// Why the worker refused (missing vs fingerprint mismatch).
        detail: String,
    },
    /// The server is draining for shutdown; no new work is accepted.
    /// Carries the same retry-after hint [`ServerError::ConnRejected`]
    /// sends, so a retrying client backs off and lands on whatever
    /// replaces the draining server instead of hammering it.
    ShuttingDown {
        /// Suggested backoff before retrying elsewhere, milliseconds.
        retry_after_ms: u64,
    },
    /// The request frame or header line could not be understood.
    Proto(String),
    /// Flock/program/TSV text was rejected by a parser.
    Parse(String),
    /// Evaluation failed for a non-budget reason (unknown relation,
    /// unsafe query, …).
    Eval(String),
    /// Transport I/O failure (client side).
    Io(String),
}

impl ServerError {
    /// The stable wire token for this error class.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Overloaded { .. } | ServerError::ConnRejected { .. } => "overloaded",
            ServerError::Budget(_) => "budget",
            ServerError::Timeout { .. } => "timeout",
            ServerError::Cancelled => "cancelled",
            ServerError::ShardLost { .. } => "shard-lost",
            ServerError::FragMissing { .. } => "no-frag",
            ServerError::ShuttingDown { .. } => "shutting-down",
            ServerError::Proto(_) => "proto",
            ServerError::Parse(_) => "parse",
            ServerError::Eval(_) => "eval",
            ServerError::Io(_) => "io",
        }
    }

    /// Is a *response* carrying this wire kind worth retrying? True for
    /// failures that are transient (`overloaded`, `timeout`,
    /// `shard-lost` — the cluster heals or re-partitions;
    /// `shutting-down` — the rejection certifies nothing ran, and a
    /// redial lands on whatever replaces the draining server) or that
    /// certify the request was never executed after a wire mangling
    /// (`proto` — the server could not even parse it, so resending is
    /// safe for any request, including mutations).
    pub fn retryable_kind(kind: &str) -> bool {
        matches!(
            kind,
            "overloaded" | "timeout" | "proto" | "shard-lost" | "shutting-down"
        )
    }

    /// Classify an evaluation failure: deadline trips become typed
    /// [`ServerError::Timeout`] errors, cancellation (the client went
    /// away) [`ServerError::Cancelled`], other governor budget trips
    /// [`ServerError::Budget`], parse-stage failures
    /// [`ServerError::Parse`], everything else [`ServerError::Eval`].
    pub fn from_eval(e: FlockError) -> ServerError {
        match &e {
            FlockError::Engine(EngineError::ResourceExhausted {
                resource: qf_core::Resource::Time,
                limit,
                ..
            }) => ServerError::Timeout {
                stage: "eval",
                budget_ms: *limit,
            },
            FlockError::Engine(EngineError::Cancelled) => ServerError::Cancelled,
            FlockError::Engine(EngineError::ResourceExhausted { .. }) => {
                ServerError::Budget(e.to_string())
            }
            FlockError::Datalog(_) | FlockError::FilterParse { .. } => {
                ServerError::Parse(e.to_string())
            }
            _ => ServerError::Eval(e.to_string()),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "server overloaded: {queue_depth} request(s) queued (capacity {capacity})"
            ),
            ServerError::ConnRejected {
                live,
                cap,
                retry_after_ms,
            } => write!(
                f,
                "server at its connection cap: {live} live (cap {cap}); \
                 retry-after-ms={retry_after_ms}"
            ),
            ServerError::Budget(d) => write!(f, "budget: {d}"),
            ServerError::Timeout { stage, budget_ms } => {
                write!(f, "deadline exceeded in {stage} (budget {budget_ms} ms)")
            }
            ServerError::Cancelled => {
                f.write_str("request cancelled: client disconnected before the result was ready")
            }
            ServerError::ShardLost { shard, detail } => {
                write!(f, "shard {shard} lost mid-scatter: {detail}")
            }
            ServerError::FragMissing { frag, detail } => {
                write!(f, "fragment {frag} not served here: {detail}")
            }
            ServerError::ShuttingDown { retry_after_ms } => write!(
                f,
                "server is shutting down; retry-after-ms={retry_after_ms}"
            ),
            ServerError::Proto(d) => write!(f, "protocol: {d}"),
            ServerError::Parse(d) => write!(f, "parse: {d}"),
            ServerError::Eval(d) => write!(f, "evaluation: {d}"),
            ServerError::Io(d) => write!(f, "i/o: {d}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Server result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
