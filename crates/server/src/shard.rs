//! `qf-shard`: scatter-gather flock execution over hash-partitioned
//! `qf-server` workers.
//!
//! The [`Coordinator`] is a [`RequestHandler`]: it plugs into the same
//! accept loop, framing, admission queue, and worker pool as the
//! standalone server ([`crate::net::Server::serve_handler`]), but
//! executes admitted flocks by **scatter-gather**:
//!
//! 1. The master catalog lives at the coordinator. Every mutation
//!    (`load`/`gen`) applies there first, then the catalog is
//!    hash-partitioned ([`qf_core::partition_database`], content-stable
//!    hashing) and re-pushed to every shard over the ordinary framed
//!    protocol.
//! 2. A flock that passes the shardability check
//!    ([`qf_core::shard_key_pos`]) is planned at the coordinator (plan
//!    search sees full-catalog statistics), then each `FILTER` step is
//!    sent to every shard as a `partial` request — the step as a
//!    mini-flock at a *vacuous* threshold, plus the already-merged
//!    upstream step outputs as scratch relations. Shards answer with
//!    scored `(params…, agg)` partials.
//! 3. The coordinator merges partials algebraically (`COUNT`/`SUM` add,
//!    `MIN`/`MAX` extremize — [`qf_core::merge_scored_partials`]),
//!    applies the **real** threshold globally, and broadcasts the
//!    surviving step output to the next step. A-priori pruning thus
//!    still happens between steps, on globally-correct counts, while
//!    no shard ever prunes locally (a globally frequent group can be
//!    locally rare — local pruning would be unsound).
//!
//! Failure model: a shard that dies mid-scatter (transport failure) is
//! **re-scattered** — the coordinator re-derives that shard's fragment
//! from the master catalog and evaluates the partial locally, so the
//! run converges with the same bytes. If even that fails, the request
//! gets a typed, retryable `shard-lost` error. A shard that answers
//! with a typed `timeout` propagates as a global deadline trip
//! (stage `shard`). Deadlines propagate: each partial carries the
//! *remaining* milliseconds of the admission-stamped budget.
//!
//! The monotone scored-result cache moves to the coordinator tier:
//! single-step runs are cached under the **vacuous** baseline (the
//! merged scored relation holds every group, so one sharded run
//! answers every future same-direction threshold of the query);
//! multi-step runs prune between steps and are cached at their own
//! threshold, exactly like the standalone server.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use qf_core::{
    best_plan_with, direct_plan, evaluate_scored_partial, flock_result_from_scored,
    merge_scored_partials, partial_flock, partition_database, scored_schema, shardable_program,
    vacuous_filter, CancelToken, ExecContext, FilterStep, FlockProgram, JoinOrderStrategy,
    QueryPlan,
};
use qf_storage::{tsv, Database, Relation, Schema, Tuple};

use crate::cache::{CacheKey, CachedResult};
use crate::client::{Client, ClientConfig};
use crate::error::{Result, ServerError};
use crate::pool::{Job, JobPayload};
use crate::protocol::{Request, RequestLimits, Response};
use crate::report::{extend_json, json_report, json_u64};
use crate::service::{
    parse_program, refilter_scored, render_tsv, FlockService, RequestHandler, ServerConfig,
};

/// Shard-tier configuration: the worker fleet and what is replicated.
#[derive(Clone)]
pub struct ShardConfig {
    /// Worker addresses (`host:port`), one per shard. Shard `k` owns
    /// the `k`-th hash fragment of every partitioned relation.
    pub addrs: Vec<String>,
    /// Relations replicated in full to every shard instead of being
    /// hash-partitioned (small dimension tables the shardability check
    /// may then treat as local everywhere).
    pub replicated: BTreeSet<String>,
    /// Robustness knobs for coordinator→shard RPC sessions.
    pub client: ClientConfig,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            addrs: Vec::new(),
            replicated: BTreeSet::new(),
            client: ClientConfig {
                // One transparent retry against a wobbly worker; real
                // death is handled by re-scatter, not by retrying
                // forever.
                retries: 1,
                ..ClientConfig::default()
            },
        }
    }
}

/// Builds a client session to a shard address — swappable so the chaos
/// tests can interpose [`crate::transport::NetChaos`] on every
/// coordinator→shard dial.
pub type ShardConnector = Arc<dyn Fn(&str, &ClientConfig) -> Result<Client> + Send + Sync>;

struct ShardSlot {
    addr: String,
    client: Mutex<Option<Client>>,
}

/// Coordinator-side counters, surfaced as distinct fields in `stats` —
/// never folded into the per-request counters of [`FlockService`] (a
/// shard's timeout is not this coordinator's timeout).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Partial RPCs attempted.
    pub scatters: AtomicU64,
    /// Dead-shard fragments recovered by local re-evaluation.
    pub rescatters: AtomicU64,
    /// Flock requests executed scatter-gather.
    pub sharded: AtomicU64,
    /// Flock requests that failed the shardability check and ran
    /// locally against the master catalog.
    pub local_fallbacks: AtomicU64,
}

/// The scatter-gather front end over a fleet of `qf-server` workers.
pub struct Coordinator {
    service: Arc<FlockService>,
    shards: Vec<ShardSlot>,
    replicated: BTreeSet<String>,
    client_config: ClientConfig,
    connector: ShardConnector,
    /// Coordinator-tier counters (distinct from the service's).
    pub shard_counters: ShardCounters,
}

/// What one shard's partial RPC produced.
enum ShardOutcome {
    /// A scored partial, parsed and ready to merge.
    Scored(Relation),
    /// Transport-level failure: the shard is presumed dead; the
    /// coordinator re-scatters its fragment locally.
    Dead(String),
    /// The shard answered with a typed error: propagate its class.
    Refused { kind: String, detail: String },
}

impl Coordinator {
    /// Build a coordinator over `shard.addrs` workers, holding `db` as
    /// the master catalog. Connections are dialed lazily; call
    /// [`Coordinator::push_catalog`] once the workers are reachable if
    /// `db` is non-empty (mutations re-push automatically).
    pub fn new(config: ServerConfig, shard: ShardConfig, db: Database) -> Coordinator {
        Coordinator {
            service: Arc::new(FlockService::new(config, db)),
            shards: shard
                .addrs
                .into_iter()
                .map(|addr| ShardSlot {
                    addr,
                    client: Mutex::new(None),
                })
                .collect(),
            replicated: shard.replicated,
            client_config: shard.client,
            connector: Arc::new(|addr, cfg| Client::connect_with(addr, cfg.clone())),
            shard_counters: ShardCounters::default(),
        }
    }

    /// Replace the dial function (chaos tests wrap each shard session
    /// in a fault-injecting transport).
    pub fn with_connector(mut self, connector: ShardConnector) -> Coordinator {
        self.connector = connector;
        self
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Run `f` over shard `k`'s session, dialing if needed. Any
    /// transport-level error tears the session down so the next call
    /// redials.
    fn with_client<T>(&self, k: usize, f: impl FnOnce(&mut Client) -> Result<T>) -> Result<T> {
        let slot = &self.shards[k];
        let mut guard = slot.client.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some((self.connector)(&slot.addr, &self.client_config)?);
        }
        let client = guard.as_mut().expect("session just ensured");
        match f(client) {
            Ok(v) => Ok(v),
            Err(e) => {
                *guard = None;
                Err(e)
            }
        }
    }

    /// Partition the master catalog and push every shard its fragment
    /// (replicated relations go whole to everyone). Called after every
    /// mutation; also available for initial seeding.
    pub fn push_catalog(&self) -> Result<()> {
        let (db, _) = self.service.snapshot();
        let frags = partition_database(&db, self.shards.len(), &self.replicated);
        for (k, frag) in frags.iter().enumerate() {
            for rel in frag.iter() {
                let body = render_tsv(rel);
                let resp =
                    self.with_client(k, |c| c.load(&body))
                        .map_err(|e| ServerError::ShardLost {
                            shard: k,
                            detail: e.to_string(),
                        })?;
                if let Response::Err { kind, detail } = resp {
                    return Err(ServerError::ShardLost {
                        shard: k,
                        detail: format!("load rejected ({kind}): {detail}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// One shard's partial RPC, classified for the gather loop.
    fn shard_partial(
        &self,
        k: usize,
        text: &str,
        scratch: &[String],
        limits: RequestLimits,
    ) -> ShardOutcome {
        self.shard_counters.scatters.fetch_add(1, Ordering::Relaxed);
        let sent = self.with_client(k, |c| c.partial(text, scratch.to_vec(), limits));
        match sent {
            Err(e) => ShardOutcome::Dead(e.to_string()),
            // A draining shard answers typed `shutting-down` on a still
            // -open session but will not serve this scatter or any
            // later one: drop the session and recover like a death.
            Ok(Response::Err { kind, detail }) if kind == "shutting-down" => {
                let slot = &self.shards[k];
                *slot.client.lock().unwrap_or_else(|e| e.into_inner()) = None;
                ShardOutcome::Dead(format!("shard draining: {detail}"))
            }
            Ok(Response::Err { kind, detail }) => ShardOutcome::Refused { kind, detail },
            Ok(Response::Ok { body, .. }) => {
                match tsv::read_tsv(std::io::Cursor::new(body.as_bytes())) {
                    Ok(rel) => ShardOutcome::Scored(rel),
                    Err(e) => ShardOutcome::Refused {
                        kind: "proto".to_string(),
                        detail: format!("unparseable scored partial: {e}"),
                    },
                }
            }
        }
    }

    /// Scatter one step to every shard and gather the scored partials.
    /// A dead shard's fragment is re-derived from the master snapshot
    /// and evaluated locally (re-scatter); a typed shard error maps to
    /// the corresponding coordinator error.
    #[allow(clippy::too_many_arguments)]
    fn scatter_step(
        &self,
        text: &str,
        scratch: &[String],
        limits: RequestLimits,
        master: &Database,
        scratch_rels: &[(String, Relation)],
        mini: &qf_core::QueryFlock,
        ctx: &ExecContext,
        rescatters: &mut u64,
    ) -> Result<Vec<Relation>> {
        let n = self.shards.len();
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|k| s.spawn(move || self.shard_partial(k, text, scratch, limits)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| ShardOutcome::Refused {
                        kind: "eval".to_string(),
                        detail: "scatter thread panicked".to_string(),
                    })
                })
                .collect()
        });
        let mut parts = Vec::with_capacity(n);
        let mut frags: Option<Vec<Database>> = None;
        for (k, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                ShardOutcome::Scored(rel) => parts.push(rel),
                ShardOutcome::Refused { kind, detail } => {
                    return Err(match kind.as_str() {
                        "timeout" => ServerError::Timeout {
                            stage: "shard",
                            budget_ms: limits.timeout_ms.unwrap_or(0),
                        },
                        "cancelled" => ServerError::Cancelled,
                        "budget" => ServerError::Budget(format!("shard {k}: {detail}")),
                        _ => ServerError::Eval(format!("shard {k} ({kind}): {detail}")),
                    })
                }
                ShardOutcome::Dead(detail) => {
                    // Re-scatter: the master catalog can reproduce any
                    // shard's fragment deterministically. Partition
                    // once, lazily, and evaluate the dead shard's
                    // share right here.
                    let frags = frags
                        .get_or_insert_with(|| partition_database(master, n, &self.replicated));
                    let mut frag = frags[k].clone();
                    for (_, rel) in scratch_rels {
                        frag.insert(rel.clone());
                    }
                    let scored =
                        evaluate_scored_partial(mini, &frag, JoinOrderStrategy::Greedy, ctx)
                            .map_err(|e| ServerError::ShardLost {
                                shard: k,
                                detail: format!("{detail}; local re-scatter also failed: {e}"),
                            })?;
                    self.shard_counters
                        .rescatters
                        .fetch_add(1, Ordering::Relaxed);
                    *rescatters += 1;
                    parts.push(scored);
                }
            }
        }
        Ok(parts)
    }

    /// The sharded flock path: plan at the coordinator, scatter each
    /// step vacuous, merge algebraically, threshold globally.
    #[allow(clippy::too_many_arguments)]
    fn eval_scatter(
        &self,
        program: &FlockProgram,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<Response> {
        let start = Instant::now();
        let flock = program.flock().clone();
        let filter = *flock.filter();
        let canonical_filter = flock.canonical_filter();
        let effective = self.service.admission_limits(limits)?;
        let (db, fp) = self.service.snapshot();
        let key = CacheKey {
            query: program.canonical_query_text(),
            agg_pos: flock.agg_head_pos(),
            catalog_fp: fp,
        };
        let n = self.shards.len();

        // Coordinator-tier monotone cache: one sharded run answers
        // every threshold its baseline subsumes, no scatter at all.
        if let Some(hit) = self.service.result_cache_lookup(&key, &canonical_filter) {
            self.service
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            let result = flock_result_from_scored(&flock, &hit.scored, &filter);
            let meta = extend_json(
                &json_report(
                    "shard-cache",
                    result.len(),
                    start.elapsed().as_millis(),
                    &qf_core::ExecStats::default(),
                    0,
                    0,
                    &self.service.counters.cache_report(true, true),
                ),
                &format!("\"sharded\":true,\"shards\":{n},\"rescatters\":0"),
            );
            return Ok(Response::Ok {
                meta,
                body: render_tsv(&result),
            });
        }
        self.service
            .counters
            .cache_misses
            .fetch_add(1, Ordering::Relaxed);

        let ctx = self
            .service
            .exec_context(&effective, granted_threads, deadline, cancel);

        // Plan at the coordinator: the search sees full-catalog
        // statistics, and shards execute exactly the steps it picks.
        let mut plan_cached = false;
        let cached_steps = self.service.plan_cache_lookup(&key);
        let (plan, strategy) =
            match cached_steps.and_then(|steps| QueryPlan::new(flock.clone(), steps).ok()) {
                Some(plan) => {
                    plan_cached = true;
                    (plan, "scatter-gather(plan-cache)")
                }
                None => {
                    let searched = if filter.is_monotone() {
                        best_plan_with(&flock, &db, &ctx).ok().map(|(plan, _)| plan)
                    } else {
                        None
                    };
                    match searched {
                        Some(plan) => {
                            self.service.plan_cache_insert(&key, plan.steps.clone());
                            (plan, "scatter-gather")
                        }
                        None => (
                            direct_plan(&flock).map_err(ServerError::from_eval)?,
                            "scatter-gather(direct)",
                        ),
                    }
                }
            };

        let budget_ms = effective.timeout_ms.unwrap_or(0);
        let last = plan.steps.len() - 1;
        let mut completed: Vec<(String, Relation)> = Vec::new();
        let mut rescatters = 0u64;
        let mut final_scored: Option<Relation> = None;
        for (i, step) in plan.steps.iter().enumerate() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return Err(ServerError::Cancelled);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ServerError::Timeout {
                    stage: "eval",
                    budget_ms,
                });
            }
            let mini = partial_flock(step, &filter).map_err(ServerError::from_eval)?;
            let text = mini.render();
            let scratch_rels: Vec<(String, Relation)> = {
                let referenced = referenced_preds(step);
                completed
                    .iter()
                    .filter(|(name, _)| referenced.contains(name.as_str()))
                    .cloned()
                    .collect()
            };
            let scratch: Vec<String> = scratch_rels
                .iter()
                .map(|(_, rel)| render_tsv(rel))
                .collect();
            // Deadline propagation: each shard gets what is *left* of
            // the admission-stamped budget, not a fresh clock.
            let step_limits = RequestLimits {
                max_rows: effective.max_rows,
                mem_budget: effective.mem_budget,
                timeout_ms: match deadline {
                    Some(d) => Some(
                        (d.saturating_duration_since(Instant::now()).as_millis() as u64).max(1),
                    ),
                    None => effective.timeout_ms,
                },
                threads: None,
            };
            let parts = self.scatter_step(
                &text,
                &scratch,
                step_limits,
                &db,
                &scratch_rels,
                &mini,
                &ctx,
                &mut rescatters,
            )?;
            let merged = merge_scored_partials(&filter.agg, scored_schema(step), &parts)
                .map_err(ServerError::from_eval)?;
            if i == last {
                final_scored = Some(merged);
            } else {
                // A-priori pruning between steps, on globally-correct
                // aggregates: threshold the merged partials with the
                // *real* filter, project the aggregate away, broadcast.
                let survivors = refilter_scored(&merged, &filter);
                completed.push((step.output.clone(), project_step_output(&survivors, step)));
            }
        }
        let scored = final_scored.expect("plans have at least one step");
        let result = flock_result_from_scored(&flock, &scored, &filter);
        // Single-step runs were evaluated vacuous end to end: the
        // scored relation holds *every* group, so cache it under the
        // vacuous baseline — one sharded run then answers every future
        // same-direction threshold. Multi-step runs pruned between
        // steps at the real threshold; they answer what it subsumes.
        let baseline = if plan.steps.len() == 1 {
            vacuous_filter(&canonical_filter)
        } else {
            canonical_filter
        };
        self.service.result_cache_insert(
            key,
            CachedResult {
                baseline,
                scored,
                strategy: strategy.to_string(),
            },
        );
        self.shard_counters.sharded.fetch_add(1, Ordering::Relaxed);
        let meta = extend_json(
            &json_report(
                strategy,
                result.len(),
                start.elapsed().as_millis(),
                &ctx.stats(),
                0,
                0,
                &self.service.counters.cache_report(false, plan_cached),
            ),
            &format!("\"sharded\":true,\"shards\":{n},\"rescatters\":{rescatters}"),
        );
        Ok(Response::Ok {
            meta,
            body: render_tsv(&result),
        })
    }

    /// The admitted flock path: sharded when the program qualifies,
    /// local (against the master catalog) when it does not.
    fn eval_flock_request(
        &self,
        text: &str,
        support: Option<i64>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Response {
        let program = match parse_program(text, support) {
            Ok(p) => p,
            Err(e) => {
                self.service
                    .counters
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                return Response::from_error(&e);
            }
        };
        let shardable =
            !self.shards.is_empty() && shardable_program(&program, &self.replicated).is_some();
        if !shardable {
            self.shard_counters
                .local_fallbacks
                .fetch_add(1, Ordering::Relaxed);
            let resp = self.service.handle_flock_admitted(
                text,
                support,
                limits,
                granted_threads,
                deadline,
                cancel,
            );
            return match resp {
                Response::Ok { meta, body } => Response::Ok {
                    meta: extend_json(&meta, "\"sharded\":false"),
                    body,
                },
                err => err,
            };
        }
        self.service
            .counters
            .requests
            .fetch_add(1, Ordering::Relaxed);
        match self.eval_scatter(&program, limits, granted_threads, deadline, cancel) {
            Ok(resp) => resp,
            Err(e) => {
                match &e {
                    ServerError::Timeout { .. } => self.service.note_timeout(),
                    ServerError::Cancelled => self.service.note_cancelled(),
                    _ => {}
                }
                Response::from_error(&e)
            }
        }
    }

    /// `stats` with the fleet rolled up: the coordinator's own counters
    /// stay pure, and per-shard `timeouts`/`cancelled`/`cache_hits`
    /// appear only under distinct `shard_*` keys — summing them into
    /// the coordinator's fields would double-count every event once
    /// here and once on the shard that served it.
    fn stats_with_shards(&self) -> Response {
        let base = self.service.stats_json();
        let mut live = 0u64;
        let mut rollup = [0u64; 6]; // requests, hits, misses, timeouts, cancelled, rejected
        for k in 0..self.shards.len() {
            let Ok(Response::Ok { meta, .. }) = self.with_client(k, |c| c.stats()) else {
                continue;
            };
            live += 1;
            for (slot, key) in [
                "requests",
                "cache_hits",
                "cache_misses",
                "timeouts",
                "cancelled",
                "rejected",
            ]
            .iter()
            .enumerate()
            {
                rollup[slot] += json_u64(&meta, key).unwrap_or(0);
            }
        }
        let sc = &self.shard_counters;
        let extra = format!(
            "\"shards\":{},\"shards_live\":{live},\"scatters\":{},\"rescatters\":{},\
             \"sharded_runs\":{},\"local_fallbacks\":{},\"shard_requests\":{},\
             \"shard_cache_hits\":{},\"shard_cache_misses\":{},\"shard_timeouts\":{},\
             \"shard_cancelled\":{},\"shard_rejected\":{}",
            self.shards.len(),
            sc.scatters.load(Ordering::Relaxed),
            sc.rescatters.load(Ordering::Relaxed),
            sc.sharded.load(Ordering::Relaxed),
            sc.local_fallbacks.load(Ordering::Relaxed),
            rollup[0],
            rollup[1],
            rollup[2],
            rollup[3],
            rollup[4],
            rollup[5],
        );
        Response::Ok {
            meta: extend_json(&base, &extra),
            body: String::new(),
        }
    }
}

impl RequestHandler for Coordinator {
    fn service(&self) -> &Arc<FlockService> {
        &self.service
    }

    fn handle_light(&self, req: &Request) -> Response {
        match req {
            Request::Load { .. } | Request::Gen { .. } => {
                // Mutate the master first (also clears the coordinator
                // caches), then re-push the partitioned catalog. A
                // failed push is a typed, retryable error: replaying
                // the mutation is safe (`load`/`gen` replace by name).
                let resp = self.service.handle_light(req);
                if resp.is_ok() {
                    if let Err(e) = self.push_catalog() {
                        return Response::from_error(&e);
                    }
                }
                resp
            }
            Request::Stats => {
                self.service
                    .counters
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                self.stats_with_shards()
            }
            Request::Shutdown => {
                // The workers exist to serve this coordinator: drain
                // them too (best effort — a dead shard is already
                // down).
                for k in 0..self.shards.len() {
                    let _ = self.with_client(k, |c| c.shutdown());
                }
                self.service.handle_light(req)
            }
            other => self.service.handle_light(other),
        }
    }

    fn handle_admitted(&self, job: &Job, granted_threads: usize) -> Response {
        match &job.payload {
            JobPayload::Flock { text, support } => self.eval_flock_request(
                text,
                *support,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
            // A coordinator can serve `partial` itself (it holds the
            // full catalog — a superset of any fragment), which keeps
            // the protocol uniform for nested topologies and tests.
            JobPayload::Partial { text, scratch } => self.service.handle_partial_admitted(
                text,
                scratch,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
        }
    }
}

/// Predicates a step's query mentions — used to ship exactly the
/// upstream step outputs the shard will scan.
fn referenced_preds(step: &FilterStep) -> BTreeSet<&str> {
    step.query
        .rules()
        .iter()
        .flat_map(|r| r.body.iter())
        .filter_map(|l| l.atom().map(|a| a.pred.as_str()))
        .collect()
}

/// Project the aggregate column away from a thresholded scored
/// relation, yielding the step's output relation (named and columned
/// like the single-node executor would).
fn project_step_output(survivors: &Relation, step: &FilterStep) -> Relation {
    let arity = survivors.schema().arity();
    let cols: Vec<usize> = (0..arity.saturating_sub(1)).collect();
    let tuples: Vec<Tuple> = survivors.iter().map(|t| t.project(&cols)).collect();
    let columns: Vec<String> = step.params.iter().map(|p| p.to_string()).collect();
    Relation::from_tuples(Schema::from_columns(step.output.clone(), columns), tuples)
}
